"""Per-module summary/finding cache under ``.tango-lint-cache/``.

One JSON file per analyzed module, keyed by the module's dotted name and
guarded by (a) the cache format version and (b) the module's content
hash.  An entry stores the extracted :class:`ModuleSummary` *and* the
module's post-suppression findings plus which suppressions they used, so
a warm incremental run can skip both the parse and the reporting pass
for clean modules.

Correctness does not depend on the cache: hashes only gate the local
extract, and the set of modules whose *findings* may be reused is
narrowed further by the caller through
:meth:`repro.lint.flow.callgraph.ProjectGraph.invalidated_by` (an edit
dirties its transitive importers too).  A cold, corrupt, or
version-skewed cache degrades to a full re-analysis.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from .summaries import SUMMARY_FORMAT_VERSION

__all__ = ["DEFAULT_CACHE_DIR", "SummaryCache"]

DEFAULT_CACHE_DIR = ".tango-lint-cache"


class SummaryCache:
    """Load/store per-module analysis entries.

    Args:
        root: cache directory (created lazily on first write).  ``None``
            disables the cache entirely (every call is a miss/no-op).
    """

    def __init__(self, root: Optional[str]) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, module: str) -> Optional[str]:
        if self.root is None:
            return None
        return os.path.join(self.root, f"{module}.json")

    def get(self, module: str, content_hash: str) -> Optional[dict[str, Any]]:
        """The cached entry for ``module`` iff version and hash match."""
        path = self._path(module)
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != SUMMARY_FORMAT_VERSION
            or entry.get("content_hash") != content_hash
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, module: str, entry: dict[str, Any]) -> None:
        path = self._path(module)
        if path is None:
            return
        entry = {"version": SUMMARY_FORMAT_VERSION, **entry}
        os.makedirs(self.root or ".", exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, separators=(",", ":"), sort_keys=True)
        os.replace(tmp, path)
