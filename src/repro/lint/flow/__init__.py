"""``repro.lint.flow``: whole-program determinism-taint & fork-safety analysis.

The per-file rules (``TNG001``–``TNG006``) see one AST at a time, so a
wall-clock read that crosses a function boundary before reaching simulator
state — or an RNG object pickled into a worker process — escapes them.
This subpackage closes that gap with a *project-wide* pass:

* :mod:`repro.lint.flow.extract` parses every module once into a
  serializable :class:`~repro.lint.flow.summaries.ModuleSummary` — imports,
  re-exports, module globals, and per-function dataflow descriptors;
* :mod:`repro.lint.flow.callgraph` links summaries into a
  :class:`~repro.lint.flow.callgraph.ProjectGraph` — name resolution
  through import aliases and ``__init__`` re-exports, the import graph,
  and its reverse closure (for cache invalidation);
* :mod:`repro.lint.flow.taint` runs the interprocedural taint fixpoint
  (sources: wall clock, OS entropy, environment variables, unseeded RNG
  draws; sinks: simulator scheduling, telemetry stores, ``RecoveryLog``,
  report writers) and emits the **TNG2xx determinism-taint** findings;
* :mod:`repro.lint.flow.fork` models the multiprocess campaign runner's
  fork boundary (worker entrypoints, shipped arguments, module-global
  mutable state, per-shard seeding) and emits the **TNG3xx fork-safety**
  findings;
* :mod:`repro.lint.flow.cache` persists per-module summaries + findings
  under ``.tango-lint-cache/`` keyed by content hash, invalidated
  transitively through the import graph, so incremental
  ``tango-repro lint --flow`` runs re-analyze only what changed.

Every finding's message carries the full source→sink call chain, so the
diagnosis is actionable without re-running the analysis in your head.
"""

from .analysis import FLOW_RULE_SUMMARIES, FlowAnalyzer, FlowResult
from .cache import SummaryCache
from .callgraph import ProjectGraph
from .extract import extract_module, module_name_for
from .summaries import ModuleSummary

__all__ = [
    "FLOW_RULE_SUMMARIES",
    "FlowAnalyzer",
    "FlowResult",
    "ModuleSummary",
    "ProjectGraph",
    "SummaryCache",
    "extract_module",
    "module_name_for",
]
