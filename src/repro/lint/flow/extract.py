"""AST → :class:`~repro.lint.flow.summaries.ModuleSummary` extraction.

One parse per module, run only when the module's content hash misses the
cache.  The extractor lowers each function body into the descriptor IR
documented in :mod:`repro.lint.flow.summaries`: order-preserving,
control-flow-flattened (branch bodies are concatenated — a conservative
over-approximation that can only *add* taint), and import-resolved
(plain dotted calls carry their absolute target, relative imports are
made absolute against the module's package).

Scope rules mirror Python's closely enough for lint purposes: names
bound in the function (params, assignments, loop/with/except targets,
local imports) are locals; remaining reads that match a module-level
binding are recorded as global reads (the fork-safety pass cares);
attribute loads off imported project modules are recorded as
cross-module global reads.
"""

from __future__ import annotations

import ast
import hashlib
import os
from typing import Optional

from ..engine import NOQA_RE, comment_lines
from .summaries import Desc, FunctionSummary, GlobalInfo, ModuleSummary

__all__ = ["extract_module", "module_name_for", "content_hash"]

#: Method names that mutate their receiver in place — a call on a
#: module-level binding counts as a global write.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "appendleft",
        "extendleft",
    }
)

_INNER_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def content_hash(source: str) -> str:
    """Stable identity of one module's text (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, walking up through packages.

    ``src/repro/campaign/runner.py`` → ``repro.campaign.runner`` (the
    walk stops at ``src`` because it has no ``__init__.py``).  A file
    outside any package is just its stem.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _is_package(path: str) -> bool:
    return os.path.basename(path) == "__init__.py"


class _Extractor:
    """One module's extraction state."""

    def __init__(self, module: str, path: str, source: str, tree: ast.Module):
        self.module = module
        self.path = path
        self.tree = tree
        self.package_parts = (
            module.split(".") if _is_package(path) else module.split(".")[:-1]
        )
        self.summary = ModuleSummary(
            module=module, path=path, content_hash=content_hash(source)
        )
        self._collect_noqa(source)
        #: Module-scope alias map: local name -> absolute dotted origin.
        self.module_aliases = self._collect_aliases(tree.body)
        self._toplevel_names: set[str] = set()

    # -- imports ------------------------------------------------------------------

    def _absolute(self, module: Optional[str], level: int) -> Optional[str]:
        """Make a (possibly relative) ``from`` import absolute."""
        if level == 0:
            return module
        base = self.package_parts[: len(self.package_parts) - (level - 1)]
        if not base and level > 0 and not self.package_parts:
            return None  # relative import outside any package
        if module:
            return ".".join([*base, module])
        return ".".join(base) if base else None

    def _collect_aliases(self, body: list[ast.stmt]) -> dict[str, str]:
        """Alias map for one statement list (recursing into control flow
        but not into inner function/class scopes)."""
        aliases: dict[str, str] = {}
        pending = list(body)
        while pending:
            node = pending.pop(0)
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        aliases[root] = root
                    self._note_dep(alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = self._absolute(node.module, node.level)
                if target is None:
                    continue
                self._note_dep(target)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    aliases[bound] = f"{target}.{alias.name}"
                    # ``from pkg import submodule`` must edge to the
                    # submodule, not just the package façade (the graph
                    # normalizes symbol imports back to their module).
                    self._note_dep(f"{target}.{alias.name}")
            elif not isinstance(node, _INNER_SCOPES):
                pending = list(ast.iter_child_nodes(node)) + pending
        return aliases

    def _note_dep(self, dotted: str) -> None:
        """Record a project-internal import edge (absolute dotted)."""
        root = self.module.split(".")[0]
        if dotted.split(".")[0] == root and dotted != self.module:
            if dotted not in self.summary.deps:
                self.summary.deps.append(dotted)

    # -- noqa inventory -----------------------------------------------------------

    def _collect_noqa(self, source: str) -> None:
        commented = comment_lines(source)
        for lineno, text in enumerate(source.splitlines(), start=1):
            if commented is not None and lineno not in commented:
                continue
            match = NOQA_RE.search(text)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.summary.noqa[lineno] = None
            else:
                self.summary.noqa[lineno] = sorted(
                    code.strip().upper()
                    for code in codes.split(",")
                    if code.strip()
                )

    # -- expressions --------------------------------------------------------------

    def _dotted(self, node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
        """Absolute dotted target for a plain (possibly dotted) name whose
        root is an import alias; None otherwise."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = aliases.get(node.id)
        if origin is None:
            return None
        parts.reverse()
        return ".".join([origin, *parts]) if parts else origin

    def _expr(self, node: Optional[ast.expr], aliases: dict[str, str]) -> Desc:
        """Lower one expression to a descriptor."""
        if node is None:
            return {"k": "const", "v": None}
        if isinstance(node, ast.Constant):
            value = node.value
            if not isinstance(value, (int, float, str, bool, type(None))):
                value = repr(value)
            return {"k": "const", "v": value}
        if isinstance(node, ast.Name):
            dotted = aliases.get(node.id)
            if dotted is not None:
                return {"k": "modref", "name": dotted}
            return {"k": "name", "id": node.id, "line": node.lineno}
        if isinstance(node, ast.Attribute):
            dotted = self._dotted(node, aliases)
            if dotted is not None:
                return {"k": "modref", "name": dotted}
            return {
                "k": "attr",
                "base": self._expr(node.value, aliases),
                "attr": node.attr,
                "line": node.lineno,
            }
        if isinstance(node, ast.Call):
            dotted = self._dotted(node.func, aliases)
            return {
                "k": "call",
                "dotted": dotted,
                "fn": None if dotted else self._expr(node.func, aliases),
                "line": node.lineno,
                "args": [self._expr(a, aliases) for a in node.args],
                "kw": {
                    kw.arg: self._expr(kw.value, aliases)
                    for kw in node.keywords
                    if kw.arg is not None
                },
            }
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return {
                "k": "tuple",
                "items": [self._expr(e, aliases) for e in node.elts],
            }
        if isinstance(node, ast.Dict):
            return {
                "k": "tuple",
                "items": [
                    self._expr(v, aliases) for v in node.values if v is not None
                ],
            }
        if isinstance(node, ast.Subscript):
            return {
                "k": "sub",
                "base": self._expr(node.value, aliases),
                "index": self._expr(node.slice, aliases),
                "line": node.lineno,
            }
        if isinstance(node, ast.BinOp):
            parts = [self._expr(node.left, aliases), self._expr(node.right, aliases)]
        elif isinstance(node, ast.BoolOp):
            parts = [self._expr(v, aliases) for v in node.values]
        elif isinstance(node, ast.Compare):
            parts = [
                self._expr(node.left, aliases),
                *(self._expr(c, aliases) for c in node.comparators),
            ]
        elif isinstance(node, ast.UnaryOp):
            parts = [self._expr(node.operand, aliases)]
        elif isinstance(node, ast.IfExp):
            parts = [self._expr(node.body, aliases), self._expr(node.orelse, aliases)]
        elif isinstance(node, ast.JoinedStr):
            parts = [
                self._expr(v.value, aliases)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            ]
        elif isinstance(node, ast.Starred):
            parts = [self._expr(node.value, aliases)]
        elif isinstance(node, (ast.Await, ast.NamedExpr)):
            parts = [self._expr(node.value, aliases)]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            parts = [
                self._expr(node.elt, aliases),
                *(self._expr(g.iter, aliases) for g in node.generators),
            ]
        elif isinstance(node, ast.DictComp):
            parts = [
                self._expr(node.value, aliases),
                *(self._expr(g.iter, aliases) for g in node.generators),
            ]
        else:
            return {"k": "const", "v": None}  # lambdas, slices, f-spec, ...
        return {"k": "bin", "parts": parts}

    # -- statements ---------------------------------------------------------------

    def _lower_body(
        self, body: list[ast.stmt], aliases: dict[str, str], out: list[Desc]
    ) -> None:
        """Flatten one statement list into descriptor statements."""
        for node in body:
            if isinstance(node, _INNER_SCOPES):
                continue
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                continue  # already folded into the alias map
            if isinstance(node, ast.Assign):
                value = self._expr(node.value, aliases)
                for target in node.targets:
                    self._lower_target(target, value, aliases, out, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None:
                    value = self._expr(node.value, aliases)
                    self._lower_target(
                        node.target, value, aliases, out, node.lineno
                    )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    merged = {
                        "k": "bin",
                        "parts": [
                            {"k": "name", "id": node.target.id, "line": node.lineno},
                            self._expr(node.value, aliases),
                        ],
                    }
                    out.append(
                        {
                            "s": "assign",
                            "targets": [node.target.id],
                            "v": merged,
                            "line": node.lineno,
                        }
                    )
                else:
                    out.append(
                        {"s": "expr", "v": self._expr(node.value, aliases)}
                    )
            elif isinstance(node, (ast.Return, ast.Expr)):
                value = getattr(node, "value", None)
                if isinstance(node, ast.Return):
                    out.append(
                        {
                            "s": "ret",
                            "v": self._expr(value, aliases),
                            "line": node.lineno,
                        }
                    )
                elif value is not None and not isinstance(value, ast.Constant):
                    out.append({"s": "expr", "v": self._expr(value, aliases)})
            elif isinstance(node, ast.Global):
                out.append({"s": "globaldecl", "names": list(node.names)})
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                iter_desc = self._expr(node.iter, aliases)
                element = {"k": "sub", "base": iter_desc, "index": {"k": "const", "v": None}}
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        out.append(
                            {
                                "s": "assign",
                                "targets": [target.id],
                                "v": element,
                                "line": node.lineno,
                            }
                        )
                self._lower_body(node.body, aliases, out)
                self._lower_body(node.orelse, aliases, out)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ctx = self._expr(item.context_expr, aliases)
                    if isinstance(item.optional_vars, ast.Name):
                        out.append(
                            {
                                "s": "assign",
                                "targets": [item.optional_vars.id],
                                "v": ctx,
                                "line": node.lineno,
                            }
                        )
                    else:
                        out.append({"s": "expr", "v": ctx})
                self._lower_body(node.body, aliases, out)
            elif isinstance(node, (ast.If, ast.While)):
                out.append({"s": "expr", "v": self._expr(node.test, aliases)})
                self._lower_body(node.body, aliases, out)
                self._lower_body(node.orelse, aliases, out)
            elif isinstance(node, ast.Try):
                self._lower_body(node.body, aliases, out)
                for handler in node.handlers:
                    self._lower_body(handler.body, aliases, out)
                self._lower_body(node.orelse, aliases, out)
                self._lower_body(node.finalbody, aliases, out)
            elif isinstance(node, (ast.Raise, ast.Assert)):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.expr):
                        out.append({"s": "expr", "v": self._expr(child, aliases)})
            elif isinstance(node, ast.Delete):
                continue
            else:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.expr):
                        out.append({"s": "expr", "v": self._expr(child, aliases)})

    def _lower_target(
        self,
        target: ast.expr,
        value: Desc,
        aliases: dict[str, str],
        out: list[Desc],
        line: int,
    ) -> None:
        if isinstance(target, ast.Name):
            out.append(
                {"s": "assign", "targets": [target.id], "v": value, "line": line}
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = {"k": "sub", "base": value, "index": {"k": "const", "v": None}}
            for elt in target.elts:
                self._lower_target(elt, element, aliases, out, line)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            out.append(
                {
                    "s": "setattr",
                    "obj": target.value.id,
                    "attr": target.attr,
                    "v": value,
                    "line": line,
                }
            )
        elif isinstance(target, ast.Subscript):
            base = self._expr(target.value, aliases)
            out.append({"s": "expr", "v": value})
            if isinstance(target.value, ast.Name):
                out.append(
                    {
                        "s": "storesub",
                        "name": target.value.id,
                        "line": line,
                    }
                )
            _ = base
        else:
            out.append({"s": "expr", "v": value})

    # -- function-level bookkeeping ------------------------------------------------

    def _local_bindings(self, node: ast.AST) -> set[str]:
        """Names bound anywhere in this function's own scope."""
        bound: set[str] = set()
        pending = list(ast.iter_child_nodes(node))
        while pending:
            child = pending.pop(0)
            if isinstance(child, _INNER_SCOPES):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                bound.add(child.id)
            elif isinstance(child, ast.Import):
                for alias in child.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(child, ast.ImportFrom):
                for alias in child.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                bound.add(child.name)
            elif isinstance(child, ast.comprehension):
                for name in ast.walk(child.target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
            pending.extend(ast.iter_child_nodes(child))
        return bound

    def _function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
    ) -> FunctionSummary:
        local_aliases = dict(self.module_aliases)
        local_aliases.update(self._collect_aliases(node.body))
        args = node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args]]
        summary = FunctionSummary(
            qualname=qualname, line=node.lineno, params=params
        )
        positional_defaults = args.defaults
        if positional_defaults:
            for name, default in zip(
                params[-len(positional_defaults):], positional_defaults
            ):
                summary.defaults[name] = self._expr(default, local_aliases)
        for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                summary.params.append(kwarg.arg)
                summary.defaults[kwarg.arg] = self._expr(default, local_aliases)
            else:
                summary.params.append(kwarg.arg)
        self._lower_body(node.body, local_aliases, summary.body)

        locals_bound = self._local_bindings(node) | set(summary.params)
        global_names: set[str] = set()
        for stmt in summary.body:
            if stmt.get("s") == "globaldecl":
                global_names.update(stmt["names"])
        for child in ast.walk(node):
            if isinstance(child, _INNER_SCOPES) and child is not node:
                continue
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if (
                    child.id in self._toplevel_names
                    and (child.id not in locals_bound or child.id in global_names)
                ):
                    summary.global_reads.append((child.id, child.lineno))
            elif isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                if child.id in global_names:
                    summary.global_writes.append((child.id, child.lineno))
            elif isinstance(child, ast.Attribute) and isinstance(
                child.ctx, ast.Load
            ):
                dotted = self._dotted(child.value, local_aliases)
                if dotted is not None and dotted.split(".")[0] == self.module.split(".")[0]:
                    summary.module_attr_reads.append(
                        (dotted, child.attr, child.lineno)
                    )
            elif isinstance(child, ast.Call):
                # In-place mutation of a module global: g.append(...), g[k] = v
                # is caught via storesub statements at eval time.
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self._toplevel_names
                    and func.value.id not in locals_bound
                ):
                    summary.global_writes.append((func.value.id, child.lineno))
        for stmt in summary.body:
            if stmt.get("s") == "storesub" and stmt["name"] in self._toplevel_names:
                if stmt["name"] not in locals_bound:
                    summary.global_writes.append((stmt["name"], stmt["line"]))
        return summary

    # -- module level -------------------------------------------------------------

    def run(self) -> ModuleSummary:
        tree = self.tree
        # First pass: names bound at module level (for global-read scoping)
        # and the export table.
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.summary.exports[node.name] = f"{self.module}.{node.name}"
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._toplevel_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self._toplevel_names.add(node.target.id)
        for name, origin in self.module_aliases.items():
            self.summary.exports.setdefault(name, origin)

        # Second pass: definitions, globals inventory, top-level dataflow.
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{self.module}.{node.name}"
                self.summary.functions[qualname] = self._function(node, qualname)
            elif isinstance(node, ast.ClassDef):
                class_qual = f"{self.module}.{node.name}"
                methods: list[str] = []
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{class_qual}.{item.name}"
                        methods.append(method_qual)
                        self.summary.functions[method_qual] = self._function(
                            item, method_qual
                        )
                self.summary.classes[class_qual] = methods
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = getattr(node, "value", None)
                desc = (
                    self._expr(value, self.module_aliases)
                    if value is not None
                    else None
                )
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    if name.startswith("__") and name.endswith("__"):
                        continue
                    self.summary.globals[name] = GlobalInfo(
                        name=name,
                        line=node.lineno,
                        mutable_value=_is_mutable_desc(value),
                        reassignable=not name.lstrip("_").isupper(),
                        value=desc,
                    )
        # Top-level executable dataflow (module import time).
        toplevel = [
            n
            for n in tree.body
            if not isinstance(
                n,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Import,
                    ast.ImportFrom,
                ),
            )
        ]
        self._lower_body(toplevel, self.module_aliases, self.summary.toplevel)
        return self.summary


_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


def _is_mutable_desc(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CTORS
    return False


def extract_module(path: str, source: Optional[str] = None) -> ModuleSummary:
    """Parse ``path`` and extract its summary.

    Raises :class:`SyntaxError` for unparsable files — the caller maps
    that to the engine's ``TNG000`` convention.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    module = module_name_for(path)
    return _Extractor(module, path, source, tree).run()
