"""Serializable per-module summaries — the unit of caching.

A :class:`ModuleSummary` is everything the whole-program pass needs to
know about one module *without re-parsing it*: imports (for the import
graph and cache invalidation), re-exports (for name resolution through
``__init__`` façades), module-level globals (for the fork-safety and
RNG-aliasing rules), and one :class:`FunctionSummary` per function or
method holding the function's dataflow **descriptors** — a small,
JSON-serializable IR of its assignments, calls, and returns that the
taint evaluator (:mod:`repro.lint.flow.taint`) interprets against the
current summary table.

Descriptors are plain dicts with a ``"k"`` discriminator::

    {"k": "const", "v": ...}                      literal
    {"k": "name", "id": "x"}                      local/global/param read
    {"k": "attr", "base": d, "attr": "uniform"}   attribute load
    {"k": "call", "fn": d|None, "dotted": str|None,
     "line": int, "args": [d...], "kw": {...}}    call site
    {"k": "tuple", "items": [d...]}               tuple/list/set display
    {"k": "bin", "parts": [d...]}                 any taint-merging expr
    {"k": "sub", "base": d, "index": d}           subscript load

``dotted`` is the import-alias-resolved target for plain dotted calls
(``np.random.default_rng`` → ``numpy.random.default_rng``); attribute
calls on computed receivers keep ``fn`` instead and are dispatched on
the receiver's abstract value at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "SUMMARY_FORMAT_VERSION",
    "FunctionSummary",
    "GlobalInfo",
    "ModuleSummary",
]

#: Bumped whenever the extraction IR or analysis changes shape; cached
#: entries with a different version are discarded wholesale.
SUMMARY_FORMAT_VERSION = 3

Desc = dict[str, Any]


@dataclass
class GlobalInfo:
    """One module-level binding (plain assignment, not def/class/import).

    Attributes:
        name: the bound name.
        line: definition line.
        mutable_value: the bound value is a mutable display or mutable
            constructor call (``[]``, ``{}``, ``set()``, ``deque()`` …).
        reassignable: the name follows the lowercase module-state
            convention (not ALL_CAPS, not a dunder) — a seam some
            function or test may rebind at runtime.
        value: the value's descriptor (for RNG-aliasing detection).
    """

    name: str
    line: int
    mutable_value: bool
    reassignable: bool
    value: Optional[Desc] = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "mutable_value": self.mutable_value,
            "reassignable": self.reassignable,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GlobalInfo":
        return cls(
            name=payload["name"],
            line=payload["line"],
            mutable_value=payload["mutable_value"],
            reassignable=payload["reassignable"],
            value=payload.get("value"),
        )


@dataclass
class FunctionSummary:
    """One function/method's dataflow IR.

    Attributes:
        qualname: fully dotted name (``repro.campaign.runner._worker`` or
            ``repro.core.controller.TangoController.start``).
        line: definition line.
        params: positional-or-keyword parameter names, in order.
        defaults: parameter name → default-value descriptor (only for
            params that have one) — how taint enters through defaults.
        body: statement descriptors, in source order.  Statements are
            dicts with an ``"s"`` discriminator: ``assign`` / ``ret`` /
            ``expr`` / ``setattr`` / ``globaldecl``.
        global_reads: names read that resolve to module-level bindings of
            the *same* module, with lines.
        global_writes: names written through a ``global`` declaration, or
            mutated in place (subscript store / mutating method call on a
            module-level binding).
        module_attr_reads: ``(module_dotted, attr, line)`` loads off
            imported project modules (cross-module global access).
    """

    qualname: str
    line: int
    params: list[str] = field(default_factory=list)
    defaults: dict[str, Desc] = field(default_factory=dict)
    body: list[Desc] = field(default_factory=list)
    global_reads: list[tuple[str, int]] = field(default_factory=list)
    global_writes: list[tuple[str, int]] = field(default_factory=list)
    module_attr_reads: list[tuple[str, str, int]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": self.params,
            "defaults": self.defaults,
            "body": self.body,
            "global_reads": [list(t) for t in self.global_reads],
            "global_writes": [list(t) for t in self.global_writes],
            "module_attr_reads": [list(t) for t in self.module_attr_reads],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=payload["qualname"],
            line=payload["line"],
            params=list(payload["params"]),
            defaults=dict(payload["defaults"]),
            body=list(payload["body"]),
            global_reads=[tuple(t) for t in payload["global_reads"]],
            global_writes=[tuple(t) for t in payload["global_writes"]],
            module_attr_reads=[
                (t[0], t[1], t[2]) for t in payload["module_attr_reads"]
            ],
        )


@dataclass
class ModuleSummary:
    """Everything the interprocedural pass knows about one module."""

    module: str
    path: str
    content_hash: str
    #: Absolute dotted names of *project* modules this module imports
    #: (module- or function-scoped) — the import-graph edges.
    deps: list[str] = field(default_factory=list)
    #: Exported name → absolute dotted target (``from .x import y`` plus
    #: plain defs), used to resolve calls through package façades.
    exports: dict[str, str] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: Class qualname → list of method qualnames (dispatch table).
    classes: dict[str, list[str]] = field(default_factory=dict)
    #: Module-level statements (run at import time), same IR as bodies.
    toplevel: list[Desc] = field(default_factory=list)
    #: ``tango: noqa`` comment inventory: line → codes (None = blanket).
    noqa: dict[int, Optional[list[str]]] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "content_hash": self.content_hash,
            "deps": self.deps,
            "exports": self.exports,
            "globals": {n: g.as_dict() for n, g in self.globals.items()},
            "functions": {
                q: f.as_dict() for q, f in self.functions.items()
            },
            "classes": self.classes,
            "toplevel": self.toplevel,
            "noqa": {str(k): v for k, v in self.noqa.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            content_hash=payload["content_hash"],
            deps=list(payload["deps"]),
            exports=dict(payload["exports"]),
            globals={
                n: GlobalInfo.from_dict(g)
                for n, g in payload["globals"].items()
            },
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in payload["functions"].items()
            },
            classes={k: list(v) for k, v in payload["classes"].items()},
            toplevel=list(payload["toplevel"]),
            noqa={int(k): v for k, v in payload["noqa"].items()},
        )
