"""Linking module summaries into a whole-program view.

The :class:`ProjectGraph` owns the summary table and answers the three
questions every later pass asks:

* **name resolution** — given an absolute dotted name (already
  import-resolved by the extractor), which project function or class
  does it denote?  Resolution follows ``__init__`` re-export chains
  (``repro.campaign.run_campaign`` → ``repro.campaign.runner.run_campaign``)
  a bounded number of hops, so package façades don't hide call edges.
* **import graph** — which project modules does a module import
  (directly), and, reversed, who are a module's transitive importers?
  The reverse closure is the cache-invalidation frontier: an edit can
  only change analysis results in the edited module and modules that
  (transitively) import it.
* **dispatch** — which methods does a class define (for receiver-typed
  call resolution in the taint evaluator).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .summaries import ModuleSummary

__all__ = ["ProjectGraph"]

#: Re-export chains longer than this are abandoned (defensive bound; the
#: repo's deepest real chain is 2).
_MAX_EXPORT_HOPS = 10


class ProjectGraph:
    """The linked whole-program view over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: function qualname -> owning module name
        self.functions: dict[str, str] = {}
        #: class qualname -> owning module name
        self.classes: dict[str, str] = {}
        for name, summary in self.modules.items():
            for qual in summary.functions:
                self.functions[qual] = name
            for qual in summary.classes:
                self.classes[qual] = name

    # -- name resolution ----------------------------------------------------------

    def _split_module_prefix(
        self, dotted: str
    ) -> Optional[tuple[str, list[str]]]:
        """Longest known module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None

    def resolve(self, dotted: str) -> Optional[tuple[str, str]]:
        """Resolve an absolute dotted name to ``("func"|"class", qualname)``.

        Follows re-export chains through package ``__init__`` modules.
        Returns None for names outside the project (stdlib, numpy, ...)
        and for project modules themselves.
        """
        for _ in range(_MAX_EXPORT_HOPS):
            if dotted in self.functions:
                return ("func", dotted)
            if dotted in self.classes:
                return ("class", dotted)
            split = self._split_module_prefix(dotted)
            if split is None:
                return None
            module, remainder = split
            if not remainder:
                return None
            target = self.modules[module].exports.get(remainder[0])
            if target is None:
                return None
            rewritten = ".".join([target, *remainder[1:]])
            if rewritten == dotted:
                return None
            dotted = rewritten
        return None

    def module_of(self, qualname: str) -> Optional[str]:
        return self.functions.get(qualname) or self.classes.get(qualname)

    # -- import graph -------------------------------------------------------------

    def direct_deps(self, module: str) -> list[str]:
        """Project modules ``module`` imports, restricted to the analyzed
        set (an import edge to an un-analyzed module is irrelevant)."""
        summary = self.modules.get(module)
        if summary is None:
            return []
        deps = []
        for dep in summary.deps:
            resolved = self._dep_in_graph(dep)
            if resolved is not None and resolved != module:
                deps.append(resolved)
        return deps

    def _dep_in_graph(self, dep: str) -> Optional[str]:
        """An import edge may name a package or a symbol; normalize to
        the closest analyzed module."""
        if dep in self.modules:
            return dep
        split = self._split_module_prefix(dep)
        return split[0] if split else None

    def invalidated_by(self, changed: Iterable[str]) -> set[str]:
        """``changed`` plus every transitive importer — the set whose
        analysis results may differ after the edit."""
        reverse: dict[str, set[str]] = {name: set() for name in self.modules}
        for name in self.modules:
            for dep in self.direct_deps(name):
                reverse.setdefault(dep, set()).add(name)
        dirty: set[str] = set()
        frontier = [m for m in changed if m in self.modules]
        while frontier:
            module = frontier.pop()
            if module in dirty:
                continue
            dirty.add(module)
            frontier.extend(reverse.get(module, ()))
        return dirty
