"""The flow-pass orchestrator: files in, findings + cache stats out.

One :meth:`FlowAnalyzer.run` call is one ``tango-repro lint --flow``
pass over a file set:

1. read + hash every file; extract a :class:`ModuleSummary` for cache
   misses, reuse the cached summary for hits (parse is the expensive
   part — a warm run parses nothing);
2. link the summaries into a :class:`ProjectGraph` and compute the
   **dirty set**: changed modules plus their transitive importers
   (everything else's findings are provably unchanged and come straight
   from the cache);
3. run the interprocedural taint fixpoint over *all* summaries (cheap
   relative to parsing, and cross-module facts need the whole table),
   derive TNG2xx sink hits and TNG3xx fork findings, but materialize
   findings only for dirty modules;
4. apply ``# tango: noqa`` suppressions from the summaries' noqa tables,
   recording which suppressions fired (feeds the TNG007 unused-
   suppression rule in the runner);
5. write refreshed cache entries for dirty modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..findings import Finding, Severity
from .cache import SummaryCache
from .callgraph import ProjectGraph
from .extract import content_hash, extract_module, module_name_for
from .fork import derive_fork_findings
from .summaries import ModuleSummary
from .taint import Evaluator

__all__ = ["FLOW_RULE_SUMMARIES", "FlowAnalyzer", "FlowResult"]

#: Code → one-line summary, mirrored by ``tango-repro lint --list-rules``.
FLOW_RULE_SUMMARIES: dict[str, str] = {
    "TNG201": (
        "nondeterministic value (wall clock / OS entropy / env var / "
        "unseeded RNG) reaches simulation state through a call chain"
    ),
    "TNG202": "seeded-RNG object aliased into module-global scope",
    "TNG203": "wall-clock taint reaches replay-compared output",
    "TNG301": (
        "mutable module-global state reachable from a fork-worker "
        "entrypoint"
    ),
    "TNG302": (
        "RNG / Simulator / open handle captured in args shipped across "
        "the fork boundary"
    ),
    "TNG303": (
        "worker-reachable RNG seeded with a constant literal instead of "
        "a per-shard SeedSequence"
    ),
}


@dataclass
class FlowResult:
    """Everything one flow pass produced.

    Attributes:
        findings: post-suppression findings (sorted), including TNG000
            parse errors.
        analyzed: module names whose findings were (re)computed this run.
        cached: module names whose findings were loaded from the cache.
        suppressions: per path → noqa line → ``{"codes": [..]|None,
            "text": str}`` (None = blanket) — the suppression inventory
            the TNG007 rule judges.
        used: per path → noqa line → codes that suppression actually
            silenced this run (blanket uses record the silenced codes).
    """

    findings: list[Finding] = field(default_factory=list)
    analyzed: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    suppressions: dict[str, dict[int, dict[str, Any]]] = field(
        default_factory=dict
    )
    used: dict[str, dict[int, list[str]]] = field(default_factory=dict)


class FlowAnalyzer:
    """Whole-program determinism-taint + fork-safety pass.

    Args:
        cache: summary cache (``SummaryCache(None)`` disables caching).
    """

    def __init__(self, cache: Optional[SummaryCache] = None) -> None:
        self.cache = cache if cache is not None else SummaryCache(None)

    def run(self, files: list[str]) -> FlowResult:
        result = FlowResult()
        summaries: dict[str, ModuleSummary] = {}
        sources: dict[str, list[str]] = {}
        changed: list[str] = []
        cached_entries: dict[str, dict[str, Any]] = {}

        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                result.findings.append(
                    Finding(
                        path=path,
                        line=0,
                        column=0,
                        code="TNG000",
                        message=f"cannot read file: {exc}",
                    )
                )
                continue
            digest = content_hash(source)
            module = module_name_for(path)
            entry = self.cache.get(module, digest)
            if entry is not None:
                summary = ModuleSummary.from_dict(entry["summary"])
                # The same module may be reached through a different
                # path prefix than when cached; trust the current path.
                summary.path = path
                cached_entries[module] = entry
            else:
                try:
                    summary = extract_module(path, source=source)
                except SyntaxError as exc:
                    result.findings.append(
                        Finding(
                            path=path,
                            line=exc.lineno or 0,
                            column=exc.offset or 1,
                            code="TNG000",
                            message=f"cannot parse file: {exc.msg}",
                        )
                    )
                    continue
                changed.append(module)
            summaries[module] = summary
            sources[summary.path] = source.splitlines()

        graph = ProjectGraph(summaries.values())
        dirty = graph.invalidated_by(changed)
        if self.cache.root is None:
            dirty = set(summaries)

        evaluator = Evaluator(graph)
        evaluator.run_fixpoint()
        fork_hits = derive_fork_findings(graph, evaluator)

        for module in sorted(summaries):
            summary = summaries[module]
            lines = sources.get(summary.path, [])
            self._note_suppressions(result, summary, lines)
            if module in dirty or module not in cached_entries:
                findings, used = self._materialize(
                    module, summary, lines, evaluator, fork_hits
                )
                result.analyzed.append(module)
                self._store(module, summary, findings, used)
            else:
                entry = cached_entries[module]
                findings = [
                    _finding_from_dict({**f, "path": summary.path})
                    for f in entry.get("findings", [])
                ]
                used = {
                    int(line): list(codes)
                    for line, codes in entry.get("used", {}).items()
                }
                result.cached.append(module)
            result.findings.extend(findings)
            if used:
                result.used.setdefault(summary.path, {}).update(used)
        result.findings.sort()
        return result

    # -- per-module reporting -----------------------------------------------------

    def _materialize(
        self,
        module: str,
        summary: ModuleSummary,
        lines: list[str],
        evaluator: Evaluator,
        fork_hits: dict[str, list[dict[str, Any]]],
    ) -> tuple[list[Finding], dict[int, list[str]]]:
        hits: list[dict[str, Any]] = list(evaluator.module_hits.get(module, []))
        for qual, owner in evaluator.graph.functions.items():
            if owner != module:
                continue
            hits.extend(evaluator.facts[qual].sink_hits)
        hits.extend(fork_hits.get(module, []))

        findings: list[Finding] = []
        used: dict[int, list[str]] = {}
        seen: set[tuple[int, str, str]] = set()
        for hit in hits:
            key = (hit["line"], hit["code"], hit["message"])
            if key in seen:
                continue
            seen.add(key)
            line = hit["line"]
            noqa = (
                summary.noqa[line] if line in summary.noqa else _MISSING
            )
            if noqa is not _MISSING:
                codes = noqa
                if codes is None or hit["code"] in codes:
                    used.setdefault(line, [])
                    if hit["code"] not in used[line]:
                        used[line].append(hit["code"])
                    continue
            snippet = (
                lines[line - 1].strip() if 1 <= line <= len(lines) else ""
            )
            findings.append(
                Finding(
                    path=summary.path,
                    line=line,
                    column=0,
                    code=hit["code"],
                    message=hit["message"],
                    severity=Severity.ERROR,
                    snippet=snippet,
                )
            )
        return sorted(findings), used

    def _note_suppressions(
        self, result: FlowResult, summary: ModuleSummary, lines: list[str]
    ) -> None:
        if not summary.noqa:
            return
        table = result.suppressions.setdefault(summary.path, {})
        for line, codes in summary.noqa.items():
            text = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
            table[line] = {"codes": codes, "text": text}

    def _store(
        self,
        module: str,
        summary: ModuleSummary,
        findings: list[Finding],
        used: dict[int, list[str]],
    ) -> None:
        self.cache.put(
            module,
            {
                "content_hash": summary.content_hash,
                "module": module,
                "summary": summary.as_dict(),
                "findings": [
                    {
                        "line": f.line,
                        "column": f.column,
                        "code": f.code,
                        "message": f.message,
                        "severity": f.severity.name,
                        "snippet": f.snippet,
                    }
                    for f in findings
                ],
                "used": {str(k): v for k, v in used.items()},
            },
        )


_MISSING = object()


def _finding_from_dict(payload: dict[str, Any]) -> Finding:
    return Finding(
        path=payload["path"],
        line=payload["line"],
        column=payload["column"],
        code=payload["code"],
        message=payload["message"],
        severity=Severity[payload.get("severity", "ERROR")],
        snippet=payload.get("snippet", ""),
    )
