"""The fork-boundary model (TNG3xx) over evaluated taint facts.

The campaign runner ships work to ``fork``-started processes; three
things go wrong at that boundary in practice, and each is a rule:

* **TNG301** — a *mutable* (or rebindable) module-level global is read
  by code reachable from a worker entrypoint.  Under ``fork`` the child
  inherits a snapshot: writes made by the parent after pool creation (or
  by tests monkeypatching the module) silently diverge between parent
  and children, and between runs with different worker counts.
* **TNG302** — an RNG, ``Simulator``, or open file handle is captured in
  the arguments shipped across the boundary.  Generators duplicate their
  stream into every child; simulators and handles carry event queues and
  file descriptors that must not be shared.
* **TNG303** — worker-reachable code constructs an RNG from a constant
  literal seed, so every shard draws the identical stream instead of a
  per-shard ``SeedSequence``-derived one.

Fork *sites* are discovered by the taint evaluator (``pool.submit``,
``multiprocessing.Process(target=...)``), including sites whose
entrypoint arrives as a function parameter and is resolved in a caller
(``run_campaign → _execute → pool.submit(worker, ...)``).  This module
takes the resolved sites, walks the call graph from each entrypoint, and
emits the findings with the full chain in the message.
"""

from __future__ import annotations

from typing import Any, Optional

from .callgraph import ProjectGraph
from .taint import Evaluator

__all__ = ["derive_fork_findings"]

#: Worker-reachability BFS is capped defensively; the campaign worker's
#: real closure is a few dozen functions.
_MAX_REACHABLE = 400


def _reachable_from(evaluator: Evaluator, entry: str) -> list[str]:
    """Functions reachable from ``entry`` over resolved call edges,
    in BFS order (entry first)."""
    order: list[str] = []
    seen: set[str] = set()
    frontier = [entry]
    while frontier and len(seen) < _MAX_REACHABLE:
        qual = frontier.pop(0)
        if qual in seen:
            continue
        seen.add(qual)
        order.append(qual)
        facts = evaluator.facts.get(qual)
        if facts is not None:
            frontier.extend(sorted(facts.calls))
    return order


def _chain(site: dict[str, Any], entry: str) -> str:
    via = " -> ".join(site.get("via", []))
    return f"{via} -> fork boundary -> {entry}" if via else entry


def derive_fork_findings(
    graph: ProjectGraph, evaluator: Evaluator
) -> dict[str, list[dict[str, Any]]]:
    """TNG3xx hits per module name (``{"code", "line", "message"}``)."""
    hits: dict[str, list[dict[str, Any]]] = {}

    def report(module: str, code: str, line: int, message: str) -> None:
        hit = {"code": code, "line": line, "message": message}
        bucket = hits.setdefault(module, [])
        if hit not in bucket:
            bucket.append(hit)

    for qual in sorted(evaluator.facts):
        facts = evaluator.facts[qual]
        if not facts.fork_sites:
            continue
        module = graph.functions.get(qual)
        if module is None:
            continue
        for site in facts.fork_sites:
            line = site.get("line", 0)
            # TNG302: concrete objects captured in shipped arguments.
            for obj in site.get("shipped", []):
                kind = obj.get("kind")
                label = {
                    "rng": "an RNG object",
                    "sim": "a Simulator",
                    "file": "an open file handle",
                }.get(kind, kind)
                origin = obj.get("origin")
                detail = f" (from {origin})" if origin else ""
                report(
                    module,
                    "TNG302",
                    line,
                    f"{label}{detail} is captured in arguments shipped "
                    f"across the fork boundary via {_chain(site, site.get('entry') or '<worker>')}; "
                    "children inherit a duplicated stream/handle — ship "
                    "seeds or descriptors, not live objects",
                )
            entry = site.get("entry")
            if entry is None:
                continue
            reachable = _reachable_from(evaluator, entry)
            chain = _chain(site, entry)
            for reached in reachable:
                reached_module = graph.functions.get(reached)
                if reached_module is None:
                    continue
                summary = graph.modules[reached_module]
                fn = summary.functions.get(reached)
                if fn is None:
                    continue
                step = (
                    chain if reached == entry else f"{chain} -> ... -> {reached}"
                )
                # TNG301: mutable/rebindable module globals read from
                # worker-reachable code.
                for name, read_line in fn.global_reads:
                    info = summary.globals.get(name)
                    if info is None:
                        continue
                    if not (info.mutable_value or info.reassignable):
                        continue
                    what = (
                        "mutable module-global"
                        if info.mutable_value
                        else "rebindable module-global"
                    )
                    report(
                        module,
                        "TNG301",
                        line,
                        f"{what} '{name}' ({summary.path}:{info.line}) is "
                        f"read by worker-reachable code: {step} reads it at "
                        f"{summary.path}:{read_line}; fork-started children "
                        "snapshot module state at pool creation — pass it "
                        "through the payload instead",
                    )
                for mod_name, attr, read_line in fn.module_attr_reads:
                    target = graph.modules.get(mod_name)
                    if target is None:
                        continue
                    info = target.globals.get(attr)
                    if info is None or not (
                        info.mutable_value or info.reassignable
                    ):
                        continue
                    report(
                        module,
                        "TNG301",
                        line,
                        f"mutable module-global '{mod_name}.{attr}' "
                        f"({target.path}:{info.line}) is read by "
                        f"worker-reachable code: {step} reads it at "
                        f"{summary.path}:{read_line}; fork-started children "
                        "snapshot module state at pool creation — pass it "
                        "through the payload instead",
                    )
                # TNG303: constant-literal-seed RNGs in worker code.
                reached_facts = evaluator.facts.get(reached)
                if reached_facts is None:
                    continue
                for rng in reached_facts.const_seed_rngs:
                    report(
                        module,
                        "TNG303",
                        line,
                        f"worker-reachable RNG {rng['target']} at "
                        f"{rng['where']} uses a constant literal seed "
                        f"({step}); every shard draws the identical stream "
                        "— derive per-shard seeds from a "
                        "numpy.random.SeedSequence spawned off the master "
                        "seed and shard index",
                    )
    return hits


def resolved_entrypoints(evaluator: Evaluator) -> list[tuple[str, Optional[str]]]:
    """(caller, entry) pairs for every resolved fork site — introspection
    helper used by tests and the text reporter's stats line."""
    pairs: list[tuple[str, Optional[str]]] = []
    for qual in sorted(evaluator.facts):
        for site in evaluator.facts[qual].fork_sites:
            pairs.append((qual, site.get("entry")))
    return pairs
