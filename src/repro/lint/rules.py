"""The determinism rule family (``TNG001``–``TNG006``).

The repo-wide invariant (stated in ``repro.netsim.links`` and enforced
end-to-end by the CI chaos job) is seed-exact replay: the same scenario,
plan, and seed must produce identical bytes.  Each rule here bans one
construct that historically breaks that class of guarantee:

========  ==============================================================
TNG001    wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now`` ...) — simulation code must use the simulated
          clock, never the host's.
TNG002    unseeded RNG construction (``np.random.default_rng()``,
          ``random.Random()`` ...) — every generator must take an
          explicit seed so replays can reproduce its stream.
TNG003    calls on the process-global RNG state (``random.random()``,
          ``np.random.uniform()`` ...) — global streams are shared
          across subsystems, so adding a draw *anywhere* perturbs draws
          *everywhere*; use an owned, seeded generator instead.
TNG004    operating-system entropy (``os.urandom``, ``uuid.uuid4``,
          ``secrets.*``, ``random.SystemRandom``) — unreplayable by
          construction.
TNG005    ordered iteration over ``set``/``frozenset`` values — set
          iteration order is a function of element hashes and insertion
          history; feeding it into loops, lists, or tuples makes control
          decisions order-dependent.  Wrap in ``sorted(...)``.
TNG006    mutable default arguments — shared across calls, so one call
          site's history leaks into the next run's behavior.
========  ==============================================================

All rules are purely syntactic (no imports are executed); the trade-off
is the usual one for static analysis — a tracked value laundered through
an attribute or a container escapes TNG005, and dynamic dispatch escapes
everything.  The runtime chaos job remains the backstop.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, Optional

from .engine import FileContext, Rule
from .findings import Finding, Severity

__all__ = ["default_rules", "RULE_SUMMARIES"]

Report = Callable[[Finding], None]

# -- shared helpers: import-aware name resolution --------------------------------


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to dotted origins for every import in the file.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    time`` binds ``time -> time.time``.  Relative imports are skipped —
    they name package-internal modules, never the banned stdlib surface.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def _resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.default_rng`` to ``numpy.random.default_rng``.

    Returns None when the expression is not a plain (possibly dotted)
    name, or its root was never imported.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    parts.reverse()
    return ".".join([origin, *parts]) if parts else origin


class _CallRule(ast.NodeVisitor):
    """Base visitor for rules that diagnose specific call targets."""

    def __init__(self, context: FileContext, report: Report) -> None:
        self.context = context
        self.report = report
        self.aliases = _collect_aliases(context.tree)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _resolve_dotted(node.func, self.aliases)
        if dotted is not None:
            self.check_call(node, dotted)
        self.generic_visit(node)

    def check_call(self, node: ast.Call, dotted: str) -> None:
        raise NotImplementedError


# -- TNG001: wall-clock reads ----------------------------------------------------

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class _WallclockVisitor(_CallRule):
    def check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in _WALLCLOCK:
            self.report(
                self.context.finding(
                    node,
                    "TNG001",
                    f"wall-clock read {dotted}() in simulation code; "
                    "use the simulated clock (Simulator.now)",
                )
            )


# -- TNG002: unseeded RNG construction -------------------------------------------

#: Constructors that accept a seed as first positional or ``seed=`` kwarg.
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.SeedSequence",
    }
)


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _UnseededRngVisitor(_CallRule):
    def check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted not in _RNG_CONSTRUCTORS:
            return
        seed_kwargs = [k for k in node.keywords if k.arg in ("seed", "entropy")]
        seeded = bool(node.args) and not _is_none(node.args[0])
        seeded = seeded or (
            bool(seed_kwargs) and not _is_none(seed_kwargs[0].value)
        )
        if not seeded:
            self.report(
                self.context.finding(
                    node,
                    "TNG002",
                    f"{dotted}() constructed without an explicit seed; "
                    "replays cannot reproduce its stream",
                )
            )


# -- TNG003: process-global RNG state --------------------------------------------

#: ``numpy.random`` attributes that are *not* the module-level generator.
_NUMPY_RANDOM_NON_GLOBAL = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: ``random`` module attributes that are classes/helpers, not global draws.
_RANDOM_NON_GLOBAL = frozenset({"Random", "SystemRandom"})


class _GlobalRngVisitor(_CallRule):
    def check_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] not in _RANDOM_NON_GLOBAL
        ):
            self.report(
                self.context.finding(
                    node,
                    "TNG003",
                    f"call to the process-global RNG {dotted}(); "
                    "use an owned, seeded random.Random / numpy Generator",
                )
            )
        elif (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RANDOM_NON_GLOBAL
        ):
            self.report(
                self.context.finding(
                    node,
                    "TNG003",
                    f"call to numpy's global RNG state {dotted}(); "
                    "use an owned numpy.random.default_rng(seed)",
                )
            )


# -- TNG004: operating-system entropy --------------------------------------------

_OS_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
        "random.SystemRandom",
    }
)


class _OsEntropyVisitor(_CallRule):
    def check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in _OS_ENTROPY:
            self.report(
                self.context.finding(
                    node,
                    "TNG004",
                    f"{dotted}() draws operating-system entropy, which is "
                    "unreplayable by construction",
                )
            )


# -- TNG005: ordered iteration over sets -----------------------------------------

_SET_BUILTINS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_ORDERING_BUILTINS = frozenset({"list", "tuple", "enumerate", "reversed"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _SetIterationVisitor(ast.NodeVisitor):
    """Flags ordered consumption of statically set-valued expressions.

    Set-valuedness is decided syntactically: set displays/comprehensions,
    ``set(...)``/``frozenset(...)`` calls, set-operator expressions with a
    set-valued operand, set-method calls on a set-valued receiver — plus
    one level of local dataflow: a name every assignment of which (in the
    enclosing scope chain) is set-valued.
    """

    def __init__(self, context: FileContext, report: Report) -> None:
        self.context = context
        self.report = report
        self._scopes: list[dict[str, bool]] = []
        self._push_scope(context.tree)

    # -- set-valuedness -----------------------------------------------------------

    def _is_set_name(self, name: str) -> bool:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return False

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
        return False

    @staticmethod
    def _walk_scope(scope_node: ast.AST) -> Iterator[ast.AST]:
        """Document-order walk of one scope, not descending into inner
        function/lambda/class scopes."""
        inner = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        pending = list(ast.iter_child_nodes(scope_node))
        while pending:
            node = pending.pop(0)
            yield node
            if not isinstance(node, inner):
                pending = list(ast.iter_child_nodes(node)) + pending

    def _push_scope(self, scope_node: ast.AST) -> None:
        """Scan a scope's *direct* statements into a fresh env: name -> is-set.

        A name counts as set-valued only if every assignment to it in
        this scope is set-valued (a reassignment to anything else, or use
        as a loop target, demotes it).  The env is pushed *before* the
        scan so chained assignments (``a = set(x); b = a | y``) resolve.
        """
        verdict: dict[str, bool] = {}
        self._scopes.append(verdict)

        def note(name: str, is_set: bool) -> None:
            verdict[name] = verdict.get(name, True) and is_set

        for node in self._walk_scope(scope_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        note(target.id, self._is_set_expr(node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    note(node.target.id, self._is_set_expr(node.value))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    # s |= ... keeps a set a set; anything else demotes.
                    if not isinstance(node.op, _SET_OPS):
                        note(node.target.id, False)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        note(target.id, False)

    # -- scope management ---------------------------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        self._push_scope(node)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    # -- the diagnosed sites ------------------------------------------------------

    def _flag(self, node: ast.AST, how: str) -> None:
        self.report(
            self.context.finding(
                node,
                "TNG005",
                f"{how} iterates a set in hash order, which is not stable "
                "across runs; wrap it in sorted(...)",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST, kind: str) -> None:
        for generator in getattr(node, "generators", []):
            if self._is_set_expr(generator.iter):
                self._flag(generator.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # Order-insensitive sinks (sorted, min, max, sum, any, all, set)
        # make a genexp harmless; flagging every genexp would force noqa
        # churn on idiomatic sorted(x for x in s) — so only the ordered
        # materializers below and explicit loops are diagnosed.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDERING_BUILTINS
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag(node, f"{func.id}(...)")
        self.generic_visit(node)


# -- TNG006: mutable default arguments -------------------------------------------

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


class _MutableDefaultVisitor(ast.NodeVisitor):
    def __init__(self, context: FileContext, report: Report) -> None:
        self.context = context
        self.report = report
        self.aliases = _collect_aliases(context.tree)

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_CALLS:
                return True
            dotted = _resolve_dotted(node.func, self.aliases)
            return dotted in _MUTABLE_CALLS
        return False

    def _check(self, node: ast.AST) -> None:
        args = getattr(node, "args", None)
        if args is None:
            return
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable(default):
                self.report(
                    self.context.finding(
                        default,
                        "TNG006",
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside the function",
                        severity=Severity.WARNING,
                    )
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)
        self.generic_visit(node)


# -- registry --------------------------------------------------------------------

RULE_SUMMARIES: dict[str, str] = {
    "TNG001": "wall-clock read in simulation code",
    "TNG002": "RNG constructed without an explicit seed",
    "TNG003": "call on process-global RNG state",
    "TNG004": "operating-system entropy source",
    "TNG005": "ordered iteration over a set",
    "TNG006": "mutable default argument",
}


def default_rules() -> tuple[Rule, ...]:
    """The determinism rule family, in code order."""
    return (
        Rule("TNG001", "wallclock", RULE_SUMMARIES["TNG001"], _WallclockVisitor),
        Rule("TNG002", "unseeded-rng", RULE_SUMMARIES["TNG002"], _UnseededRngVisitor),
        Rule("TNG003", "global-rng", RULE_SUMMARIES["TNG003"], _GlobalRngVisitor),
        Rule("TNG004", "os-entropy", RULE_SUMMARIES["TNG004"], _OsEntropyVisitor),
        Rule(
            "TNG005",
            "set-iteration",
            RULE_SUMMARIES["TNG005"],
            _SetIterationVisitor,
        ),
        Rule(
            "TNG006",
            "mutable-default",
            RULE_SUMMARIES["TNG006"],
            _MutableDefaultVisitor,
            Severity.WARNING,
        ),
    )
