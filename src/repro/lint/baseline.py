"""Baselines: accept today's findings, block tomorrow's.

A baseline is a committed JSON file recording the fingerprints of known
(legacy) findings.  CI runs the linter *against* the baseline: findings
whose fingerprint is already recorded are filtered out, anything new
fails the job.  This is how a rule family can be introduced into a
codebase with pre-existing violations without a flag-day cleanup — and
how the cleanup's progress stays monotonic (``--write-baseline`` shrinks
the file as findings are fixed; it never grows silently).

Identity is positional-by-fingerprint: if one source line with two
identical violations loses one, the baseline slot count catches it.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from .findings import Finding

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """A multiset of accepted finding fingerprints with JSON persistence."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self._accepted: Counter[str] = Counter(fingerprints)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(f.fingerprint() for f in findings)

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("baseline must be a JSON object")
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        fingerprints = payload.get("fingerprints", [])
        if not isinstance(fingerprints, list) or not all(
            isinstance(f, str) for f in fingerprints
        ):
            raise ValueError("baseline 'fingerprints' must be a list of strings")
        return cls(fingerprints)

    @classmethod
    def from_file(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> str:
        """Stable rendering: sorted fingerprints, one per line (diffable)."""
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprints": sorted(self._accepted.elements()),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    # -- filtering ----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._accepted.values())

    def __contains__(self, fingerprint: str) -> bool:
        return self._accepted[fingerprint] > 0

    def filter_new(self, findings: Sequence[Finding]) -> list[Finding]:
        """Findings not covered by the baseline (order preserved).

        Each baseline slot absorbs at most one finding, so duplicate
        violations beyond the recorded count still surface.
        """
        budget = Counter(self._accepted)
        fresh: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint()
            if budget[fingerprint] > 0:
                budget[fingerprint] -= 1
            else:
                fresh.append(finding)
        return fresh
