"""The rule engine: file discovery, AST visiting, suppression, selection.

Architecture (mirrors the classic flake8/pylint split, scaled down):

* a :class:`Rule` couples a code (``TNGxxx``), metadata, and a factory
  producing an :class:`ast.NodeVisitor` per file;
* a :class:`FileContext` carries everything a rule may consult — path,
  source lines, the parsed tree, and the per-line suppression table;
* the :class:`LintEngine` walks the requested paths, runs every selected
  rule's visitor over each file once, applies ``# tango: noqa`` line
  suppressions, and returns sorted :class:`~repro.lint.findings.Finding`
  lists ready for a reporter or a baseline filter.

Suppression syntax, checked per physical line::

    x = time.time()          # tango: noqa[TNG001]  -- frozen wall clock
    y = whatever()           # tango: noqa          -- silences every rule

Codes are comma-separable (``noqa[TNG001,TNG005]``).  A bare ``# noqa``
(without the ``tango:`` prefix) is *ignored*: this engine's suppressions
are deliberate and auditable, not inherited from other tools.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

from .findings import Finding, Severity

__all__ = [
    "FileContext",
    "Rule",
    "LintEngine",
    "NOQA_RE",
    "PARSE_ERROR_CODE",
    "comment_lines",
]

#: Reserved code for files the engine cannot parse.
PARSE_ERROR_CODE = "TNG000"

#: The suppression-comment syntax, shared with the flow extractor.
NOQA_RE = re.compile(
    r"#\s*tango:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)
_NOQA_RE = NOQA_RE


def comment_lines(source: str) -> Optional[set[int]]:
    """Line numbers carrying a real ``#`` comment token.

    A noqa must be a *comment*, not a docstring that merely shows the
    syntax — this is what keeps the engine's own documentation from
    suppressing (or, for TNG007, registering) anything.  Returns None
    when the source cannot be tokenized (caller falls back to treating
    every line as a potential comment).
    """
    lines: set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return lines


@dataclass
class FileContext:
    """Everything rules get to see about one file under analysis."""

    path: str
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    comment_lines: Optional[set[int]] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if self.comment_lines is None:
            self.comment_lines = comment_lines(self.source)

    def line_text(self, line: int) -> str:
        """The 1-based physical line (empty string when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def suppressed_codes(self, line: int) -> Optional[frozenset[str]]:
        """Suppression on this line: None (none), empty set (all codes),
        or the explicit code set."""
        if self.comment_lines is not None and line not in self.comment_lines:
            return None
        match = NOQA_RE.search(self.line_text(line))
        if match is None:
            return None
        codes = match.group("codes")
        if codes is None:
            return frozenset()
        return frozenset(
            code.strip().upper() for code in codes.split(",") if code.strip()
        )

    def noqa_inventory(self) -> dict[int, Optional[list[str]]]:
        """Every ``# tango: noqa`` comment in the file: line → code list
        (sorted) or None for a blanket suppression."""
        inventory: dict[int, Optional[list[str]]] = {}
        for number, _text in enumerate(self.lines, start=1):
            codes = self.suppressed_codes(number)
            if codes is None:
                continue
            inventory[number] = sorted(codes) if codes else None
        return inventory

    def finding(
        self,
        node: ast.AST,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 0)
        column = getattr(node, "col_offset", -1) + 1
        return Finding(
            path=self.path,
            line=line,
            column=max(column, 0),
            code=code,
            message=message,
            severity=severity,
            snippet=self.line_text(line).strip(),
        )


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity plus a per-file visitor factory.

    The factory receives the :class:`FileContext` and a ``report``
    callable; the visitor it returns is run over the file's AST once.
    """

    code: str
    name: str
    summary: str
    make_visitor: Callable[
        [FileContext, Callable[[Finding], None]], ast.NodeVisitor
    ]
    severity: Severity = Severity.ERROR


class LintEngine:
    """Runs a rule set over files and directories.

    Args:
        rules: the rule set (see :func:`repro.lint.rules.default_rules`).
        select: restrict to these codes (None = all registered rules).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        select: Optional[Iterable[str]] = None,
    ) -> None:
        by_code: dict[str, Rule] = {}
        for rule in rules:
            if rule.code in by_code:
                raise ValueError(f"duplicate rule code {rule.code}")
            by_code[rule.code] = rule
        if select is not None:
            wanted = {code.strip().upper() for code in select}
            unknown = wanted - set(by_code) - {PARSE_ERROR_CODE}
            if unknown:
                raise ValueError(
                    f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                    f"have {', '.join(sorted(by_code))}"
                )
            by_code = {c: r for c, r in by_code.items() if c in wanted}
        self.rules: dict[str, Rule] = by_code
        #: Per linted path: the noqa inventory, which codes each noqa
        #: actually silenced this run, and the comment lines' text.
        #: Feeds the TNG007 unused-suppression rule in the runner.
        self.suppressions: dict[str, dict[str, dict[int, object]]] = {}

    # -- file discovery -----------------------------------------------------------

    @staticmethod
    def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
        """Expand files/directories into a sorted, deduplicated file list."""
        seen: list[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames if d != "__pycache__"
                    )
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            seen.append(os.path.join(dirpath, filename))
            elif path.endswith(".py") or os.path.isfile(path):
                seen.append(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
        ordered: list[str] = []
        for path in sorted(seen):
            if path not in ordered:
                ordered.append(path)
        return iter(ordered)

    # -- running ------------------------------------------------------------------

    def check_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one in-memory source blob (the unit tests' entry point)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 0,
                    column=(exc.offset or 1),
                    code=PARSE_ERROR_CODE,
                    message=f"cannot parse file: {exc.msg}",
                    severity=Severity.ERROR,
                )
            ]
        context = FileContext(path=path, source=source, tree=tree)
        raw: list[Finding] = []
        for code in sorted(self.rules):
            rule = self.rules[code]
            visitor = rule.make_visitor(context, raw.append)
            visitor.visit(tree)
        return self._apply_suppressions(context, raw)

    def check_file(self, path: str) -> list[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            return self.check_source(handle.read(), path=path)

    def run(self, paths: Iterable[str]) -> list[Finding]:
        """Lint every python file under ``paths``; sorted findings."""
        findings: list[Finding] = []
        for path in self.iter_python_files(paths):
            findings.extend(self.check_file(path))
        return sorted(findings)

    # -- suppression --------------------------------------------------------------

    def _apply_suppressions(
        self, context: FileContext, findings: list[Finding]
    ) -> list[Finding]:
        inventory = context.noqa_inventory()
        used: dict[int, list[str]] = {}
        kept: list[Finding] = []
        for finding in findings:
            suppressed = context.suppressed_codes(finding.line)
            if suppressed is not None and (
                not suppressed or finding.code in suppressed
            ):
                bucket = used.setdefault(finding.line, [])
                if finding.code not in bucket:
                    bucket.append(finding.code)
                continue
            kept.append(finding)
        if inventory:
            self.suppressions[context.path] = {
                "inventory": dict(inventory),
                "used": dict(used),
                "text": {
                    line: context.line_text(line).strip()
                    for line in inventory
                },
            }
        return sorted(kept)
