"""``tango lint``: static determinism & policy-safety analysis.

The reproduction's two load-bearing invariants are enforced at runtime
only: seed-exact replay (the CI chaos job byte-compares two runs) and
Gao–Rexford-faithful export policy (what makes simulated AS paths
trustworthy stand-ins for real transit).  This package moves both checks
*before* the simulation runs:

* :mod:`repro.lint.engine` + :mod:`repro.lint.rules` — an AST rule
  engine (visitor pattern, per-rule codes ``TNG001``–``TNG006``,
  ``# tango: noqa[TNGxxx]`` suppression) banning the constructs that
  break deterministic replay: wall-clock reads, unseeded or global RNGs,
  OS entropy, ordered set iteration, mutable default arguments.
* :mod:`repro.lint.gao_rexford` + :mod:`repro.lint.plans` — semantic
  checks (``TNG101``–``TNG105``) over scenario definitions, loaded but
  never simulated: consistent session labeling (no transit leaks),
  valley-free path feasibility, customer/provider acyclicity, community
  actions that can actually fire, and fault plans whose targets exist.
* :mod:`repro.lint.flow` — the whole-program pass (``--flow``):
  import/call-graph construction, interprocedural determinism-taint
  (``TNG201``–``TNG203``) and fork-safety (``TNG301``–``TNG303``)
  analysis with per-module summary caching under ``.tango-lint-cache/``.
* :mod:`repro.lint.baseline` + :mod:`repro.lint.reporters` +
  :mod:`repro.lint.runner` — the CI surface: committed-baseline
  filtering, text/JSON reports, the TNG007 unused-suppression audit,
  and the ``tango-repro lint`` command.
"""

from .baseline import Baseline
from .engine import NOQA_RE, PARSE_ERROR_CODE, FileContext, LintEngine, Rule
from .findings import Finding, Severity
from .flow import (
    FLOW_RULE_SUMMARIES,
    FlowAnalyzer,
    FlowResult,
    ProjectGraph,
    SummaryCache,
)
from .gao_rexford import (
    SEMANTIC_RULE_SUMMARIES,
    check_communities,
    check_network,
    leak_witness,
    valley_free_reachable,
)
from .plans import (
    ScenarioSpec,
    check_fault_plan,
    check_plan_files,
    check_scenario,
    enterprise_spec,
    mesh_spec,
    shipped_scenario_specs,
    vultr_spec,
)
from .reporters import render_json, render_text
from .rules import RULE_SUMMARIES, default_rules
from .runner import DEFAULT_BASELINE, UNUSED_NOQA_CODE, list_rules, run_lint

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "FLOW_RULE_SUMMARIES",
    "FileContext",
    "Finding",
    "FlowAnalyzer",
    "FlowResult",
    "LintEngine",
    "NOQA_RE",
    "PARSE_ERROR_CODE",
    "ProjectGraph",
    "RULE_SUMMARIES",
    "Rule",
    "SummaryCache",
    "UNUSED_NOQA_CODE",
    "SEMANTIC_RULE_SUMMARIES",
    "ScenarioSpec",
    "Severity",
    "check_communities",
    "check_fault_plan",
    "check_network",
    "check_plan_files",
    "check_scenario",
    "default_rules",
    "enterprise_spec",
    "leak_witness",
    "list_rules",
    "mesh_spec",
    "render_json",
    "render_text",
    "run_lint",
    "shipped_scenario_specs",
    "valley_free_reachable",
    "vultr_spec",
]
