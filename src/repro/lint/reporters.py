"""Reporters: findings -> text for humans, JSON for machines."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Optional, Sequence

from .findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    checked_files: int = 0,
    extra: Optional[dict[str, Any]] = None,
) -> str:
    """flake8-style ``path:line:col: CODE message`` lines plus a summary.

    ``extra`` carries auxiliary run stats; the ``flow`` key (analyzed /
    cached module counts from the whole-program pass) renders as one
    trailing line.
    """
    lines = [finding.render() for finding in findings]
    if findings:
        by_code = Counter(finding.code for finding in findings)
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {checked_files} file(s): {breakdown}"
        )
    else:
        lines.append(f"clean: 0 findings in {checked_files} file(s)")
    if extra and extra.get("flow"):
        flow = extra["flow"]
        lines.append(
            f"flow: {flow['analyzed']} module(s) analyzed, "
            f"{flow['cached']} from cache"
        )
    return "\n".join(lines) + "\n"


def render_json(
    findings: Sequence[Finding],
    checked_files: int = 0,
    extra: Optional[dict[str, Any]] = None,
) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    payload: dict[str, Any] = {
        "checked_files": checked_files,
        "finding_count": len(findings),
        "findings": [finding.as_dict() for finding in findings],
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
