"""The ``tango-repro lint`` entry point, kept out of :mod:`repro.cli`.

Composes the three check layers —

1. AST determinism rules over the given files/directories,
2. semantic Gao–Rexford checks over every shipped scenario,
3. fault-plan validation for any ``--plan`` files,

— then applies the baseline filter and renders a report.  Exit status:
0 clean (or all findings baselined), 1 findings, 2 usage/configuration
errors (unknown rule code, unreadable baseline, missing path).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, TextIO

from .baseline import Baseline
from .engine import PARSE_ERROR_CODE, LintEngine
from .findings import Finding
from .gao_rexford import SEMANTIC_RULE_SUMMARIES
from .plans import check_plan_files, check_scenario, shipped_scenario_specs
from .reporters import render_json, render_text
from .rules import default_rules

__all__ = ["run_lint", "list_rules", "DEFAULT_BASELINE"]

#: Baseline the CLI picks up automatically when present (committed at the
#: repo root, next to pyproject).
DEFAULT_BASELINE = "lint-baseline.json"


def list_rules(stdout: Optional[TextIO] = None) -> int:
    """Print every rule code with its severity and one-line summary."""
    out = stdout if stdout is not None else sys.stdout
    print(f"{PARSE_ERROR_CODE}  error    file cannot be parsed", file=out)
    for rule in default_rules():
        print(
            f"{rule.code}  {rule.severity.label:<8} "
            f"{rule.summary} [{rule.name}]",
            file=out,
        )
    for code, summary in SEMANTIC_RULE_SUMMARIES.items():
        print(f"{code}  error    {summary}", file=out)
    return 0


def run_lint(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    select: Optional[str] = None,
    baseline_path: Optional[str] = None,
    write_baseline: Optional[str] = None,
    plan_paths: Sequence[str] = (),
    semantics: bool = True,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Run the linter; returns the process exit status.

    Args:
        paths: files/directories for the AST rules (may be empty when
            only semantic checks are wanted).
        fmt: ``text`` or ``json``.
        select: comma-separated rule codes to restrict to (AST rules).
        baseline_path: baseline file to filter findings against.
        write_baseline: write the *unfiltered* findings to this baseline
            file and exit 0 (the accept-current-state workflow).
        plan_paths: fault-plan JSON files to validate against the Vultr
            scenario spec.
        semantics: run the Gao–Rexford checks over shipped scenarios.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr

    selected = (
        [code for code in select.split(",") if code.strip()] if select else None
    )
    try:
        engine = LintEngine(default_rules(), select=selected)
    except ValueError as exc:
        print(f"tango-repro lint: {exc}", file=err)
        return 2

    findings: list[Finding] = []
    checked_files = 0
    try:
        files = list(engine.iter_python_files(paths))
    except FileNotFoundError as exc:
        print(f"tango-repro lint: {exc}", file=err)
        return 2
    for file_path in files:
        findings.extend(engine.check_file(file_path))
        checked_files += 1

    if semantics and selected is None:
        for spec in shipped_scenario_specs():
            findings.extend(check_scenario(spec))
    if plan_paths:
        findings.extend(check_plan_files(list(plan_paths)))
    findings.sort()

    if write_baseline:
        Baseline.from_findings(findings).to_file(write_baseline)
        print(
            f"wrote {write_baseline} with {len(findings)} accepted finding(s)",
            file=out,
        )
        return 0

    if baseline_path:
        try:
            baseline = Baseline.from_file(baseline_path)
        except OSError as exc:
            print(f"tango-repro lint: cannot read baseline: {exc}", file=err)
            return 2
        except ValueError as exc:
            print(
                f"tango-repro lint: invalid baseline {baseline_path}: {exc}",
                file=err,
            )
            return 2
        findings = baseline.filter_new(findings)

    renderer = render_json if fmt == "json" else render_text
    out.write(renderer(findings, checked_files))
    return 1 if findings else 0
