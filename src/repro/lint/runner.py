"""The ``tango-repro lint`` entry point, kept out of :mod:`repro.cli`.

Composes the check layers —

1. AST determinism rules over the given files/directories,
2. semantic Gao–Rexford checks over every shipped scenario,
3. fault-plan validation for any ``--plan`` files,
4. (``--flow``) the whole-program determinism-taint and fork-safety
   pass (:mod:`repro.lint.flow`), incremental via ``.tango-lint-cache``,
5. the TNG007 unused-suppression audit over every noqa the run judged,

— then applies the baseline filter and renders a report.  Exit status:
0 clean (or all findings baselined), 1 findings, 2 usage/configuration
errors (unknown rule code, unreadable baseline, missing path).
"""

from __future__ import annotations

import sys
from typing import Any, Optional, Sequence, TextIO

from .baseline import Baseline
from .engine import PARSE_ERROR_CODE, LintEngine
from .findings import Finding, Severity
from .flow import FLOW_RULE_SUMMARIES, FlowAnalyzer, FlowResult, SummaryCache
from .flow.cache import DEFAULT_CACHE_DIR
from .gao_rexford import SEMANTIC_RULE_SUMMARIES
from .plans import check_plan_files, check_scenario, shipped_scenario_specs
from .reporters import render_json, render_text
from .rules import default_rules

__all__ = ["run_lint", "list_rules", "DEFAULT_BASELINE", "UNUSED_NOQA_CODE"]

#: Baseline the CLI picks up automatically when present (committed at the
#: repo root, next to pyproject).
DEFAULT_BASELINE = "lint-baseline.json"

#: A ``tango: noqa`` comment that suppresses nothing is itself a finding.
UNUSED_NOQA_CODE = "TNG007"


def list_rules(stdout: Optional[TextIO] = None) -> int:
    """Print every rule code with its severity and one-line summary."""
    out = stdout if stdout is not None else sys.stdout
    print(f"{PARSE_ERROR_CODE}  error    file cannot be parsed", file=out)
    for rule in default_rules():
        print(
            f"{rule.code}  {rule.severity.label:<8} "
            f"{rule.summary} [{rule.name}]",
            file=out,
        )
    print(
        f"{UNUSED_NOQA_CODE}  warning  "
        "suppression comment silences no finding [unused-noqa]",
        file=out,
    )
    for code, summary in SEMANTIC_RULE_SUMMARIES.items():
        print(f"{code}  error    {summary}", file=out)
    for code in sorted(FLOW_RULE_SUMMARIES):
        print(
            f"{code}  error    {FLOW_RULE_SUMMARIES[code]} (--flow)",
            file=out,
        )
    return 0


def _family_ran(code: str, *, flow: bool, semantics: bool) -> bool:
    """Did this run execute the rule family ``code`` belongs to?  Only
    then can an unused suppression of it be judged."""
    if code in (PARSE_ERROR_CODE, UNUSED_NOQA_CODE):
        return False
    if code.startswith("TNG1"):
        return semantics
    if code.startswith(("TNG2", "TNG3")):
        return flow
    return True  # per-file AST rules always run


def _unused_suppressions(
    engine: LintEngine,
    flow_result: Optional[FlowResult],
    *,
    flow: bool,
    semantics: bool,
) -> list[Finding]:
    """Derive TNG007 findings from this run's suppression bookkeeping.

    TNG007 findings deliberately bypass noqa handling: a dead blanket
    suppression must not be able to silence its own diagnosis.
    """
    # path -> line -> (codes|None, text)
    inventory: dict[str, dict[int, tuple[Optional[list[str]], str]]] = {}
    used: dict[str, dict[int, set[str]]] = {}
    for path, usage in engine.suppressions.items():
        for line, codes in usage["inventory"].items():
            text = str(usage["text"].get(line, ""))
            inventory.setdefault(path, {})[line] = (codes, text)  # type: ignore[arg-type]
        for line, codes_used in usage["used"].items():
            used.setdefault(path, {}).setdefault(line, set()).update(
                codes_used  # type: ignore[arg-type]
            )
    if flow_result is not None:
        for path, table in flow_result.suppressions.items():
            for line, entry in table.items():
                inventory.setdefault(path, {}).setdefault(
                    line, (entry["codes"], entry["text"])
                )
        for path, table in flow_result.used.items():
            for line, codes_used in table.items():
                used.setdefault(path, {}).setdefault(line, set()).update(
                    codes_used
                )

    findings: list[Finding] = []
    for path in sorted(inventory):
        for line in sorted(inventory[path]):
            codes, text = inventory[path][line]
            fired = used.get(path, {}).get(line, set())
            if codes is None:
                # Blanket noqa: judged only when every file-level family
                # ran (i.e. the flow pass too) — otherwise a TNG2xx
                # finding it legitimately silences may simply not have
                # been computed this run.
                if flow and not fired:
                    findings.append(
                        Finding(
                            path=path,
                            line=line,
                            column=0,
                            code=UNUSED_NOQA_CODE,
                            message=(
                                "blanket '# tango: noqa' suppresses "
                                "nothing — remove it or name the code it "
                                "is meant to silence"
                            ),
                            severity=Severity.WARNING,
                            snippet=text,
                        )
                    )
                continue
            dead = [
                code
                for code in codes
                if _family_ran(code, flow=flow, semantics=semantics)
                and code not in fired
            ]
            if dead:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        column=0,
                        code=UNUSED_NOQA_CODE,
                        message=(
                            f"unused suppression: noqa[{','.join(dead)}] "
                            "silences no finding on this line — remove "
                            "the dead code(s) from the comment"
                        ),
                        severity=Severity.WARNING,
                        snippet=text,
                    )
                )
    return findings


def run_lint(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    select: Optional[str] = None,
    baseline_path: Optional[str] = None,
    write_baseline: Optional[str] = None,
    plan_paths: Sequence[str] = (),
    semantics: bool = True,
    flow: bool = False,
    flow_cache: Optional[str] = DEFAULT_CACHE_DIR,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Run the linter; returns the process exit status.

    Args:
        paths: files/directories for the AST rules (may be empty when
            only semantic checks are wanted).
        fmt: ``text`` or ``json``.
        select: comma-separated rule codes to restrict to (AST rules
            and, with ``flow=True``, TNG2xx/TNG3xx flow rules).
        baseline_path: baseline file to filter findings against.
        write_baseline: write the *unfiltered* findings to this baseline
            file and exit 0 (the accept-current-state workflow).
        plan_paths: fault-plan JSON files to validate against the Vultr
            scenario spec.
        semantics: run the Gao–Rexford checks over shipped scenarios.
        flow: run the whole-program taint/fork-safety pass.
        flow_cache: summary cache directory (None = no caching).
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr

    selected = (
        [code.strip().upper() for code in select.split(",") if code.strip()]
        if select
        else None
    )
    flow_codes = set(FLOW_RULE_SUMMARIES)
    engine_select: Optional[list[str]] = None
    flow_select: Optional[set[str]] = None
    if selected is not None:
        flow_select = {code for code in selected if code in flow_codes}
        engine_select = [code for code in selected if code not in flow_codes]
        if flow_select and not flow:
            print(
                "tango-repro lint: rule code(s) "
                f"{', '.join(sorted(flow_select))} require --flow",
                file=err,
            )
            return 2
    try:
        engine = LintEngine(default_rules(), select=engine_select)
    except ValueError as exc:
        print(f"tango-repro lint: {exc}", file=err)
        return 2

    findings: list[Finding] = []
    checked_files = 0
    try:
        files = list(engine.iter_python_files(paths))
    except FileNotFoundError as exc:
        print(f"tango-repro lint: {exc}", file=err)
        return 2
    if selected is None or engine_select:
        for file_path in files:
            findings.extend(engine.check_file(file_path))
            checked_files += 1
    else:  # only flow codes selected: skip the per-file visitors
        checked_files = len(files)

    flow_result: Optional[FlowResult] = None
    flow_stats: Optional[dict[str, Any]] = None
    if flow:
        analyzer = FlowAnalyzer(SummaryCache(flow_cache))
        flow_result = analyzer.run(files)
        for finding in flow_result.findings:
            if finding.code == PARSE_ERROR_CODE:
                continue  # the per-file engine already reported it
            if flow_select is not None and finding.code not in flow_select:
                continue
            findings.append(finding)
        flow_stats = {
            "analyzed": len(flow_result.analyzed),
            "cached": len(flow_result.cached),
            "cache_dir": flow_cache,
        }

    if semantics and selected is None:
        for spec in shipped_scenario_specs():
            findings.extend(check_scenario(spec))
    if plan_paths:
        findings.extend(check_plan_files(list(plan_paths)))
    if selected is None:
        findings.extend(
            _unused_suppressions(
                engine, flow_result, flow=flow, semantics=semantics
            )
        )
    findings.sort()

    if write_baseline:
        Baseline.from_findings(findings).to_file(write_baseline)
        print(
            f"wrote {write_baseline} with {len(findings)} accepted finding(s)",
            file=out,
        )
        return 0

    if baseline_path:
        try:
            baseline = Baseline.from_file(baseline_path)
        except OSError as exc:
            print(f"tango-repro lint: cannot read baseline: {exc}", file=err)
            return 2
        except ValueError as exc:
            print(
                f"tango-repro lint: invalid baseline {baseline_path}: {exc}",
                file=err,
            )
            return 2
        findings = baseline.filter_new(findings)

    extra = {"flow": flow_stats} if flow_stats is not None else None
    renderer = render_json if fmt == "json" else render_text
    out.write(renderer(findings, checked_files, extra=extra))
    return 1 if findings else 0
