"""Static validation of scenarios and the fault plans aimed at them.

A :class:`ScenarioSpec` is the *static shape* of a deployment — edge
names, per-edge wide-area path labels, per-edge route-prefix counts, the
BGP router names, and the built (unconverged) control plane — extracted
from the scenario definition without establishing tunnels or running a
single simulated packet.  Against it we can check, pre-run:

* the control plane is Gao–Rexford-safe
  (:func:`repro.lint.gao_rexford.check_network`), and
* a :class:`~repro.faults.plan.FaultPlan` only references targets that
  exist (``TNG105``) — today the injector throws at arm time, which is
  runtime; here the same contract is a lint finding with the plan path.

:func:`shipped_scenario_specs` enumerates every scenario the repo ships
(Vultr, enterprise, a representative mesh) so ``tango-repro lint`` can
assert they all validate clean — the semantic half of the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..bgp.network import BgpNetwork
from ..faults.plan import FaultPlan
from .findings import Finding, Severity
from .gao_rexford import check_network

__all__ = [
    "ScenarioSpec",
    "vultr_spec",
    "enterprise_spec",
    "mesh_spec",
    "shipped_scenario_specs",
    "check_fault_plan",
    "check_plan_files",
    "check_scenario",
]


@dataclass
class ScenarioSpec:
    """The statically checkable shape of one deployment scenario.

    Attributes:
        name: scenario label, used in finding paths.
        edges: edge names in pairing order (fault-plan ``src``/``edge``).
        path_labels: per sending edge, the wide-area path labels a plan's
            ``path`` parameter may name.
        route_prefix_counts: per edge, how many route prefixes it
            announces (bounds ``prefix_index``).
        network: the built control plane.
        tenant_routers: the edges' tenant routers (valley-free pairs).
        srlg_groups: every shared-risk group name the scenario tags
            (bounds ``srlg_failure`` / ``maintenance_window`` targets).
        regions: named failure regions (bounds ``regional_outage``).
    """

    name: str
    edges: tuple[str, ...]
    path_labels: dict[str, tuple[str, ...]]
    route_prefix_counts: dict[str, int]
    network: BgpNetwork
    tenant_routers: tuple[str, ...] = ()
    srlg_groups: frozenset[str] = frozenset()
    regions: tuple[str, ...] = ()
    extra_findings: list[Finding] = field(default_factory=list)


# -- shipped scenario extraction -------------------------------------------------


def vultr_spec() -> ScenarioSpec:
    """Static shape of the paper's NY/LA Vultr deployment."""
    from ..scenarios.vultr import (
        LA_TO_NY_PATHS,
        NY_TO_LA_PATHS,
        VULTR_REGIONS,
        VULTR_SRLG_GROUPS,
        build_bgp_network,
        make_pairing,
    )

    pairing = make_pairing()
    return ScenarioSpec(
        name="vultr",
        edges=(pairing.a.name, pairing.b.name),
        path_labels={
            pairing.a.name: tuple(NY_TO_LA_PATHS),
            pairing.b.name: tuple(LA_TO_NY_PATHS),
        },
        route_prefix_counts={
            pairing.a.name: len(pairing.a.route_prefixes),
            pairing.b.name: len(pairing.b.route_prefixes),
        },
        network=build_bgp_network(),
        tenant_routers=(pairing.a.tenant_router, pairing.b.tenant_router),
        srlg_groups=VULTR_SRLG_GROUPS,
        regions=tuple(region.name for region in VULTR_REGIONS),
    )


def enterprise_spec() -> ScenarioSpec:
    """Static shape of the distributed-enterprise pairing."""
    from ..scenarios.enterprise import (
        FACTORY_TO_HQ_PATHS,
        HQ_TO_FACTORY_PATHS,
        build_enterprise_bgp,
        make_enterprise_pairing,
    )

    pairing = make_enterprise_pairing()
    return ScenarioSpec(
        name="enterprise",
        edges=(pairing.a.name, pairing.b.name),
        path_labels={
            pairing.a.name: tuple(FACTORY_TO_HQ_PATHS),
            pairing.b.name: tuple(HQ_TO_FACTORY_PATHS),
        },
        route_prefix_counts={
            pairing.a.name: len(pairing.a.route_prefixes),
            pairing.b.name: len(pairing.b.route_prefixes),
        },
        network=build_enterprise_bgp(),
        tenant_routers=(pairing.a.tenant_router, pairing.b.tenant_router),
    )


def mesh_spec(n_edges: int = 4) -> ScenarioSpec:
    """Static shape of a Tango-of-N mesh (control plane only).

    The mesh generator runs discovery while building (it is part of the
    scenario's definition, not of a simulation run), so this is the most
    expensive spec — still a fraction of a second for the default size.
    """
    from ..scenarios.topologies import build_mesh_scenario

    scenario = build_mesh_scenario(n_edges)
    return ScenarioSpec(
        name=f"mesh-{n_edges}",
        edges=tuple(scenario.edge_names),
        path_labels={},  # meshes take no fault plans today
        route_prefix_counts={},
        network=scenario.bgp,
        tenant_routers=tuple(scenario.edge_names),
    )


def shipped_scenario_specs() -> tuple[ScenarioSpec, ...]:
    """Every scenario the repo ships, ready for semantic checking."""
    return (vultr_spec(), enterprise_spec(), mesh_spec())


# -- checks ----------------------------------------------------------------------


def check_scenario(spec: ScenarioSpec) -> list[Finding]:
    """Gao–Rexford safety of one scenario's control plane."""
    findings = check_network(
        spec.network, edges=spec.tenant_routers or None, scenario=spec.name
    )
    return sorted(findings + spec.extra_findings)


def _plan_finding(path: str, message: str) -> Finding:
    return Finding(
        path=path,
        line=0,
        column=0,
        code="TNG105",
        message=message,
        severity=Severity.ERROR,
        snippet=message,
    )


def check_fault_plan(
    plan: FaultPlan,
    spec: ScenarioSpec,
    path: str = "<plan>",
) -> list[Finding]:
    """Every fault-plan target must exist in the scenario (``TNG105``).

    Mirrors the contracts :class:`~repro.faults.injector.FaultInjector`
    enforces at arm time, evaluated without a deployment.
    """
    findings: list[Finding] = []

    def bad(event_index: int, message: str) -> None:
        findings.append(
            _plan_finding(
                path,
                f"plan {plan.name!r} event #{event_index}: {message}",
            )
        )

    router_names = set(spec.network.routers)
    for index, event in enumerate(plan.events):
        params = event.params
        if "src" in params:
            src = str(params["src"])
            if src not in spec.edges:
                bad(index, f"unknown edge {src!r}; have {sorted(spec.edges)}")
            elif "path" in params:
                label = str(params["path"])
                labels = spec.path_labels.get(src, ())
                if label not in labels:
                    bad(
                        index,
                        f"edge {src!r} has no wide-area path {label!r}; "
                        f"have {sorted(labels)}",
                    )
        if "edge" in params:
            edge = str(params["edge"])
            if edge not in spec.edges:
                bad(index, f"unknown edge {edge!r}; have {sorted(spec.edges)}")
            elif "prefix_index" in params:
                count = spec.route_prefix_counts.get(edge, 0)
                prefix_index = int(params["prefix_index"])
                if not 0 <= prefix_index < count:
                    bad(
                        index,
                        f"prefix_index {prefix_index} out of range for edge "
                        f"{edge!r} with {count} route prefixes",
                    )
        if event.kind == "demand_surge":
            try:
                factor = float(params["factor"])
            except (TypeError, ValueError):
                bad(index, f"demand_surge factor {params['factor']!r} is not a number")
            else:
                if factor <= 0:
                    bad(index, f"demand_surge factor must be > 0, got {factor:g}")
        if event.kind == "telemetry_tamper":
            try:
                bias = float(params["bias_ms"])
            except (TypeError, ValueError):
                bad(index, f"telemetry_tamper bias_ms {params['bias_ms']!r} is not a number")
            else:
                if bias == 0:
                    bad(index, "telemetry_tamper bias_ms must be nonzero")
        if event.kind == "telemetry_replay":
            try:
                delay = float(params["delay_s"])
            except (TypeError, ValueError):
                bad(index, f"telemetry_replay delay_s {params['delay_s']!r} is not a number")
            else:
                if delay <= 0:
                    bad(index, f"telemetry_replay delay_s must be > 0, got {delay:g}")
        if event.kind == "gray_loss":
            try:
                rate = float(params["rate"])
            except (TypeError, ValueError):
                bad(index, f"gray_loss rate {params['rate']!r} is not a number")
            else:
                if not 0.0 < rate <= 1.0:
                    bad(index, f"gray_loss rate must be in (0, 1], got {rate:g}")
        if event.kind == "clock_drift":
            from ..trust.clock import ClockIntegrityMonitor

            try:
                ppm = float(params["ppm"])
            except (TypeError, ValueError):
                bad(index, f"clock_drift ppm {params['ppm']!r} is not a number")
            else:
                bound = ClockIntegrityMonitor.MAX_TRACKABLE_PPM
                if abs(ppm) > bound:
                    bad(
                        index,
                        f"clock_drift ppm {ppm:g} exceeds the clock-integrity "
                        f"monitor's re-estimation bound (|ppm| <= {bound:g}); "
                        "the defended controller cannot track it",
                    )
        if event.kind in ("srlg_failure", "maintenance_window"):
            group = str(params["group"])
            if group not in spec.srlg_groups:
                bad(
                    index,
                    f"unknown risk group {group!r}; scenario "
                    f"{spec.name!r} tags {sorted(spec.srlg_groups)}",
                )
        if event.kind == "maintenance_window" and "drain_s" in params:
            try:
                drain = float(params["drain_s"])
            except (TypeError, ValueError):
                bad(
                    index,
                    f"maintenance_window drain_s {params['drain_s']!r} "
                    "is not a number",
                )
            else:
                if not 0.0 <= drain < event.duration:
                    bad(
                        index,
                        f"maintenance_window drain_s {drain:g} must satisfy "
                        f"0 <= drain_s < duration ({event.duration:g})",
                    )
        if event.kind == "relay_outage":
            member = str(params["member"])
            if member not in spec.edges:
                bad(
                    index,
                    f"unknown federation member {member!r}; scenario "
                    f"{spec.name!r} declares {sorted(spec.edges)}",
                )
        if event.kind == "regional_outage":
            region = str(params["region"])
            if region not in spec.regions:
                bad(
                    index,
                    f"unknown region {region!r}; scenario {spec.name!r} "
                    f"defines {sorted(spec.regions)}",
                )
        if event.kind == "bgp_session_down":
            a, b = str(params["a"]), str(params["b"])
            for router in (a, b):
                if router not in router_names:
                    bad(
                        index,
                        f"unknown router {router!r}; have "
                        f"{sorted(router_names)}",
                    )
            if (
                a in router_names
                and b in router_names
                and b not in spec.network.router(a).neighbors
            ):
                bad(index, f"no BGP session between {a!r} and {b!r}")
    return sorted(findings)


def check_plan_files(
    plan_paths: Sequence[str],
    spec_factory: Callable[[], ScenarioSpec] = vultr_spec,
    spec: Optional[ScenarioSpec] = None,
) -> list[Finding]:
    """Load and validate fault-plan JSON files against a scenario.

    Unreadable or malformed files become ``TNG105`` findings rather than
    exceptions, so one bad plan cannot hide the others' reports.
    """
    resolved = spec if spec is not None else spec_factory()
    findings: list[Finding] = []
    for path in plan_paths:
        try:
            plan = FaultPlan.from_file(path)
        except OSError as exc:
            findings.append(_plan_finding(path, f"cannot read fault plan: {exc}"))
            continue
        except ValueError as exc:
            findings.append(_plan_finding(path, f"invalid fault plan: {exc}"))
            continue
        findings.extend(check_fault_plan(plan, resolved, path=path))
    return sorted(findings)
