"""Semantic Gao–Rexford safety checks over a :class:`BgpNetwork`.

The AST rules catch nondeterminism; this module catches *economically
impossible topologies* — scenario definitions whose peering relationships
would admit routes the real Internet would never carry.  The simulated
AS paths are only trustworthy stand-ins for real transit (the whole point
of ``repro.bgp``) while every session is labeled consistently and every
edge pair has a valley-free route.  All checks are static: the network is
*built* (cheap object construction) but never converged or simulated.

Rule codes (the semantic family, ``TNG1xx``):

========  ==============================================================
TNG101    inconsistent session labeling — one side's relationship is not
          the inverse of the other's.  This is the transit-leak bug: a
          router that wrongly believes a peer/provider is its customer
          exports peer- and provider-learned routes to it, e.g. a peer
          receiving a provider route (a "valley").  The finding carries a
          concrete leaked-path witness.
TNG102    no valley-free path between a pair of edge routers — discovery
          would find nothing; the scenario cannot establish.
TNG103    customer/provider cycle — an AS is (transitively) its own
          provider, the classic dispute-wheel precondition; convergence
          is no longer guaranteed.
TNG104    traffic-control community addressed to an unknown provider ASN
          or targeting an ASN that is not a neighbor of that provider —
          the action could never be interpreted, so discovery would
          silently lose paths.
TNG105    fault-plan event referencing a target that does not exist in
          the scenario (see :mod:`repro.lint.plans`).
========  ==============================================================
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from ..bgp.attributes import LargeCommunity
from ..bgp.communities import (
    ACTION_NO_EXPORT_ALL,
    ACTION_NO_EXPORT_TO,
    ACTION_PREPEND_TO,
)
from ..bgp.network import BgpNetwork
from ..bgp.policy import Relationship, gao_rexford_allows_export
from .findings import Finding, Severity

__all__ = [
    "SEMANTIC_RULE_SUMMARIES",
    "check_network",
    "check_communities",
    "leak_witness",
    "valley_free_reachable",
]

SEMANTIC_RULE_SUMMARIES: dict[str, str] = {
    "TNG101": "inconsistent BGP session labeling (transit-leak risk)",
    "TNG102": "no valley-free path between the tango edges",
    "TNG103": "customer/provider relationship cycle",
    "TNG104": "traffic-control community that can never fire",
    "TNG105": "fault-plan event targeting a nonexistent entity",
}


def _finding(
    scenario: str, code: str, message: str, severity: Severity = Severity.ERROR
) -> Finding:
    return Finding(
        path=f"scenario:{scenario}",
        line=0,
        column=0,
        code=code,
        message=message,
        severity=severity,
        snippet=message,
    )


# -- TNG101: session labeling consistency (the transit-leak check) ---------------


def leak_witness(
    network: BgpNetwork, exporter: str, receiver: str
) -> Optional[str]:
    """A concrete leaked route demonstrating an inconsistent session.

    If ``exporter`` labels ``receiver`` in a way that permits exports the
    receiver's own labeling says it must never see (e.g. exporter thinks
    "customer", receiver thinks "peer"), pick a provider/peer neighbor of
    the exporter and spell out the valley path.  Returns None when the
    session is consistent.
    """
    neighbor_out = network.router(exporter).neighbors.get(receiver)
    neighbor_in = network.router(receiver).neighbors.get(exporter)
    if neighbor_out is None or neighbor_in is None:
        return None
    if neighbor_out.relationship.inverse() is neighbor_in.relationship:
        return None
    # What the exporter would send under its own labeling, that the
    # receiver's labeling forbids it from ever being offered.
    for upstream, upstream_neighbor in sorted(
        network.router(exporter).neighbors.items()
    ):
        if upstream == receiver:
            continue
        learned = upstream_neighbor.relationship
        if gao_rexford_allows_export(
            learned, neighbor_out.relationship
        ) and not gao_rexford_allows_export(
            learned, neighbor_in.relationship.inverse()
        ):
            return (
                f"{learned.value}-learned route "
                f"{upstream} -> {exporter} -> {receiver} would be exported "
                f"({exporter} labels {receiver} a "
                f"{neighbor_out.relationship.value}) but {receiver} labels "
                f"{exporter} a {neighbor_in.relationship.value}, so the "
                f"route arrives across a "
                f"{neighbor_in.relationship.value} session: a Gao-Rexford "
                f"valley"
            )
    return (
        f"{exporter} labels {receiver} a {neighbor_out.relationship.value} "
        f"but {receiver} labels {exporter} a "
        f"{neighbor_in.relationship.value} (inconsistent session)"
    )


def _check_session_consistency(
    network: BgpNetwork, scenario: str
) -> list[Finding]:
    # Walk the routers' own neighbor tables, not the network's session
    # registry: a topology mis-wired with raw ``add_neighbor`` calls (the
    # very bug class this rule exists for) never registers a session.
    findings: list[Finding] = []
    seen: set[tuple[str, str]] = set()
    for a in sorted(network.routers):
        for b in sorted(network.router(a).neighbors):
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            if b not in network.routers:
                findings.append(
                    _finding(
                        scenario,
                        "TNG101",
                        f"{a} has a session with {b!r}, which is not a "
                        "router in the topology",
                    )
                )
                continue
            if a not in network.router(b).neighbors:
                findings.append(
                    _finding(
                        scenario,
                        "TNG101",
                        f"half-open session: {a} lists {b} as a neighbor "
                        f"but {b} has no session with {a}",
                    )
                )
                continue
            witness = leak_witness(network, a, b) or leak_witness(network, b, a)
            if witness:
                findings.append(
                    _finding(
                        scenario,
                        "TNG101",
                        f"transit leak admitted by session {a}~{b}: {witness}",
                    )
                )
    return findings


# -- TNG102: valley-free feasibility ---------------------------------------------

#: Propagation phases of a valley-free walk, in the only legal order:
#: climb customer->provider links, cross at most one peer link, then
#: descend provider->customer links.
_UP, _ACROSS, _DOWN = 0, 1, 2


def valley_free_reachable(network: BgpNetwork, origin: str) -> set[str]:
    """Routers that can hear a route originated at ``origin``.

    BFS over (router, phase) states.  An announcement travels up the
    origin's provider chain, across at most one peering, and down into
    customer cones — exactly the export rule
    :func:`~repro.bgp.policy.gao_rexford_allows_export` applies hop by
    hop, evaluated on the graph instead of the RIBs.
    """
    reached: set[str] = {origin}
    queue: deque[tuple[str, int]] = deque([(origin, _UP)])
    seen_states: set[tuple[str, int]] = {(origin, _UP)}
    while queue:
        name, phase = queue.popleft()
        router = network.router(name)
        for neighbor_name, neighbor in sorted(router.neighbors.items()):
            relationship = neighbor.relationship
            if relationship is Relationship.PROVIDER and phase == _UP:
                next_phase = _UP
            elif relationship is Relationship.PEER and phase == _UP:
                next_phase = _DOWN  # one peer crossing, then strictly down
            elif relationship is Relationship.CUSTOMER:
                next_phase = _DOWN
            else:
                continue
            reached.add(neighbor_name)
            state = (neighbor_name, next_phase)
            if state not in seen_states and neighbor_name in network.routers:
                seen_states.add(state)
                queue.append(state)
    return reached


def _check_valley_free_pairs(
    network: BgpNetwork, edges: Sequence[str], scenario: str
) -> list[Finding]:
    findings: list[Finding] = []
    for origin in edges:
        reached = valley_free_reachable(network, origin)
        for other in edges:
            if other != origin and other not in reached:
                findings.append(
                    _finding(
                        scenario,
                        "TNG102",
                        f"no valley-free path carries {origin}'s "
                        f"announcements to {other}; discovery between "
                        "this pair can never establish",
                    )
                )
    return findings


# -- TNG103: customer/provider cycles --------------------------------------------


def _check_provider_cycles(network: BgpNetwork, scenario: str) -> list[Finding]:
    provider_edges: dict[str, list[str]] = {}
    for name in sorted(network.routers):
        router = network.router(name)
        provider_edges[name] = sorted(
            neighbor_name
            for neighbor_name, neighbor in router.neighbors.items()
            if neighbor.relationship is Relationship.PROVIDER
        )
    findings: list[Finding] = []
    state: dict[str, int] = {}  # 0 in progress, 1 done
    stack_path: list[str] = []

    def visit(name: str) -> None:
        state[name] = 0
        stack_path.append(name)
        for provider in provider_edges.get(name, ()):
            if provider not in provider_edges:
                continue  # session to an unregistered router (TNG101)
            if state.get(provider) == 0:
                cycle = stack_path[stack_path.index(provider) :] + [provider]
                findings.append(
                    _finding(
                        scenario,
                        "TNG103",
                        "customer/provider cycle "
                        + " -> ".join(cycle)
                        + ": an AS is transitively its own provider; "
                        "convergence is not guaranteed",
                    )
                )
            elif provider not in state:
                visit(provider)
        stack_path.pop()
        state[name] = 1

    for name in sorted(network.routers):
        if name not in state:
            visit(name)
    return findings


# -- TNG104: community-to-action maps --------------------------------------------


def check_communities(
    network: BgpNetwork,
    communities: Iterable[LargeCommunity],
    scenario: str = "network",
) -> list[Finding]:
    """Validate traffic-control communities against the topology.

    Every action community must be addressed to a provider ASN that has
    at least one router in the network, encode a known action, and (for
    targeted actions) name an ASN that is actually a neighbor of one of
    that provider's routers — otherwise the action can never fire and a
    discovery recipe built on it silently loses paths.
    """
    routers_by_asn: dict[int, list[str]] = {}
    for name in sorted(network.routers):
        routers_by_asn.setdefault(network.router(name).asn, []).append(name)
    findings: list[Finding] = []
    for community in communities:
        admin = community.global_admin
        if admin not in routers_by_asn:
            findings.append(
                _finding(
                    scenario,
                    "TNG104",
                    f"community {community} is addressed to AS{admin}, "
                    "which no router in the topology speaks for",
                )
            )
            continue
        action = community.data1
        targeted = action == ACTION_NO_EXPORT_TO or (
            ACTION_PREPEND_TO < action <= ACTION_PREPEND_TO + 3
        )
        if not targeted and action != ACTION_NO_EXPORT_ALL:
            findings.append(
                _finding(
                    scenario,
                    "TNG104",
                    f"community {community} encodes unknown action code "
                    f"{action} for AS{admin}",
                )
            )
            continue
        if targeted:
            target = community.data2
            neighbor_asns = {
                neighbor.asn
                for name in routers_by_asn[admin]
                for neighbor in network.router(name).neighbors.values()
            }
            if target not in neighbor_asns:
                findings.append(
                    _finding(
                        scenario,
                        "TNG104",
                        f"community {community} targets AS{target}, which "
                        f"is not a neighbor of any AS{admin} router; the "
                        "action can never fire",
                    )
                )
    return findings


def _originated_communities(network: BgpNetwork) -> list[LargeCommunity]:
    communities: list[LargeCommunity] = []
    for name in sorted(network.routers):
        for _prefix, attributes in sorted(
            network.router(name).originated.items(), key=lambda kv: str(kv[0])
        ):
            communities.extend(attributes.large_communities)
    return communities


# -- entry point -----------------------------------------------------------------


def check_network(
    network: BgpNetwork,
    edges: Optional[Sequence[str]] = None,
    scenario: str = "network",
) -> list[Finding]:
    """Run every static Gao–Rexford safety check.

    Args:
        network: the built (not necessarily converged) topology.
        edges: router names whose pairwise valley-free reachability must
            hold (typically the tango tenant routers).  None skips the
            feasibility check.
        scenario: label used in finding paths (``scenario:<name>``).

    Returns:
        Sorted findings; empty means the topology is policy-safe.

    Note:
        Custom import/export policies (``BgpRouter.import_policies`` /
        ``export_policies``) can only *reject* routes, never force an
        export past the Gao–Rexford gate, so they cannot create leaks
        and are out of scope here.
    """
    findings = _check_session_consistency(network, scenario)
    findings += _check_provider_cycles(network, scenario)
    if edges:
        for edge in edges:
            network.router(edge)  # raises KeyError with the known names
        findings += _check_valley_free_pairs(network, edges, scenario)
    findings += check_communities(
        network, _originated_communities(network), scenario
    )
    return sorted(findings)
