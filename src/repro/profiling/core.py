"""Named timers and per-subsystem counters.

The profiler measures *host* wall-clock time (how long the engine takes
to run), never simulation time, and nothing in the simulation consults
it — so it cannot perturb replay determinism.  The clock is held as an
injectable callable: tests pass a fake, and simulation-logic lint
(TNG001) stays meaningful because no simulation module calls a wall
clock directly.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bgp.network import BgpNetwork
    from ..netsim.events import Simulator
    from ..netsim.ticks import TickScheduler
    from ..traffic.fluid import FluidEngine

__all__ = ["TimerStat", "Profiler"]


@dataclass
class TimerStat:
    """Accumulated wall-clock statistics for one named timer."""

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }


@dataclass
class Profiler:
    """Collects named timers and integer counters.

    Attach one to a :class:`~repro.bgp.network.BgpNetwork`, a
    :class:`~repro.core.discovery.PathDiscovery`, a simulator, or a
    controller (each exposes an optional ``profiler`` attribute) and the
    subsystem wraps its hot entry points in :meth:`time` spans; the
    always-on cheap counters those subsystems maintain are pulled in with
    the ``capture_*`` helpers.

    Args:
        clock: a ``() -> float`` monotonic second counter.  Defaults to
            the host's performance counter; tests inject a fake.
    """

    clock: Callable[[], float] = field(default=time.perf_counter)
    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)

    # -- recording ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_counter(self, name: str, value: int) -> None:
        """Set the named counter to an absolute value."""
        self.counters[name] = value

    def record(self, name: str, elapsed_s: float) -> None:
        """Fold an externally measured duration into the named timer."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.add(elapsed_s)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a block: ``with profiler.time("bgp.converge"): ...``."""
        start = self.clock()
        try:
            yield
        finally:
            self.record(name, self.clock() - start)

    # -- counter capture ------------------------------------------------------

    def capture_network(self, network: "BgpNetwork", prefix: str = "bgp") -> None:
        """Pull a network's always-on counters (and its routers')."""
        self.set_counter(f"{prefix}.convergences", network.convergence_count)
        self.set_counter(f"{prefix}.total_waves", network.total_rounds)
        self.set_counter(f"{prefix}.updates_delivered", network.updates_delivered)
        self.set_counter(
            f"{prefix}.withdrawals_delivered", network.withdrawals_delivered
        )
        self.set_counter(f"{prefix}.routers_scanned", network.routers_scanned)
        self.set_counter(f"{prefix}.snapshot_restores", network.snapshot_restores)
        decisions_run = 0
        decisions_memoized = 0
        for router in network.routers.values():
            decisions_run += router.decisions_run
            decisions_memoized += router.decisions_memoized
        self.set_counter(f"{prefix}.decisions_run", decisions_run)
        self.set_counter(f"{prefix}.decisions_memoized", decisions_memoized)

    def capture_simulator(self, sim: "Simulator", prefix: str = "sim") -> None:
        """Pull a simulator's always-on counters."""
        self.set_counter(f"{prefix}.events_processed", sim.events_processed)
        self.set_counter(f"{prefix}.compactions", sim.compactions)
        self.set_counter(f"{prefix}.tombstones_reaped", sim.tombstones_reaped)

    def capture_traffic_engine(
        self, engine: "FluidEngine", prefix: str = "fluid"
    ) -> None:
        """Pull a fluid engine's always-on counters (scalar or vector)."""
        self.set_counter(f"{prefix}.steps_total", engine.steps)
        self.set_counter(
            f"{prefix}.peak_concurrent_flows", int(engine.peak_concurrent_flows)
        )
        self.set_counter(f"{prefix}.splits_recomputed", engine.splits_recomputed)

    def capture_scheduler(
        self, scheduler: "TickScheduler", prefix: str = "ticks"
    ) -> None:
        """Pull a tick scheduler's always-on counters."""
        self.set_counter(f"{prefix}.rounds", scheduler.rounds)
        self.set_counter(f"{prefix}.callbacks_run", scheduler.callbacks_run)
        self.set_counter(f"{prefix}.registered", scheduler.registered)

    # -- emission -------------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view: counters plus per-timer statistics."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: stat.as_dict()
                for name, stat in sorted(self.timers.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def format_table(self) -> str:
        """Human-readable timer/counter table for the CLI."""
        lines = []
        if self.timers:
            lines.append(f"{'timer':<36} {'calls':>7} {'total s':>10} {'max s':>10}")
            for name, stat in sorted(self.timers.items()):
                lines.append(
                    f"{name:<36} {stat.calls:>7} "
                    f"{stat.total_s:>10.4f} {stat.max_s:>10.4f}"
                )
        if self.counters:
            if lines:
                lines.append("")
            lines.append(f"{'counter':<48} {'value':>12}")
            for name, value in sorted(self.counters.items()):
                lines.append(f"{name:<48} {value:>12}")
        return "\n".join(lines)
