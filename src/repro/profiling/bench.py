"""Standard perf workloads: the engine before/after measurements.

Three workloads over the shipped Vultr scenario, each run under the
full-scan baseline (``rounds`` engine, no snapshot cache — the pre-
incremental configuration) and the optimized configuration
(``incremental`` engine plus snapshot cache):

* **discovery** — both directions of the paper's Section 4.1 iterative
  suppression discovery, repeated as a periodic-rediscovery cycle.
* **reset_session** — repeated BGP session bounces of the Vultr-NY/NTT
  session with edge prefixes announced.
* **fault_replay_mttr** — a BGP-heavy chaos replay (session flaps and a
  prefix withdrawal under quarantine-enabled controllers and live
  probes), timing the armed simulation run.

Used by ``tango-repro profile`` and the CI perf gate
(``benchmarks/test_bench_engine_perf.py``); results are emitted as
``BENCH_PERF.json``.  Wall-clock is read through the profiler's
injectable clock, keeping simulation modules free of direct wall-clock
calls (TNG001).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..bgp.network import ENGINE_INCREMENTAL, ENGINE_ROUNDS, BgpNetwork
from ..bgp.snapshot import SnapshotCache
from ..core.discovery import PathDiscovery
from ..faults.injector import FaultInjector
from ..faults.plan import FaultEvent, FaultPlan
from ..faults.recovery import RecoveryLog
from ..traffic.bench import (
    TrafficReport,
    run_equivalence_workload,
    run_scale_workload,
    run_tick_workload,
    run_traffic_suite,
    run_vector_workload,
)
from .core import Profiler

__all__ = [
    "DISCOVERY_MIN_SPEEDUP",
    "WorkloadResult",
    "PerfReport",
    "bench_fault_plan",
    "run_discovery_workload",
    "run_reset_workload",
    "run_fault_replay_workload",
    "run_perf_suite",
    # Traffic-engine workloads (see repro.traffic.bench): re-exported so
    # repro.profiling.bench remains the one-stop module for standard
    # benchmark workloads.
    "TrafficReport",
    "run_scale_workload",
    "run_equivalence_workload",
    "run_vector_workload",
    "run_tick_workload",
    "run_traffic_suite",
]

#: The CI perf gate: incremental full-path discovery over the Vultr
#: topology must beat the full-scan baseline by at least this factor.
DISCOVERY_MIN_SPEEDUP = 3.0

#: The probe prefix the discovery workload announces (same as the CLI).
_PROBE_PREFIX = "2001:db8:fff::/48"


@dataclass
class WorkloadResult:
    """Before/after wall-clock for one workload."""

    name: str
    baseline_s: float
    incremental_s: float
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.incremental_s <= 0.0:
            return float("inf")
        return self.baseline_s / self.incremental_s

    def as_dict(self) -> dict[str, object]:
        return {
            "baseline_s": self.baseline_s,
            "incremental_s": self.incremental_s,
            "speedup": self.speedup,
            "detail": dict(sorted(self.detail.items())),
        }


@dataclass
class PerfReport:
    """Everything one perf-suite run measured."""

    scenario: str
    smoke: bool
    workloads: dict[str, WorkloadResult]
    profile: dict[str, object]

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": "tango-repro/bench-perf/v1",
            "scenario": self.scenario,
            "smoke": self.smoke,
            "thresholds": {"discovery_min_speedup": DISCOVERY_MIN_SPEEDUP},
            "workloads": {
                name: wl.as_dict() for name, wl in sorted(self.workloads.items())
            },
            "profile": self.profile,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"


def _best_of(repeat: int, fn: Callable[[], None], clock: Callable[[], float]) -> float:
    """Minimum wall time over ``repeat`` runs (noise-robust)."""
    best: Optional[float] = None
    for _ in range(max(repeat, 1)):
        start = clock()
        fn()
        elapsed = clock() - start
        if best is None or elapsed < best:
            best = elapsed
    return float(best if best is not None else 0.0)


# -- discovery ---------------------------------------------------------------


def _discovery_pass(
    engine: str,
    cached: bool,
    runs: int,
    profiler: Optional[Profiler] = None,
) -> BgpNetwork:
    """One rediscovery cycle: both directions, ``runs`` times over."""
    from ..scenarios.vultr import VULTR_ASN, build_bgp_network

    bgp = build_bgp_network()
    bgp.use_engine(engine)
    bgp.profiler = profiler
    snapshots = SnapshotCache() if cached else None
    discovery = PathDiscovery(bgp, VULTR_ASN, snapshots=snapshots)
    discovery.profiler = profiler
    for _ in range(runs):
        for announcer, observer in (
            ("tango-ny", "tango-la"),
            ("tango-la", "tango-ny"),
        ):
            discovery.discover(
                announcer=announcer,
                observer=observer,
                probe_prefix=_PROBE_PREFIX,
            )
    return bgp


def run_discovery_workload(
    repeat: int = 3, runs: int = 3, profiler: Optional[Profiler] = None
) -> WorkloadResult:
    """Full-path discovery over the Vultr topology, both engines."""
    prof = profiler if profiler is not None else Profiler()
    clock = prof.clock
    baseline_s = _best_of(
        repeat, lambda: _discovery_pass(ENGINE_ROUNDS, False, runs), clock
    )
    incremental_s = _best_of(
        repeat, lambda: _discovery_pass(ENGINE_INCREMENTAL, True, runs), clock
    )
    # One instrumented pass so the report carries engine counters.
    instrumented = _discovery_pass(ENGINE_INCREMENTAL, True, runs, prof)
    prof.capture_network(instrumented, prefix="discovery.bgp")
    return WorkloadResult(
        name="discovery",
        baseline_s=baseline_s,
        incremental_s=incremental_s,
        detail={"repeat": float(repeat), "runs_per_pass": float(runs)},
    )


# -- session reset -----------------------------------------------------------


def _reset_pass(engine: str, resets: int) -> None:
    from ..scenarios.vultr import build_bgp_network

    bgp = build_bgp_network()
    bgp.use_engine(engine)
    # The edges' first route prefixes (see scenarios.vultr.make_pairing).
    bgp.router("tango-la").originate("2001:db8:a0::/48")
    bgp.router("tango-ny").originate("2001:db8:b0::/48")
    bgp.converge()
    for _ in range(resets):
        bgp.reset_session("vultr-ny", "ntt")


def run_reset_workload(
    repeat: int = 3, resets: int = 5, profiler: Optional[Profiler] = None
) -> WorkloadResult:
    """Repeated session bounces of the busiest Vultr transit session."""
    prof = profiler if profiler is not None else Profiler()
    clock = prof.clock
    baseline_s = _best_of(
        repeat, lambda: _reset_pass(ENGINE_ROUNDS, resets), clock
    )
    incremental_s = _best_of(
        repeat, lambda: _reset_pass(ENGINE_INCREMENTAL, resets), clock
    )
    return WorkloadResult(
        name="reset_session",
        baseline_s=baseline_s,
        incremental_s=incremental_s,
        detail={"repeat": float(repeat), "resets_per_pass": float(resets)},
    )


# -- fault replay ------------------------------------------------------------


def bench_fault_plan() -> FaultPlan:
    """A BGP-heavy plan: two session flaps plus a prefix withdrawal."""
    return FaultPlan(
        name="bench-bgp-replay",
        seed=11,
        events=(
            FaultEvent(
                "bgp_session_down",
                at=1.0,
                duration=1.0,
                params={"a": "vultr-ny", "b": "ntt"},
            ),
            FaultEvent(
                "prefix_withdraw",
                at=3.5,
                duration=1.0,
                params={"edge": "ny", "prefix_index": 0},
            ),
            FaultEvent(
                "bgp_session_down",
                at=6.0,
                duration=1.0,
                params={"a": "vultr-la", "b": "telia"},
            ),
        ),
    )


def _fault_replay(
    engine: str, use_snapshots: bool, clock: Callable[[], float]
) -> tuple[float, float, str]:
    """Arm the bench plan on a fresh deployment and run it.

    Returns ``(replay_wall_s, converge_wall_s, recovery_log_text)`` —
    establishment is setup, only the armed replay is timed.  The second
    element isolates the control-plane share: replay wall time is
    dominated by the packet-level simulation, which the engine change
    does not touch.
    """
    from ..core.controller import QuarantinePolicy, TangoController
    from ..core.policy import LowestDelaySelector
    from ..netsim.trace import PacketFactory
    from ..scenarios.vultr import VultrDeployment

    plan = bench_fault_plan()
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    controllers = {}
    for edge in (deployment.pairing.a.name, deployment.pairing.b.name):
        deployment.start_path_probes(edge)
        deployment.set_data_policy(
            edge,
            LowestDelaySelector(deployment.gateway(edge).outbound, window_s=1.0),
        )
        controller = TangoController(
            deployment.gateway(edge),
            deployment.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
        )
        controller.start()
        deployment.attach_controller(edge, controller)
        controllers[edge] = controller
    for edge in (deployment.pairing.a.name, deployment.pairing.b.name):
        peer = deployment.pairing.peer_of(edge)
        factory = PacketFactory(
            src=str(deployment.pairing.edge(edge).host_address(4)),
            dst=str(peer.host_address(4)),
            flow_label=9,
        )
        send = deployment.sender_for(edge)
        deployment.sim.call_every(0.02, lambda f=factory, s=send: s(f.build()))

    deployment.bgp.use_engine(engine)
    replay_prof = Profiler()
    deployment.bgp.profiler = replay_prof
    injector = FaultInjector(deployment, plan, use_snapshots=use_snapshots)
    start = clock()
    injector.arm()
    deployment.net.run(until=plan.horizon + 2.0)
    elapsed = clock() - start
    converge_s = sum(
        stat.total_s
        for name, stat in sorted(replay_prof.timers.items())
        if name.startswith("bgp.converge.")
    )
    log = RecoveryLog.build(plan, controllers)
    return elapsed, converge_s, log.format()


def run_fault_replay_workload(
    repeat: int = 1, profiler: Optional[Profiler] = None
) -> WorkloadResult:
    """BGP-heavy chaos replay under both engine configurations.

    Also cross-checks that both configurations produce byte-identical
    recovery logs — a perf run that changed behavior is worthless.
    """
    prof = profiler if profiler is not None else Profiler()
    clock = prof.clock
    baseline_best: Optional[float] = None
    incremental_best: Optional[float] = None
    baseline_converge = incremental_converge = 0.0
    baseline_log = incremental_log = ""
    for _ in range(max(repeat, 1)):
        elapsed, converge_s, baseline_log = _fault_replay(
            ENGINE_ROUNDS, False, clock
        )
        if baseline_best is None or elapsed < baseline_best:
            baseline_best, baseline_converge = elapsed, converge_s
        elapsed, converge_s, incremental_log = _fault_replay(
            ENGINE_INCREMENTAL, True, clock
        )
        if incremental_best is None or elapsed < incremental_best:
            incremental_best, incremental_converge = elapsed, converge_s
    if baseline_log != incremental_log:
        raise AssertionError(
            "engine configurations disagree on the recovery log; "
            "refusing to report perf numbers for divergent behavior"
        )
    converge_speedup = (
        baseline_converge / incremental_converge
        if incremental_converge > 0.0
        else float("inf")
    )
    return WorkloadResult(
        name="fault_replay_mttr",
        baseline_s=float(baseline_best or 0.0),
        incremental_s=float(incremental_best or 0.0),
        detail={
            "repeat": float(repeat),
            "baseline_converge_s": baseline_converge,
            "incremental_converge_s": incremental_converge,
            "converge_speedup": converge_speedup,
        },
    )


# -- the suite ---------------------------------------------------------------


def _traffic_workload_results(
    smoke: bool, profiler: Profiler
) -> dict[str, WorkloadResult]:
    """The E19 traffic workloads in before/after ``WorkloadResult`` shape.

    ``vector_fluid`` compares the scalar fluid oracle (baseline) with the
    vectorized engine; ``tick_scheduler`` compares one ``PeriodicTask``
    per controller (baseline) with the shared tick wheel.
    """
    vector = run_vector_workload(
        duration_s=10.0 if smoke else 30.0, profiler=profiler
    )
    ticks = run_tick_workload(
        duration_s=2.0 if smoke else 10.0, profiler=profiler
    )
    keep = (
        "steps",
        "n_tunnels",
        "buckets",
        "flow_updates_per_s",
        "bucket_updates_per_s",
        "splits_recomputed",
        "controllers",
        "rounds",
        "callbacks_run",
        "per_round_s",
        "heap_live_dedicated",
        "heap_live_shared",
    )
    results: dict[str, WorkloadResult] = {}
    for name, wl, baseline_key, incremental_key in (
        ("vector_fluid", vector, "wall_scalar_s", "wall_vector_s"),
        ("tick_scheduler", ticks, "wall_dedicated_s", "wall_shared_s"),
    ):
        detail = {
            k: float(wl.detail[k]) for k in keep if k in wl.detail
        }
        detail["passed"] = float(wl.passed)
        results[name] = WorkloadResult(
            name=name,
            baseline_s=float(wl.detail[baseline_key]),
            incremental_s=float(wl.detail[incremental_key]),
            detail=detail,
        )
    return results


def run_perf_suite(
    repeat: int = 3,
    smoke: bool = False,
    include_replay: bool = True,
    include_traffic: bool = False,
    profiler: Optional[Profiler] = None,
) -> PerfReport:
    """Run every workload and assemble the ``BENCH_PERF.json`` payload.

    Args:
        repeat: best-of repetitions per measurement.
        smoke: CI mode — fewer repetitions, same workloads.
        include_replay: skip the (slow) fault-replay workload when False.
        include_traffic: also run the E19 traffic workloads
            (vectorized fluid engine, batched tick scheduler) and fold
            them in as before/after rows.
        profiler: collector for timers/counters; a fresh one by default.
    """
    prof = profiler if profiler is not None else Profiler()
    if smoke:
        repeat = min(repeat, 2)
    workloads: dict[str, WorkloadResult] = {}
    with prof.time("suite.total"):
        workloads["discovery"] = run_discovery_workload(
            repeat=repeat, profiler=prof
        )
        workloads["reset_session"] = run_reset_workload(
            repeat=repeat, profiler=prof
        )
        if include_replay:
            workloads["fault_replay_mttr"] = run_fault_replay_workload(
                repeat=1 if smoke else max(1, repeat - 1), profiler=prof
            )
        if include_traffic:
            workloads.update(_traffic_workload_results(smoke, prof))
    return PerfReport(
        scenario="vultr",
        smoke=smoke,
        workloads=workloads,
        profile=prof.as_dict(),
    )
