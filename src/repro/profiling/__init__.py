"""Performance measurement for the reproduction's hot paths.

Two layers:

* :class:`Profiler` (``repro.profiling.core``) — named wall-clock timers
  plus counter capture from the always-on cheap integers maintained by
  :class:`~repro.bgp.network.BgpNetwork`, the netsim
  :class:`~repro.netsim.events.Simulator`, routers, and the controller.
* ``repro.profiling.bench`` — the standard workloads behind
  ``tango-repro profile`` and the CI perf gate: full-path discovery,
  session resets, and a BGP-heavy fault-replay MTTR run, each under both
  propagation engines, emitted as ``BENCH_PERF.json``.

Import note: ``bench`` pulls in scenarios and faults; import it directly
(``from repro.profiling.bench import ...``) so that lightweight users of
:class:`Profiler` do not pay for the whole stack.
"""

from .core import Profiler, TimerStat

__all__ = ["Profiler", "TimerStat"]
