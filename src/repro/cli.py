"""Command-line interface: ``tango-repro <command>``.

Eight subcommands, each a self-contained run of one slice of the system:

* ``discover`` — run Figure 3's iterative suppression discovery and print
  the path/community table per direction.
* ``campaign`` — sample a measurement campaign window and print per-path
  statistics (means, percentiles, rolling-window jitter).
* ``failover`` — packet-level failure-recovery demo (blackhole a path,
  time Tango's reroute, compare with BGP convergence).
* ``mesh`` — the Tango-of-N diversity sweep.
* ``figures`` — export the Figure 4 data series as CSV.
* ``faults`` — chaos campaigns: ``faults run --plan plan.json --seed N``
  arms a deterministic fault plan against the deployment, runs the
  quarantine-enabled controller, and prints the recovery log (identical
  bytes for identical plan + seed); ``faults sample-plan`` prints a
  template plan; ``faults campaign --plans N --workers W --seed S`` fans
  a generated adversarial-plan population across worker processes, runs
  each plan defended and undefended, and writes the E17-gated
  ``BENCH_ROBUST.json`` (byte-identical for the same seed, regardless
  of worker count); ``faults campaign --correlated`` runs the E18
  correlated-failure family (SRLG cuts, regional outages, maintenance
  drains) against the fate-aware fast-reroute stack instead.
* ``profile`` — run the standard perf workloads (discovery, session
  resets, fault replay) under the full-scan baseline and the incremental
  engine + snapshot cache, print the speedup table, and write
  ``BENCH_PERF.json``.
* ``lint`` — static determinism & policy-safety analysis: AST rules
  (``TNG001``–``TNG006``) over source files, Gao–Rexford semantic checks
  over every shipped scenario, and fault-plan target validation.
  Examples::

      tango-repro lint src/repro                 # the CI gate
      tango-repro lint src/repro --format json   # machine-readable
      tango-repro lint --select TNG005 src       # one rule only
      tango-repro lint --plan plan.json src      # also validate a plan
      tango-repro lint --write-baseline lint-baseline.json src
                                                 # accept current state

Installed as a console script by ``pip install -e .``; also runnable as
``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults.plan import FaultPlan
    from .netsim.packet import Packet

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-repro",
        description="Tango (HotNets'22) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("discover", help="run Fig. 3 path discovery")

    campaign = sub.add_parser("campaign", help="sample a measurement window")
    campaign.add_argument(
        "--direction", choices=("ny", "la"), default="ny", help="sending edge"
    )
    campaign.add_argument(
        "--start-hour", type=float, default=25.0, help="window start (hours)"
    )
    campaign.add_argument(
        "--hours", type=float, default=1.0, help="window length (hours)"
    )
    campaign.add_argument(
        "--interval", type=float, default=0.01, help="probe interval (s)"
    )
    campaign.add_argument(
        "--no-events", action="store_true", help="disable Fig. 4 events"
    )

    failover = sub.add_parser("failover", help="failure-recovery demo")
    failover.add_argument(
        "--fail-at", type=float, default=5.0, help="failure time (s)"
    )
    failover.add_argument(
        "--path", default="GTT", help="path label to blackhole"
    )

    mesh = sub.add_parser("mesh", help="Tango-of-N diversity sweep")
    mesh.add_argument(
        "--max-n", type=int, default=6, help="largest mesh size to sweep"
    )

    figures = sub.add_parser(
        "figures", help="export Figure 4 data series as CSV"
    )
    figures.add_argument(
        "--out-dir", default="figures", help="output directory for CSVs"
    )

    faults = sub.add_parser(
        "faults", help="deterministic fault-injection campaigns"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    run = faults_sub.add_parser(
        "run", help="arm a fault plan and print the recovery log"
    )
    run.add_argument(
        "--plan",
        help="path to a FaultPlan JSON (default: the built-in demo plan)",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="override the plan's seed"
    )
    run.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated run length in seconds (default: plan horizon + 10)",
    )
    run.add_argument(
        "--out", help="also write the recovery log to this file"
    )
    run.add_argument(
        "--transitions",
        action="store_true",
        help="append every quarantine state transition to the log",
    )
    run.add_argument(
        "--resilient",
        action="store_true",
        help="run the resilience stack: reliable telemetry transport, "
        "RTT-probing degraded mode, journaled controllers under "
        "supervision (enables telemetry_loss / controller_crash "
        "recovery)",
    )
    faults_sub.add_parser(
        "sample-plan", help="print a template fault plan as JSON"
    )
    chaos = faults_sub.add_parser(
        "campaign",
        help="multiprocess adversarial chaos campaign gated on the E17 "
        "SLOs (availability, MTTR, OWD regret, steering exposure)",
    )
    chaos.add_argument(
        "--plans",
        type=int,
        default=16,
        help="population size (archetypes interleave; default 16)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 runs in-process; the merged report is "
        "byte-identical either way)",
    )
    chaos.add_argument(
        "--seed", type=int, default=2026, help="campaign master seed"
    )
    chaos.add_argument(
        "--correlated",
        action="store_true",
        help="run the E18 correlated-failure family instead (SRLG "
        "shared-fate cuts, two-group overlaps, regional outages, "
        "maintenance windows) gated on FRR switchover latency, zero "
        "traffic on failed risk groups, and two-group availability",
    )
    chaos.add_argument(
        "--out",
        default="BENCH_ROBUST.json",
        help="report path (default BENCH_ROBUST.json)",
    )

    profile = sub.add_parser(
        "profile",
        help="run the standard perf workloads and write BENCH_PERF.json",
        description=(
            "Measure the incremental propagation engine and convergence "
            "snapshot cache against the full-scan baseline on the Vultr "
            "scenario: path discovery, session resets, and a BGP-heavy "
            "fault replay.  Prints a table and writes the full report as "
            "JSON."
        ),
    )
    profile.add_argument(
        "--repeat", type=int, default=3,
        help="best-of repetitions per measurement (default: 3)",
    )
    profile.add_argument(
        "--out", default="BENCH_PERF.json",
        help="report output path (default: BENCH_PERF.json); '-' to skip",
    )
    profile.add_argument(
        "--smoke", action="store_true",
        help="CI mode: fewest repetitions, same workloads",
    )
    profile.add_argument(
        "--no-replay", action="store_true",
        help="skip the (slow) fault-replay workload",
    )
    profile.add_argument(
        "--traffic", action="store_true",
        help="also run the E19 traffic workloads (vectorized fluid "
        "engine vs scalar oracle, shared tick wheel vs per-controller "
        "tasks)",
    )

    traffic = sub.add_parser(
        "traffic",
        help="flow-level traffic engine: scale bench + fluid/packet equivalence",
        description=(
            "Drive the fluid traffic engine (repro.traffic) over the "
            "Vultr scenario and validate it against the packet "
            "simulator.  Exit status: 0 all gates pass, 1 a gate fails, "
            "2 usage errors."
        ),
    )
    traffic_sub = traffic.add_subparsers(dest="traffic_command", required=True)
    traffic_run = traffic_sub.add_parser(
        "run",
        help="run the standard traffic workloads and write BENCH_TRAFFIC.json",
        description=(
            "Run the scale workload (>=1M concurrent modeled flows with "
            "a mid-run demand surge under load-aware splitting), the "
            "fluid-vs-packet equivalence sweep, and the E19 vector/tick "
            "workloads, print the results, and write the full report as "
            "JSON."
        ),
    )
    traffic_run.add_argument(
        "--flows", type=int, default=1_000_000,
        help="target concurrent modeled flows (default: 1000000)",
    )
    traffic_run.add_argument(
        "--engine", choices=["scalar", "vector", "both"], default="both",
        help="fluid implementation(s) for the scale workload "
        "(default: both)",
    )
    traffic_run.add_argument(
        "--out", default="BENCH_TRAFFIC.json",
        help="report output path (default: BENCH_TRAFFIC.json); '-' to skip",
    )
    traffic_run.add_argument(
        "--smoke", action="store_true",
        help="CI mode: shorter simulated window and packet run, same gates",
    )

    federation = sub.add_parser(
        "federation",
        help="live N-site federation: shared establishment + relay failover",
        description=(
            "Run the E20 multi-edge federation experiment: establish "
            "all N*(N-1)/2 pairwise Tango sessions over one shared BGP "
            "network (one shared convergence cache), stitch a relay "
            "tunnel for the degraded pair, kill the relay mid-run, and "
            "report dedup/diversity/failover results.  Exit status: 0 "
            "all gates pass, 1 a gate fails, 2 usage errors."
        ),
    )
    federation_sub = federation.add_subparsers(
        dest="federation_command", required=True
    )
    federation_run = federation_sub.add_parser(
        "run",
        help="run the E20 federation experiment and print the report",
        description=(
            "Establish an N-member federation (shared vs independent "
            "snapshot caches), rescue the degraded pair with a stitched "
            "relay tunnel, inject a relay_outage, and verify reroute "
            "within one telemetry horizon."
        ),
    )
    federation_run.add_argument(
        "--edges", type=int, default=8,
        help="federation size N (default: 8)",
    )
    federation_run.add_argument(
        "--seed", type=int, default=42,
        help="scenario seed (default: 42)",
    )
    federation_run.add_argument(
        "--out", default="-",
        help="also write the full JSON report here ('-' to skip, default)",
    )
    federation_run.add_argument(
        "--smoke", action="store_true",
        help="CI mode: skip the N-scaling sweep, same gates",
    )

    lint = sub.add_parser(
        "lint",
        help="static determinism & Gao-Rexford policy-safety analysis",
        description=(
            "Run the TNG determinism rules (wall-clock reads, unseeded/"
            "global RNGs, OS entropy, ordered set iteration, mutable "
            "defaults) over the given files, the semantic Gao-Rexford "
            "checks over every shipped scenario, and target validation "
            "for any --plan files.  Exit status: 0 clean, 1 findings, "
            "2 usage errors.  Suppress one occurrence with "
            "'# tango: noqa[TNG001]' (with a comment saying why)."
        ),
        epilog=(
            "examples: tango-repro lint src/repro | "
            "tango-repro lint --format json src/repro | "
            "tango-repro lint --select TNG001,TNG005 src | "
            "tango-repro lint --plan examples/faults_blackhole.json src/repro"
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule codes to restrict to, e.g. TNG001,TNG005",
    )
    lint.add_argument(
        "--baseline",
        help="baseline file filtering known findings "
        "(default: lint-baseline.json when it exists)",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE",
        help="accept the current findings into FILE and exit 0",
    )
    lint.add_argument(
        "--plan", action="append", default=[], metavar="FILE",
        help="also validate this fault-plan JSON against the Vultr "
        "scenario (repeatable)",
    )
    lint.add_argument(
        "--no-semantics", action="store_true",
        help="skip the Gao-Rexford checks over shipped scenarios",
    )
    lint.add_argument(
        "--flow", action="store_true",
        help="also run the whole-program determinism-taint and "
        "fork-safety pass (TNG2xx/TNG3xx); incremental via --flow-cache",
    )
    lint.add_argument(
        "--flow-cache", default=".tango-lint-cache", metavar="DIR",
        help="per-module summary cache for --flow "
        "(default: .tango-lint-cache; 'none' disables caching)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code with its severity and summary, then exit",
    )
    return parser


def cmd_discover() -> int:
    from .analysis.report import format_table
    from .core.discovery import PathDiscovery
    from .scenarios.vultr import VULTR_ASN, build_bgp_network

    bgp = build_bgp_network()
    discovery = PathDiscovery(bgp, VULTR_ASN)
    for title, announcer, observer in (
        ("LA -> NY", "tango-ny", "tango-la"),
        ("NY -> LA", "tango-la", "tango-ny"),
    ):
        result = discovery.discover(
            announcer=announcer,
            observer=observer,
            probe_prefix="2001:db8:fff::/48",
        )
        rows = [
            {
                "rank": p.index + 1,
                "path": p.short_label,
                "as_path": p.label,
                "communities": ", ".join(sorted(str(c) for c in p.communities))
                or "(none)",
            }
            for p in result.paths
        ]
        print(format_table(rows, title=title))
        print()
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis.report import format_table
    from .analysis.stats import campaign_table
    from .scenarios.vultr import VultrDeployment

    deployment = VultrDeployment(include_events=not args.no_events)
    deployment.establish()
    t0 = args.start_hour * 3600.0
    t1 = t0 + args.hours * 3600.0
    _, true = deployment.run_fast_campaign(
        args.direction, t0, t1, interval_s=args.interval
    )
    labels = {
        t.path_id: t.short_label for t in deployment.tunnels(args.direction)
    }
    rows = [s.as_row() for s in campaign_table(true, labels)]
    print(
        format_table(
            rows,
            title=(
                f"{args.direction.upper()} direction, hours "
                f"{args.start_hour:g}-{args.start_hour + args.hours:g}"
            ),
        )
    )
    return 0


def cmd_failover(args: argparse.Namespace) -> int:
    from .bgp.network import CONVERGENCE_DELAY_S
    from .core.policy import LowestDelaySelector
    from .netsim.trace import PacketFactory
    from .scenarios.vultr import VultrDeployment

    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.start_path_probes("ny", interval_s=0.01)
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway_ny.outbound, window_s=1.0)
    )
    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    deliveries: list[tuple[float, int]] = []

    def on_delivery(packet: Packet, now: float) -> None:
        if packet.flow_label == 9:
            deliveries.append((packet.meta["sent"], packet.meta["tango_path_id"]))

    deployment.host_la._on_packet = on_delivery

    def emit_data() -> None:
        packet = factory.build()
        packet.meta["sent"] = deployment.sim.now
        send(packet)

    deployment.sim.call_every(0.02, emit_data)
    deployment.fail_path("ny", args.path, at=args.fail_at)
    deployment.net.run(until=args.fail_at + 7.0)

    after = [t for t, _ in deliveries if t >= args.fail_at]
    if not after:
        print("no recovery observed — is the policy adaptive?")
        return 1
    recovery = min(after) - args.fail_at
    print(f"failed {args.path} at t={args.fail_at:g}s")
    print(f"tango recovered in {recovery:.2f}s")
    print(
        f"BGP convergence would need ~{CONVERGENCE_DELAY_S:.0f}s "
        f"({CONVERGENCE_DELAY_S / recovery:.0f}x slower)"
    )
    return 0


def cmd_mesh(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.report import format_table
    from .scenarios.topologies import build_mesh_scenario

    rows = []
    for n in range(2, args.max_n + 1):
        scenario = build_mesh_scenario(n)
        gains, diversity = [], []
        for a in scenario.edge_names:
            for b in scenario.edge_names:
                if a != b:
                    diversity.append(scenario.mesh.diversity(a, b, 1))
                    gains.append(scenario.mesh.diversity_gain(a, b, 1))
        rows.append(
            {
                "members": n,
                "routes_per_pair": float(np.mean(diversity)),
                "mean_gain_ms": float(np.mean(gains)) * 1e3,
            }
        )
    print(format_table(rows, title="Tango of N"))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.figures import export_all
    from .scenarios.vultr import VultrDeployment

    deployment = VultrDeployment()
    deployment.establish()
    for path in export_all(deployment, args.out_dir):
        print(f"wrote {path}")
    return 0


def _demo_fault_plan() -> FaultPlan:
    from .faults import FaultEvent, FaultPlan

    return FaultPlan(
        name="blackhole-demo",
        seed=7,
        events=(
            FaultEvent(
                "link_blackhole",
                at=5.0,
                duration=5.0,
                params={"src": "ny", "path": "GTT"},
            ),
            FaultEvent(
                "telemetry_drop",
                at=16.0,
                duration=2.0,
                params={"edge": "ny"},
            ),
            FaultEvent(
                "delay_spike",
                at=20.0,
                duration=3.0,
                params={"src": "ny", "path": "Telia", "extra_ms": 25.0},
            ),
        ),
    )


def cmd_faults_sample_plan() -> int:
    import json

    print(json.dumps(json.loads(_demo_fault_plan().to_json()), indent=2))
    return 0


def cmd_faults_run(args: argparse.Namespace) -> int:
    from .core.controller import QuarantinePolicy, TangoController
    from .core.policy import LowestDelaySelector
    from .faults import FaultInjector, FaultPlan, RecoveryLog
    from .netsim.trace import PacketFactory
    from .scenarios.vultr import VultrDeployment

    if args.plan:
        try:
            plan = FaultPlan.from_file(args.plan)
        except OSError as exc:
            print(f"tango-repro: cannot read fault plan: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(
                f"tango-repro: invalid fault plan {args.plan}: {exc}",
                file=sys.stderr,
            )
            return 2
    else:
        plan = _demo_fault_plan()
    if args.seed is not None:
        plan = FaultPlan(name=plan.name, events=plan.events, seed=args.seed)

    channel = None
    if args.resilient:
        from .resilience import ChannelConfig

        channel = ChannelConfig(report_interval_s=0.1)
    deployment = VultrDeployment(include_events=False, telemetry_channel=channel)
    deployment.establish()
    controllers = {}
    for edge in (deployment.pairing.a.name, deployment.pairing.b.name):
        deployment.start_path_probes(edge)
        deployment.set_data_policy(
            edge,
            LowestDelaySelector(deployment.gateway(edge).outbound, window_s=1.0),
        )
        degraded = journal = None
        if args.resilient:
            from .resilience import (
                ControllerJournal,
                DegradedModeConfig,
                RttFallbackEstimator,
            )

            estimator = RttFallbackEstimator.for_deployment(deployment, edge)
            estimator.start()
            degraded = DegradedModeConfig(
                estimates=estimator.estimates, horizon_s=0.5
            )
            journal = ControllerJournal()
        controller = TangoController(
            deployment.gateway(edge),
            deployment.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
            degraded=degraded,
            journal=journal,
        )
        controller.start()
        deployment.attach_controller(edge, controller)
        if args.resilient:
            deployment.supervise(edge, journal=journal)
        controllers[edge] = controller

    # Background data stream per edge: reroute timings are about user
    # traffic, and the selector only records choices for packets it sees.
    for edge in (deployment.pairing.a.name, deployment.pairing.b.name):
        peer = deployment.pairing.peer_of(edge)
        factory = PacketFactory(
            src=str(deployment.pairing.edge(edge).host_address(4)),
            dst=str(peer.host_address(4)),
            flow_label=9,
        )
        send = deployment.sender_for(edge)
        deployment.sim.call_every(0.02, lambda f=factory, s=send: s(f.build()))

    injector = FaultInjector(deployment, plan)
    try:
        injector.arm()
    except (ValueError, KeyError, LookupError) as exc:
        message = exc.args[0] if exc.args else exc
        print(
            f"tango-repro: cannot arm fault plan {plan.name!r}: {message}",
            file=sys.stderr,
        )
        return 2
    horizon = (
        args.duration if args.duration is not None else plan.horizon + 10.0
    )
    deployment.net.run(until=horizon)

    log = RecoveryLog.build(plan, controllers)
    text = log.format(controllers if args.transitions else None)
    sys.stdout.write(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    return 0


def cmd_faults_campaign(args: argparse.Namespace) -> int:
    from .campaign import run_campaign, run_correlated_campaign

    if args.plans < 1:
        print("tango-repro: --plans must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("tango-repro: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.correlated:
        report = run_correlated_campaign(
            args.plans, args.seed, workers=args.workers
        )
    else:
        report = run_campaign(args.plans, args.seed, workers=args.workers)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())
    gates = report.gates
    print(
        f"{report.experiment} chaos campaign: {len(report.results)} plans, "
        f"seed {report.master_seed}, {report.workers} worker(s), "
        f"{report.shard_retries} shard retries"
    )
    if args.correlated:
        print(
            f"  defended switchover median "
            f"{gates['defended_switchover_median_s']} s "
            f"(budget {gates['switchover_budget_s']} s), "
            f"frr switchovers {gates['frr_switchovers_total']}, "
            f"two-group availability slo "
            f"{gates['availability_two_group_slo']}"
        )
    else:
        print(
            f"  defended regret median "
            f"{gates['defended_regret_median_ms']} ms "
            f"(budget {gates['regret_budget_ms']} ms), "
            f"mttr median {gates['mttr_median_s']} s "
            f"(slo {gates['mttr_slo_s']} s)"
        )
    for failure in report.failures:
        print(f"  GATE FAIL: {failure}")
    print(f"wrote {args.out}")
    if not report.passed:
        return 1
    print(f"all {report.experiment} gates passed")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .profiling.bench import DISCOVERY_MIN_SPEEDUP, run_perf_suite
    from .profiling.core import Profiler

    profiler = Profiler()
    report = run_perf_suite(
        repeat=args.repeat,
        smoke=args.smoke,
        include_replay=not args.no_replay,
        include_traffic=args.traffic,
        profiler=profiler,
    )
    header = f"{'workload':<18} {'baseline':>10} {'incremental':>12} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for name, wl in sorted(report.workloads.items()):
        print(
            f"{name:<18} {wl.baseline_s:>9.4f}s {wl.incremental_s:>11.4f}s "
            f"{wl.speedup:>8.2f}x"
        )
    replay = report.workloads.get("fault_replay_mttr")
    if replay is not None and "converge_speedup" in replay.detail:
        print(
            f"{'':<18} control-plane share of replay: "
            f"{replay.detail['baseline_converge_s']:.4f}s -> "
            f"{replay.detail['incremental_converge_s']:.4f}s "
            f"({replay.detail['converge_speedup']:.1f}x)"
        )
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.out}")
    discovery = report.workloads["discovery"]
    if discovery.speedup < DISCOVERY_MIN_SPEEDUP:
        print(
            f"tango-repro: discovery speedup {discovery.speedup:.2f}x is "
            f"below the {DISCOVERY_MIN_SPEEDUP:.1f}x gate",
            file=sys.stderr,
        )
        return 1
    failed_traffic = sorted(
        name
        for name in ("vector_fluid", "tick_scheduler")
        if report.workloads.get(name) is not None
        and not report.workloads[name].detail.get("passed", 1.0)
    )
    if failed_traffic:
        print(
            "tango-repro: traffic workload gate(s) failed: "
            + ", ".join(failed_traffic),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_traffic_run(args: argparse.Namespace) -> int:
    from .traffic.bench import run_traffic_suite

    if args.flows <= 0:
        print(
            f"tango-repro: --flows must be positive, got {args.flows}",
            file=sys.stderr,
        )
        return 2

    engines = (
        ("scalar", "vector") if args.engine == "both" else (args.engine,)
    )
    report = run_traffic_suite(
        smoke=args.smoke, target_flows=args.flows, engines=engines
    )

    for name, scale in sorted(report.workloads.items()):
        if not name.startswith("scale"):
            continue
        print(
            f"{name} ({scale.detail['engine']}): "
            f"{scale.detail['peak_concurrent_flows']:,.0f} peak flows, "
            f"{scale.detail['sim_s']:.0f}s simulated in "
            f"{scale.detail['wall_s']:.2f}s wall "
            f"({scale.detail['sim_s_per_wall_s']:.0f}x real time) -> "
            f"{'ok' if scale.passed else 'FAIL'}"
        )
    vector = report.workloads["vector"]
    print(
        "vector: "
        f"{vector.detail['buckets']} buckets x {vector.detail['steps']} "
        f"steps, {vector.detail['flow_updates_per_s']:,.0f} "
        f"flow-updates/s, {vector.detail['speedup']:.1f}x over scalar, "
        f"bit-equivalent={vector.detail['bit_equivalent']} -> "
        f"{'ok' if vector.passed else 'FAIL'}"
    )
    ticks = report.workloads["ticks"]
    print(
        "ticks: "
        f"{ticks.detail['controllers']} controllers, "
        f"{ticks.detail['rounds']} rounds at "
        f"{ticks.detail['per_round_s'] * 1e3:.2f}ms/round "
        f"(budget {ticks.detail['budget_s'] * 1e3:.0f}ms), "
        f"heap events {ticks.detail['heap_live_dedicated']} -> "
        f"{ticks.detail['heap_live_shared']} -> "
        f"{'ok' if ticks.passed else 'FAIL'}"
    )
    equivalence = report.workloads["equivalence"]
    header = (
        f"{'rho':>5} {'packet ms':>10} {'fluid ms':>9} {'delay err':>10} "
        f"{'pkt loss':>9} {'fluid loss':>11} {'loss pp':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in equivalence.detail["points"]:
        print(
            f"{row['rho']:>5.2f} {row['packet_delay_ms']:>10.2f} "
            f"{row['fluid_delay_ms']:>9.2f} {row['delay_rel_error']:>9.1%} "
            f"{row['packet_loss']:>9.4f} {row['fluid_loss']:>11.4f} "
            f"{row['loss_error_pp']:>8.2f}"
        )
    print(f"equivalence: {'ok' if equivalence.passed else 'FAIL'}")

    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.out}")

    if not report.passed:
        failed = sorted(
            name for name, wl in report.workloads.items() if not wl.passed
        )
        print(
            f"tango-repro: traffic gate(s) failed: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_federation_run(args: argparse.Namespace) -> int:
    import json

    from .federation.experiment import run_federation_experiment

    if args.edges < 3:
        print(
            f"tango-repro: --edges must be >= 3 (a relay needs a third "
            f"member), got {args.edges}",
            file=sys.stderr,
        )
        return 2

    report = run_federation_experiment(
        args.edges, seed=args.seed, smoke=args.smoke
    )

    cache = report["snapshot_cache"]
    baseline = report["independent_baseline"]
    print(
        f"establishment: {report['established_pairs']}/{report['pairs']} "
        f"pairs, shared cache hit rate {cache['hit_rate']:.2f} "
        f"({cache['hits']} hits / {cache['misses']} misses), "
        f"independent baseline {baseline['hit_rate']:.2f}"
    )
    degraded = report["degraded_pair"]
    print(
        f"stitched: {degraded['pair'][0]}->{degraded['pair'][1]} "
        f"({degraded['direct_routes']} direct) now {degraded['usable_routes']} "
        f"usable routes via relay {degraded['relay']} "
        f"[{degraded['stitched_label']}]"
    )
    reroute = report["reroute"]
    detected = (
        f"+{reroute['delay_s']:.2f}s (cause={reroute['cause']})"
        if reroute["detected_at"] is not None
        else "NOT DETECTED"
    )
    print(
        f"failover: relay killed at t={reroute['killed_at']:g} for "
        f"{reroute['kill_duration_s']:g}s, quarantined {detected}, "
        f"budget {reroute['budget_s']:.2f}s, "
        f"restored={reroute['restored_after_clear']}"
    )
    print(f"{'n':>3} {'routes/pair':>12} {'mean gain ms':>13} {'hit rate':>9}")
    for row in report["scaling"]:
        print(
            f"{row['n']:>3} {row['mean_routes_per_pair']:>12.1f} "
            f"{row['mean_gain_ms']:>13.3f} {row['snapshot_hit_rate']:>9.2f}"
        )

    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    failures = []
    if report["established_pairs"] != report["pairs"]:
        failures.append("establishment")
    if cache["hit_rate"] < 0.5 or cache["hit_rate"] <= baseline["hit_rate"]:
        failures.append("dedup")
    if degraded["usable_routes"] < 2:
        failures.append("stitched-rescue")
    if not reroute["within_budget"]:
        failures.append("reroute")
    if failures:
        print(
            f"tango-repro: federation gate(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import os

    from .lint import DEFAULT_BASELINE, list_rules, run_lint

    if args.list_rules:
        return list_rules()
    baseline = args.baseline
    if baseline is None and os.path.exists(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE
    return run_lint(
        args.paths,
        fmt=args.format,
        select=args.select,
        baseline_path=baseline,
        write_baseline=args.write_baseline,
        plan_paths=args.plan,
        semantics=not args.no_semantics,
        flow=args.flow,
        flow_cache=None if args.flow_cache == "none" else args.flow_cache,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "discover":
        return cmd_discover()
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "failover":
        return cmd_failover(args)
    if args.command == "mesh":
        return cmd_mesh(args)
    if args.command == "figures":
        return cmd_figures(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "traffic":
        if args.traffic_command == "run":
            return cmd_traffic_run(args)
        raise AssertionError(f"unhandled traffic command {args.traffic_command!r}")
    if args.command == "faults":
        if args.faults_command == "run":
            return cmd_faults_run(args)
        if args.faults_command == "sample-plan":
            return cmd_faults_sample_plan()
        if args.faults_command == "campaign":
            return cmd_faults_campaign(args)
        raise AssertionError(f"unhandled faults command {args.faults_command!r}")
    if args.command == "federation":
        if args.federation_command == "run":
            return cmd_federation_run(args)
        raise AssertionError(
            f"unhandled federation command {args.federation_command!r}"
        )
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
