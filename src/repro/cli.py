"""Command-line interface: ``tango-repro <command>``.

Five subcommands, each a self-contained run of one slice of the system:

* ``discover`` — run Figure 3's iterative suppression discovery and print
  the path/community table per direction.
* ``campaign`` — sample a measurement campaign window and print per-path
  statistics (means, percentiles, rolling-window jitter).
* ``failover`` — packet-level failure-recovery demo (blackhole a path,
  time Tango's reroute, compare with BGP convergence).
* ``mesh`` — the Tango-of-N diversity sweep.
* ``figures`` — export the Figure 4 data series as CSV.

Installed as a console script by ``pip install -e .``; also runnable as
``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tango-repro",
        description="Tango (HotNets'22) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("discover", help="run Fig. 3 path discovery")

    campaign = sub.add_parser("campaign", help="sample a measurement window")
    campaign.add_argument(
        "--direction", choices=("ny", "la"), default="ny", help="sending edge"
    )
    campaign.add_argument(
        "--start-hour", type=float, default=25.0, help="window start (hours)"
    )
    campaign.add_argument(
        "--hours", type=float, default=1.0, help="window length (hours)"
    )
    campaign.add_argument(
        "--interval", type=float, default=0.01, help="probe interval (s)"
    )
    campaign.add_argument(
        "--no-events", action="store_true", help="disable Fig. 4 events"
    )

    failover = sub.add_parser("failover", help="failure-recovery demo")
    failover.add_argument(
        "--fail-at", type=float, default=5.0, help="failure time (s)"
    )
    failover.add_argument(
        "--path", default="GTT", help="path label to blackhole"
    )

    mesh = sub.add_parser("mesh", help="Tango-of-N diversity sweep")
    mesh.add_argument(
        "--max-n", type=int, default=6, help="largest mesh size to sweep"
    )

    figures = sub.add_parser(
        "figures", help="export Figure 4 data series as CSV"
    )
    figures.add_argument(
        "--out-dir", default="figures", help="output directory for CSVs"
    )
    return parser


def cmd_discover() -> int:
    from .analysis.report import format_table
    from .core.discovery import PathDiscovery
    from .scenarios.vultr import VULTR_ASN, build_bgp_network

    bgp = build_bgp_network()
    discovery = PathDiscovery(bgp, VULTR_ASN)
    for title, announcer, observer in (
        ("LA -> NY", "tango-ny", "tango-la"),
        ("NY -> LA", "tango-la", "tango-ny"),
    ):
        result = discovery.discover(
            announcer=announcer,
            observer=observer,
            probe_prefix="2001:db8:fff::/48",
        )
        rows = [
            {
                "rank": p.index + 1,
                "path": p.short_label,
                "as_path": p.label,
                "communities": ", ".join(sorted(str(c) for c in p.communities))
                or "(none)",
            }
            for p in result.paths
        ]
        print(format_table(rows, title=title))
        print()
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis.report import format_table
    from .analysis.stats import campaign_table
    from .scenarios.vultr import VultrDeployment

    deployment = VultrDeployment(include_events=not args.no_events)
    deployment.establish()
    t0 = args.start_hour * 3600.0
    t1 = t0 + args.hours * 3600.0
    _, true = deployment.run_fast_campaign(
        args.direction, t0, t1, interval_s=args.interval
    )
    labels = {
        t.path_id: t.short_label for t in deployment.tunnels(args.direction)
    }
    rows = [s.as_row() for s in campaign_table(true, labels)]
    print(
        format_table(
            rows,
            title=(
                f"{args.direction.upper()} direction, hours "
                f"{args.start_hour:g}-{args.start_hour + args.hours:g}"
            ),
        )
    )
    return 0


def cmd_failover(args: argparse.Namespace) -> int:
    from .bgp.network import CONVERGENCE_DELAY_S
    from .core.policy import LowestDelaySelector
    from .netsim.trace import PacketFactory
    from .scenarios.vultr import VultrDeployment

    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.start_path_probes("ny", interval_s=0.01)
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway_ny.outbound, window_s=1.0)
    )
    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    deliveries: list[tuple[float, int]] = []

    def on_delivery(packet, now):
        if packet.flow_label == 9:
            deliveries.append((packet.meta["sent"], packet.meta["tango_path_id"]))

    deployment.host_la._on_packet = on_delivery

    def emit_data():
        packet = factory.build()
        packet.meta["sent"] = deployment.sim.now
        send(packet)

    deployment.sim.call_every(0.02, emit_data)
    deployment.fail_path("ny", args.path, at=args.fail_at)
    deployment.net.run(until=args.fail_at + 7.0)

    after = [t for t, _ in deliveries if t >= args.fail_at]
    if not after:
        print("no recovery observed — is the policy adaptive?")
        return 1
    recovery = min(after) - args.fail_at
    print(f"failed {args.path} at t={args.fail_at:g}s")
    print(f"tango recovered in {recovery:.2f}s")
    print(
        f"BGP convergence would need ~{CONVERGENCE_DELAY_S:.0f}s "
        f"({CONVERGENCE_DELAY_S / recovery:.0f}x slower)"
    )
    return 0


def cmd_mesh(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.report import format_table
    from .scenarios.topologies import build_mesh_scenario

    rows = []
    for n in range(2, args.max_n + 1):
        scenario = build_mesh_scenario(n)
        gains, diversity = [], []
        for a in scenario.edge_names:
            for b in scenario.edge_names:
                if a != b:
                    diversity.append(scenario.mesh.diversity(a, b, 1))
                    gains.append(scenario.mesh.diversity_gain(a, b, 1))
        rows.append(
            {
                "members": n,
                "routes_per_pair": float(np.mean(diversity)),
                "mean_gain_ms": float(np.mean(gains)) * 1e3,
            }
        )
    print(format_table(rows, title="Tango of N"))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.figures import export_all
    from .scenarios.vultr import VultrDeployment

    deployment = VultrDeployment()
    deployment.establish()
    for path in export_all(deployment, args.out_dir):
        print(f"wrote {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "discover":
        return cmd_discover()
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "failover":
        return cmd_failover(args)
    if args.command == "mesh":
        return cmd_mesh(args)
    if args.command == "figures":
        return cmd_figures(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
