"""Tests for the sequenced, acknowledged telemetry transport."""

import numpy as np
import pytest

from repro.netsim.events import Simulator
from repro.resilience.channel import (
    ChannelConfig,
    ReliableTelemetryChannel,
    TelemetryRecord,
)
from repro.telemetry.store import MeasurementStore


def make_channel(config=None, seed=0):
    sim = Simulator()
    source, sink = MeasurementStore(), MeasurementStore()
    channel = ReliableTelemetryChannel(
        source, sink, sim, config=config or ChannelConfig(), seed=seed
    )
    return sim, source, sink, channel


def feed(sim, source, path_id=0, interval=0.01, value=0.03, start=0.0, stop=None):
    """Append one sample per interval into the source store."""

    def sample():
        if stop is None or sim.now < stop:
            source.record(path_id, sim.now, value + sim.now * 1e-6)

    return sim.call_every(interval, sample, start=start)


class TestConfigValidation:
    def test_defaults_valid(self):
        ChannelConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"report_interval_s": 0.0},
            {"latency_s": -0.1},
            {"loss_rate": 1.0},
            {"loss_rate": -0.2},
            {"rto_s": 0.0},
            {"rto_s": 3.0, "max_rto_s": 1.0},
            {"rto_backoff": 0.5},
            {"jitter_frac": -0.1},
            {"queue_limit": 0},
            {"window_records": 0},
            {"frame_records": 0},
            {"dupack_threshold": 0},
            {"staleness_s": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChannelConfig(**kwargs)


class TestLosslessDelivery:
    def test_every_sample_delivered_in_order(self):
        sim, source, sink, channel = make_channel()
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=2.0)
        src = source.series(0)
        dst = sink.series(0)
        assert len(dst) == len(src) > 0
        np.testing.assert_array_equal(dst.times, src.times)
        np.testing.assert_array_equal(dst.values, src.values)
        assert channel.stats.retransmits == 0
        assert channel.stats.duplicates == 0

    def test_multiple_paths(self):
        sim, source, sink, channel = make_channel()
        for pid in (0, 1, 64):
            feed(sim, source, path_id=pid, stop=0.5)
        channel.start()
        sim.run(until=1.5)
        assert sink.path_ids() == [0, 1, 64]
        for pid in (0, 1, 64):
            assert len(sink.series(pid)) == len(source.series(pid))

    def test_double_start_rejected(self):
        _, _, _, channel = make_channel()
        channel.start()
        with pytest.raises(RuntimeError):
            channel.start()


class TestLossRecovery:
    def test_sink_converges_under_heavy_loss(self):
        """30% frame loss: everything still arrives, via retransmission."""
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(loss_rate=0.3), seed=42
        )
        feed(sim, source, interval=0.01, stop=2.0)
        channel.start()
        sim.run(until=10.0)
        src, dst = source.series(0), sink.series(0)
        assert len(dst) == len(src)
        np.testing.assert_array_equal(dst.times, src.times)
        assert channel.stats.frames_lost > 0
        assert channel.stats.retransmits > 0

    def test_delivery_stays_in_order_despite_gaps(self):
        """Lost frames create receiver gaps; the reorder buffer must hold
        later records until the gap heals (sink series monotonic and gap
        -free — equality with the source proves both)."""
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(loss_rate=0.4, frame_records=4), seed=7
        )
        feed(sim, source, interval=0.005, stop=1.0)
        channel.start()
        sim.run(until=10.0)
        np.testing.assert_array_equal(
            sink.series(0).times, source.series(0).times
        )
        assert channel.stats.out_of_order > 0

    def test_lost_acks_cause_suppressed_duplicates(self):
        """When acks are lost the sender retransmits delivered records;
        the receiver must drop them without double-recording."""
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(loss_rate=0.4), seed=3
        )
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=10.0)
        assert channel.stats.acks_lost > 0
        assert channel.stats.duplicates > 0
        assert len(sink.series(0)) == len(source.series(0))

    def test_loss_window_fault_hook(self):
        """A total-loss window stalls delivery; after it clears the sink
        catches up completely — degraded to late, never absent."""
        sim, source, sink, channel = make_channel(seed=1)
        channel.add_loss_window(0.3, 1.0, 1.0)
        feed(sim, source, interval=0.01, stop=2.0)
        channel.start()
        sim.run(until=0.9)
        assert len(sink.series(0)) < len(source.series(0))
        sim.run(until=8.0)
        np.testing.assert_array_equal(
            sink.series(0).times, source.series(0).times
        )

    def test_loss_window_validation(self):
        _, _, _, channel = make_channel()
        with pytest.raises(ValueError, match="end > start"):
            channel.add_loss_window(2.0, 1.0, 0.5)
        with pytest.raises(ValueError, match="rate"):
            channel.add_loss_window(1.0, 2.0, 1.5)

    def test_loss_rate_composition(self):
        _, _, _, channel = make_channel(config=ChannelConfig(loss_rate=0.1))
        channel.add_loss_window(1.0, 2.0, 0.8)
        assert channel.loss_rate(0.5) == pytest.approx(0.1)
        assert channel.loss_rate(1.5) == pytest.approx(0.8)
        assert channel.loss_rate(2.0) == pytest.approx(0.1)  # half-open


class TestBoundedQueue:
    def test_overflow_drops_oldest(self):
        """With a tiny queue and a huge burst, the newest samples win."""
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(queue_limit=8, window_records=4, frame_records=4)
        )
        times = np.arange(0.0, 1.0, 0.001)
        source.extend(0, times, np.full_like(times, 0.03))
        channel.start()
        sim.run(until=30.0)
        assert channel.stats.queue_drops > 0
        delivered = sink.series(0).times
        # Everything that survived the queue is the tail of the burst.
        assert delivered[-1] == pytest.approx(times[-1])
        np.testing.assert_array_equal(delivered, times[-len(delivered) :])


class TestDiscardBefore:
    def test_unsent_samples_discarded(self):
        sim, source, sink, channel = make_channel()
        source.extend(0, np.asarray([0.0, 1.0, 2.0]), np.full(3, 0.03))
        assert channel.discard_before(1.5) == 2
        channel.start()
        sim.run(until=5.0)
        np.testing.assert_array_equal(sink.series(0).times, [2.0])

    def test_exact_boundary_survives(self):
        sim, source, sink, channel = make_channel()
        source.extend(0, np.asarray([0.0, 1.0]), np.full(2, 0.03))
        assert channel.discard_before(1.0) == 1
        channel.start()
        sim.run(until=5.0)
        np.testing.assert_array_equal(sink.series(0).times, [1.0])

    def test_queued_but_unsequenced_samples_discarded(self):
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(window_records=1, frame_records=1)
        )
        source.extend(0, np.asarray([0.0, 1.0, 2.0]), np.full(3, 0.03))
        channel.start()
        sim.run(until=0.06)  # first pump: seq 0 in flight, rest queued
        assert channel.discard_before(5.0) == 2  # the two still queued
        sim.run(until=5.0)
        np.testing.assert_array_equal(sink.series(0).times, [0.0])

    def test_empty_channel_discards_nothing(self):
        _, _, _, channel = make_channel()
        assert channel.discard_before(100.0) == 0


class TestHealth:
    def test_never_delivered_is_not_fresh(self):
        _, _, _, channel = make_channel()
        health = channel.health(now=0.0)
        assert not health.fresh
        assert health.staleness_s is None

    def test_fresh_after_delivery_then_stale(self):
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(staleness_s=0.5)
        )
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=1.2)
        assert channel.health().fresh
        sim.run(until=3.0)
        health = channel.health()
        assert not health.fresh
        assert health.staleness_s > 0.5

    def test_backlog_visible(self):
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(window_records=2, frame_records=2)
        )
        source.extend(0, np.arange(0.0, 0.1, 0.01), np.full(10, 0.03))
        channel.start()
        sim.run(until=0.06)
        health = channel.health()
        assert health.queued + health.unacked > 0


class TestMirrorCompatibleSurface:
    def test_mirror_api_names(self):
        _, _, _, channel = make_channel()
        assert channel.latency_s == ChannelConfig().latency_s
        assert channel.samples_mirrored == 0
        assert channel.samples_discarded == 0

    def test_pause_resume_silences_like_a_mirror(self):
        """The telemetry_drop fault pauses the pump task; nothing moves
        while paused, delivery resumes afterwards."""
        sim, source, sink, channel = make_channel()
        feed(sim, source, interval=0.01, stop=3.0)
        task = channel.start()
        sim.run(until=0.5)
        task.pause()
        # Frames already on the wire still land; drain them first.
        sim.run(until=0.5 + 2 * channel.latency_s)
        delivered = len(sink.series(0))
        sim.run(until=1.5)
        assert len(sink.series(0)) == delivered
        channel.discard_before(sim.now - channel.latency_s)
        task.resume()
        sim.run(until=2.0)
        assert len(sink.series(0)) > delivered


class TestDeterminism:
    def run_once(self, seed):
        sim, source, sink, channel = make_channel(
            config=ChannelConfig(loss_rate=0.25), seed=seed
        )
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=5.0)
        return channel.stats, sink.series(0)

    def test_same_seed_identical_everything(self):
        stats_a, series_a = self.run_once(9)
        stats_b, series_b = self.run_once(9)
        assert stats_a == stats_b
        assert series_a.times.tobytes() == series_b.times.tobytes()
        assert series_a.values.tobytes() == series_b.values.tobytes()

    def test_different_seed_different_loss_pattern(self):
        stats_a, _ = self.run_once(9)
        stats_b, _ = self.run_once(10)
        assert stats_a != stats_b


class TestTelemetryRecord:
    def test_frozen(self):
        record = TelemetryRecord(seq=0, path_id=1, t=2.0, value=0.03)
        with pytest.raises(AttributeError):
            record.seq = 5


class TestAuthenticatedChannel:
    KEY = b"channel-test-key"

    def make_authed(self, config=None, seed=0, gate=None):
        from repro.telemetry.auth import TelemetryAuthenticator

        sim = Simulator()
        source, sink = MeasurementStore(), MeasurementStore()
        channel = ReliableTelemetryChannel(
            source,
            sink,
            sim,
            config=config or ChannelConfig(),
            seed=seed,
            authenticator=TelemetryAuthenticator(self.KEY),
            gate=gate,
        )
        return sim, source, sink, channel

    def test_honest_records_tagged_and_delivered(self):
        sim, source, sink, channel = self.make_authed()
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=2.0)
        assert len(sink.series(0)) == len(source.series(0)) > 0
        assert channel.stats.records_forged == 0
        assert channel.authenticator.stats.verified == (
            channel.stats.records_delivered
        )

    def test_retransmits_do_not_trip_the_replay_window(self):
        """Transport-level duplicates are deduped by seq before the
        authenticator sees them: loss recovery is not a replay attack."""
        sim, source, sink, channel = self.make_authed(
            config=ChannelConfig(loss_rate=0.3), seed=5
        )
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=5.0)
        assert channel.stats.retransmits > 0
        assert len(sink.series(0)) == len(source.series(0))
        assert channel.authenticator.stats.replayed == 0
        assert channel.stats.records_forged == 0

    def test_in_flight_tamper_rejected_and_withheld(self):
        """An on-path attacker shifting the MAC'd sample time keeps the
        stale tag; verification fails and the sink never sees it."""
        sim, source, sink, channel = self.make_authed()
        wire = channel._send_frame

        def mitm(records, now):
            wire(
                [
                    TelemetryRecord(
                        r.seq, r.path_id, r.t - 0.010, r.value, tag=r.tag
                    )
                    for r in records
                ],
                now,
            )

        channel._send_frame = mitm
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=2.0)
        assert channel.stats.records_forged > 0
        assert channel.stats.records_delivered == 0
        assert len(sink.series(0)) == 0
        # Forged records are still acked: the transport did its job, the
        # verdict belongs to the auth layer — no retransmit storm.
        assert channel.stats.retransmits == 0

    def test_gate_rejections_counted_and_withheld(self):
        class EvenSecondsGate:
            def __init__(self):
                self.seen = 0

            def admit(self, path_id, t, value, now):
                self.seen += 1
                return int(t * 100) % 2 == 0

        gate = EvenSecondsGate()
        sim, source, sink, channel = self.make_authed(gate=gate)
        feed(sim, source, interval=0.01, stop=1.0)
        channel.start()
        sim.run(until=2.0)
        delivered = channel.stats.records_delivered
        rejected = channel.stats.records_rejected
        assert rejected > 0 and delivered > 0
        assert gate.seen == delivered + rejected
        assert len(sink.series(0)) == delivered
