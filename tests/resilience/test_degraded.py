"""Tests for degraded-mode estimation (RTT fallback + controller modes)."""

import ipaddress

import numpy as np
import pytest

from repro.core.config import EdgeConfig
from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.gateway import TangoGateway
from repro.core.policy import LowestDelaySelector
from repro.core.tunnels import TangoTunnel
from repro.netsim.delaymodels import ConstantDelay
from repro.netsim.events import Simulator
from repro.netsim.topology import Network
from repro.resilience.degraded import (
    MODE_COOPERATIVE,
    MODE_DEGRADED,
    DegradedModeConfig,
    RttFallbackEstimator,
)
from repro.telemetry.store import MeasurementStore


def make_setup(n_tunnels=2):
    net = Network()
    switch = net.add_switch("gw")
    config = EdgeConfig(
        name="ny",
        tenant_router="tango-ny",
        tenant_asn=64512,
        provider_router="vultr-ny",
        provider_asn=20473,
        host_prefix=ipaddress.IPv6Network("2001:db8:20::/48"),
        route_prefixes=tuple(
            ipaddress.IPv6Network(f"2001:db8:b{i}::/48") for i in range(n_tunnels)
        ),
    )
    gateway = TangoGateway(switch, config)
    gateway.install_tunnels(
        ipaddress.IPv6Network("2001:db8:30::/48"),
        [
            TangoTunnel(
                path_id=i,
                label=f"T{i}",
                local_endpoint=ipaddress.IPv6Address(f"2001:db8:b{i}::1"),
                remote_endpoint=ipaddress.IPv6Address(f"2001:db8:c{i}::1"),
                remote_prefix=ipaddress.IPv6Network(f"2001:db8:c{i}::/48"),
            )
            for i in range(n_tunnels)
        ],
    )
    return net, gateway


def make_degraded_controller(net, gateway, estimates=None, **kwargs):
    estimates = estimates if estimates is not None else MeasurementStore()
    gateway.set_selector(LowestDelaySelector(gateway.outbound, window_s=1.0))
    controller = TangoController(
        gateway,
        net.sim,
        interval_s=0.1,
        staleness_s=0.5,
        degraded=DegradedModeConfig(estimates=estimates, horizon_s=0.5, **kwargs),
    )
    return controller, estimates


class TestRttFallbackEstimator:
    def make_estimator(self, seed=900, probe_interval_s=0.1):
        sim = Simulator()
        forward = {0: ConstantDelay(0.030), 1: ConstantDelay(0.040)}
        reverse = {64: ConstantDelay(0.032), 65: ConstantDelay(0.044)}
        estimator = RttFallbackEstimator(
            sim, forward, reverse, probe_interval_s=probe_interval_s, seed=seed
        )
        return sim, estimator

    def test_estimates_near_half_rtt(self):
        sim, estimator = self.make_estimator()
        estimator.start()
        sim.run(until=1.0)
        assert estimator.probes == 11
        # Path 0: (30 + 32) ms / 2 = 31 ms, plus strictly positive noise.
        values = estimator.estimates.series(0).values
        assert values.size == 11
        assert np.all(values >= 0.031)
        assert np.all(values < 0.031 + 0.01)

    def test_noise_model_matches_rtt_probing_baseline(self):
        """Same |sum-of-draws| structure as RttProbingBaseline: four edge
        draws summed then folded, two host draws summed then folded."""
        from repro.netsim.delaymodels import deterministic_normal

        sim, estimator = self.make_estimator(seed=123)
        estimator.start()
        sim.run(until=0.0)  # exactly one probe, at t=0
        at = np.asarray([0.0])
        edge = sum(float(deterministic_normal(123 + k, at)[0]) for k in range(4))
        host = sum(
            float(deterministic_normal(133 + k, at)[0]) for k in range(2)
        )
        expected = (0.030 + 0.032 + abs(edge) * 0.35e-3 + abs(host) * 0.5e-3) / 2
        assert estimator.estimates.series(0).values[0] == pytest.approx(expected)

    def test_deterministic_across_runs(self):
        a_sim, a_est = self.make_estimator(seed=5)
        b_sim, b_est = self.make_estimator(seed=5)
        a_est.start()
        b_est.start()
        a_sim.run(until=2.0)
        b_sim.run(until=2.0)
        for pid in (0, 1):
            assert (
                a_est.estimates.series(pid).values.tobytes()
                == b_est.estimates.series(pid).values.tobytes()
            )

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="path counts"):
            RttFallbackEstimator(sim, {0: ConstantDelay(0.01)}, {})
        with pytest.raises(ValueError, match="at least one"):
            RttFallbackEstimator(sim, {}, {})
        with pytest.raises(ValueError, match="positive"):
            RttFallbackEstimator(
                sim,
                {0: ConstantDelay(0.01)},
                {64: ConstantDelay(0.01)},
                probe_interval_s=0.0,
            )

    def test_double_start_rejected(self):
        _, estimator = self.make_estimator()
        estimator.start()
        with pytest.raises(RuntimeError):
            estimator.start()

    def test_for_deployment_builds_from_calibrations(self):
        from repro.scenarios.vultr import VultrDeployment

        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        estimator = RttFallbackEstimator.for_deployment(deployment, "ny")
        estimator.start()
        deployment.net.run(until=1.1)
        fwd_ids = {t.path_id for t in deployment.tunnels("ny")}
        assert set(estimator.estimates.path_ids()) == fwd_ids


class TestDegradedConfigValidation:
    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            DegradedModeConfig(estimates=MeasurementStore(), horizon_s=0.0)

    def test_bad_heal_ticks(self):
        with pytest.raises(ValueError):
            DegradedModeConfig(estimates=MeasurementStore(), heal_ticks=0)


class TestModeTransitions:
    def test_downgrade_when_feed_goes_stale(self):
        net, gateway = make_setup()
        controller, estimates = make_degraded_controller(net, gateway)
        for pid in (0, 1):
            gateway.outbound.record(pid, 0.0, 0.030)
        controller.start()
        net.run(until=2.0)
        assert controller.mode == MODE_DEGRADED
        assert len(controller.mode_log) == 1
        transition = controller.mode_log[0]
        assert transition.mode == MODE_DEGRADED
        # Feed went stale past the 0.5 s horizon: first tick after that
        # is at 0.6 s (staleness 0.6 > 0.5).
        assert transition.t == pytest.approx(0.6)
        assert transition.staleness_s > 0.5

    def test_selector_repointed_at_estimates_and_back(self):
        net, gateway = make_setup()
        controller, estimates = make_degraded_controller(net, gateway)
        selector = gateway.data_selector
        cooperative_store = selector.store
        for pid in (0, 1):
            gateway.outbound.record(pid, 0.0, 0.030)
        # Mirror heals at t=2.
        net.sim.call_every(
            0.05,
            lambda: [
                gateway.outbound.record(p, net.sim.now, 0.030) for p in (0, 1)
            ],
            start=2.0,
        )
        controller.start()
        net.run(until=1.0)
        assert selector.store is estimates
        net.run(until=3.0)
        assert controller.mode == MODE_COOPERATIVE
        assert selector.store is cooperative_store
        modes = [m.mode for m in controller.mode_log]
        assert modes == [MODE_DEGRADED, MODE_COOPERATIVE]

    def test_upgrade_requires_heal_ticks_hysteresis(self):
        net, gateway = make_setup()
        controller, _ = make_degraded_controller(net, gateway, heal_ticks=3)
        for pid in (0, 1):
            gateway.outbound.record(pid, 0.0, 0.030)
        net.sim.call_every(
            0.05,
            lambda: [
                gateway.outbound.record(p, net.sim.now, 0.030) for p in (0, 1)
            ],
            start=2.0,
        )
        controller.start()
        net.run(until=4.0)
        upgrade = [m for m in controller.mode_log if m.mode == MODE_COOPERATIVE]
        assert len(upgrade) == 1
        # Fresh from the 2.0 s tick; third consecutive fresh tick at 2.2.
        assert upgrade[0].t == pytest.approx(2.2)

    def test_never_measured_feed_does_not_downgrade(self):
        net, gateway = make_setup()
        controller, _ = make_degraded_controller(net, gateway)
        controller.start()
        net.run(until=2.0)
        assert controller.mode == MODE_COOPERATIVE
        assert controller.mode_log == []


class TestFeedOutageVsQuarantine:
    def make_quarantining_controller(self, net, gateway, degraded):
        gateway.set_selector(LowestDelaySelector(gateway.outbound, window_s=1.0))
        return TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
            degraded=degraded,
        )

    def test_feed_outage_does_not_quarantine_all_paths(self):
        """All paths stale at once = mirror down, not four dead tunnels:
        degraded mode keeps routing, quarantine stays out of it."""
        net, gateway = make_setup()
        degraded = DegradedModeConfig(
            estimates=MeasurementStore(), horizon_s=0.5
        )
        controller = self.make_quarantining_controller(net, gateway, degraded)
        for pid in (0, 1):
            gateway.outbound.record(pid, 0.0, 0.030)
        controller.start()
        net.run(until=3.0)
        assert controller.mode == MODE_DEGRADED
        assert controller.quarantined == set()
        assert not controller.fallback_active

    def test_single_stale_path_still_quarantined(self):
        """One stale path among fresh ones is a path problem, not a feed
        problem — quarantine must still fire."""
        net, gateway = make_setup()
        degraded = DegradedModeConfig(
            estimates=MeasurementStore(), horizon_s=0.5
        )
        controller = self.make_quarantining_controller(net, gateway, degraded)
        gateway.outbound.record(0, 0.0, 0.030)  # path 0 then goes silent
        net.sim.call_every(
            0.05, lambda: gateway.outbound.record(1, net.sim.now, 0.030)
        )
        controller.start()
        net.run(until=2.0)
        assert controller.mode == MODE_COOPERATIVE
        assert 0 in controller.quarantined
        assert 1 not in controller.quarantined

    def test_without_degraded_config_outage_still_quarantines(self):
        """No fallback estimator means staleness must keep quarantining
        (the PR 1 behavior is preserved exactly)."""
        net, gateway = make_setup()
        controller = self.make_quarantining_controller(net, gateway, None)
        for pid in (0, 1):
            gateway.outbound.record(pid, 0.0, 0.030)
        controller.start()
        net.run(until=2.0)
        assert controller.quarantined == {0, 1}
        assert controller.fallback_active
