"""Tests for crash detection, restart backoff, and warm restore."""

import pytest

from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.policy import LowestDelaySelector
from repro.resilience.journal import ControllerJournal
from repro.resilience.supervisor import Supervisor, SupervisorPolicy

from tests.resilience.test_degraded import make_setup

FAST_POLICY = SupervisorPolicy(
    check_interval_s=0.3,
    restart_delay_s=0.25,
    backoff_factor=2.0,
    max_restart_delay_s=5.0,
    healthy_after_s=10.0,
)


def make_supervised(policy=FAST_POLICY, journal=None, quarantine=None, seed=0):
    net, gateway = make_setup()
    gateway.set_selector(LowestDelaySelector(gateway.outbound, window_s=1.0))
    controller = TangoController(
        gateway,
        net.sim,
        interval_s=0.1,
        staleness_s=0.5,
        quarantine=quarantine,
        journal=journal,
    )
    controller.start()
    supervisor = Supervisor(
        controller, net.sim, journal=journal, policy=policy, seed=seed
    )
    supervisor.start()
    return net, gateway, controller, supervisor


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_interval_s": 0.0},
            {"restart_delay_s": 0.0},
            {"backoff_factor": 0.9},
            {"restart_delay_s": 2.0, "max_restart_delay_s": 1.0},
            {"healthy_after_s": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)


class TestCrashDetection:
    def test_healthy_controller_never_flagged(self):
        net, _, controller, supervisor = make_supervised()
        net.run(until=5.0)
        assert supervisor.events == []
        assert supervisor.restarts == 0
        assert controller.running

    def test_crash_detected_and_restarted(self):
        net, _, controller, supervisor = make_supervised()
        net.sim.schedule_at(1.0, controller.crash)
        net.run(until=3.0)
        assert controller.running
        assert supervisor.restarts == 1
        actions = [e.action for e in supervisor.events]
        assert actions == ["crash-detected", "restart"]
        # Crash at 1.0; heartbeat grid 0, 0.3, ... detects at 1.2; the
        # restart fires one base delay later.
        detected, restarted = supervisor.events
        assert detected.t == pytest.approx(1.2)
        assert restarted.t == pytest.approx(1.2 + 0.25)

    def test_recovery_times(self):
        net, _, controller, supervisor = make_supervised()
        net.sim.schedule_at(1.0, controller.crash)
        net.run(until=3.0)
        assert supervisor.recovery_times() == [pytest.approx(0.25)]

    def test_hung_controller_treated_as_dead(self):
        """A controller whose tick counter stalls (loop wedged, flag
        still true) must be restarted too."""
        net, _, controller, supervisor = make_supervised()

        def wedge():
            controller._task.stop()  # loop dies, `running` flag stays up

        net.sim.schedule_at(1.0, wedge)
        net.run(until=3.0)
        assert supervisor.restarts >= 1

    def test_stopped_supervisor_does_not_restart(self):
        net, _, controller, supervisor = make_supervised()
        net.sim.schedule_at(0.5, supervisor.stop)
        net.sim.schedule_at(1.0, controller.crash)
        net.run(until=5.0)
        assert not controller.running
        assert supervisor.restarts == 0

    def test_double_start_rejected(self):
        _, _, _, supervisor = make_supervised()
        with pytest.raises(RuntimeError):
            supervisor.start()

    def test_manual_restart_wins_race(self):
        """If something restarts the controller during the backoff wait,
        the supervisor's pending restart becomes a no-op."""
        net, _, controller, supervisor = make_supervised()
        net.sim.schedule_at(1.0, controller.crash)
        net.sim.schedule_at(1.3, controller.start)  # before restart at 1.45
        net.run(until=3.0)
        assert controller.running
        assert supervisor.restarts == 0
        assert [e.action for e in supervisor.events] == ["crash-detected"]


class TestBackoff:
    def crash_repeatedly(self, net, controller, times):
        for t in times:
            net.sim.schedule_at(t, controller.crash)

    def test_backoff_doubles_per_crash(self):
        net, _, controller, supervisor = make_supervised()
        self.crash_repeatedly(net, controller, [1.0, 2.0, 3.05, 4.6])
        net.run(until=10.0)
        delays = [
            e.delay_s for e in supervisor.events if e.action == "crash-detected"
        ]
        assert delays == [
            pytest.approx(0.25),
            pytest.approx(0.5),
            pytest.approx(1.0),
            pytest.approx(2.0),
        ]
        assert supervisor.restarts == 4

    def test_backoff_capped(self):
        policy = SupervisorPolicy(
            check_interval_s=0.3,
            restart_delay_s=0.25,
            backoff_factor=2.0,
            max_restart_delay_s=0.5,
            healthy_after_s=10.0,
        )
        net, _, controller, supervisor = make_supervised(policy=policy)
        self.crash_repeatedly(net, controller, [1.0, 2.0, 3.05, 4.6])
        net.run(until=10.0)
        delays = [
            e.delay_s for e in supervisor.events if e.action == "crash-detected"
        ]
        assert delays[0] == pytest.approx(0.25)
        assert all(d <= 0.5 + 1e-9 for d in delays)
        assert delays[-1] == pytest.approx(0.5)

    def test_healthy_uptime_resets_backoff(self):
        policy = SupervisorPolicy(
            check_interval_s=0.3,
            restart_delay_s=0.25,
            backoff_factor=2.0,
            max_restart_delay_s=5.0,
            healthy_after_s=1.0,
        )
        net, _, controller, supervisor = make_supervised(policy=policy)
        # Two quick crashes push the delay to 1.0, then a long healthy
        # stretch resets it; the third crash pays the base delay again.
        self.crash_repeatedly(net, controller, [1.0, 2.0, 6.0])
        net.run(until=10.0)
        actions = [e.action for e in supervisor.events]
        assert "backoff-reset" in actions
        delays = [
            e.delay_s for e in supervisor.events if e.action == "crash-detected"
        ]
        assert delays == [
            pytest.approx(0.25),
            pytest.approx(0.5),
            pytest.approx(0.25),
        ]


class TestDeterministicJitter:
    JITTERED = SupervisorPolicy(
        check_interval_s=0.3,
        restart_delay_s=0.25,
        backoff_factor=2.0,
        max_restart_delay_s=5.0,
        healthy_after_s=10.0,
        jitter_frac=0.5,
    )
    # Spaced so each restart (with up to 1.5x jittered delay) completes
    # before the next crash lands.
    CRASHES = [1.0, 2.5, 4.5, 7.5]

    def schedule(self, seed):
        net, _, controller, supervisor = make_supervised(
            policy=self.JITTERED, seed=seed
        )
        for t in self.CRASHES:
            net.sim.schedule_at(t, controller.crash)
        net.run(until=13.0)
        return [
            (e.t, e.delay_s)
            for e in supervisor.events
            if e.action == "crash-detected"
        ]

    def test_same_seed_identical_schedule(self):
        assert self.schedule(7) == self.schedule(7)

    def test_different_seeds_decorrelate(self):
        delays_a = [d for _, d in self.schedule(7)]
        delays_b = [d for _, d in self.schedule(8)]
        assert delays_a != delays_b

    def test_jitter_bounded_above_base_delay(self):
        """Jitter only ever lengthens the delay, by at most jitter_frac."""
        base = [0.25, 0.5, 1.0, 2.0]
        delays = [d for _, d in self.schedule(7)]
        assert len(delays) == len(base)
        for got, expected in zip(delays, base):
            assert expected <= got <= expected * 1.5

    def test_zero_jitter_matches_prior_behavior(self):
        net, _, controller, supervisor = make_supervised(seed=7)
        for t in self.CRASHES:
            net.sim.schedule_at(t, controller.crash)
        net.run(until=13.0)
        delays = [
            e.delay_s for e in supervisor.events if e.action == "crash-detected"
        ]
        assert delays == [pytest.approx(d) for d in [0.25, 0.5, 1.0, 2.0]]


class TestWarmRestore:
    def quarantine_then_crash(self, journal):
        """Path 0 goes silent and is quarantined ~0.7 s; the controller
        dies at 1.0 s, before the 1.7 s probation."""
        net, gateway = make_setup()
        gateway.set_selector(LowestDelaySelector(gateway.outbound, window_s=1.0))
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
            journal=journal,
        )
        gateway.outbound.record(0, 0.0, 0.030)  # then silent
        net.sim.call_every(
            0.05, lambda: gateway.outbound.record(1, net.sim.now, 0.030)
        )
        controller.start()
        supervisor = Supervisor(
            controller, net.sim, journal=journal, policy=FAST_POLICY
        )
        supervisor.start()
        net.sim.schedule_at(1.0, controller.crash)
        return net, controller, supervisor

    def quarantine_actions(self, controller):
        return [
            q for q in controller.quarantine_log
            if q.path_id == 0 and q.action == "quarantine"
        ]

    def test_warm_restore_does_not_requarantine(self):
        journal = ControllerJournal(checkpoint_every_ticks=5)
        net, controller, supervisor = self.quarantine_then_crash(journal)
        net.run(until=1.6)  # restart at ~1.45, before probation at 1.7
        assert supervisor.restarts == 1
        assert 0 in controller.quarantined
        # The restored machine remembers the pre-crash quarantine; no
        # duplicate transition is issued after the restart.
        assert len(self.quarantine_actions(controller)) == 1

    def test_cold_restart_rederives_quarantine(self):
        """Without a journal the restarted controller has amnesia: it
        re-walks the hysteresis and logs a second quarantine — exactly
        the churn the warm path exists to avoid."""
        net, controller, supervisor = self.quarantine_then_crash(journal=None)
        net.run(until=2.2)
        assert supervisor.restarts == 1
        assert 0 in controller.quarantined
        assert len(self.quarantine_actions(controller)) >= 2

    def test_warm_restore_keeps_probation_schedule(self):
        """Probation must still begin at the originally scheduled
        expiry (1.7 s, hit by the first post-restart tick at 1.75), not
        one fresh backoff after the restart (2.45 s)."""
        journal = ControllerJournal(checkpoint_every_ticks=5)
        net, controller, supervisor = self.quarantine_then_crash(journal)
        net.run(until=2.0)
        probations = [
            q for q in controller.quarantine_log
            if q.path_id == 0 and q.action == "probation"
        ]
        assert len(probations) >= 1
        assert probations[0].t == pytest.approx(1.75, abs=0.06)
