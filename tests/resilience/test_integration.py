"""Integration: the E14 acceptance scenario.

One resilient edge rides out three overlapping faults — a 30% loss
window on the telemetry channel, a 2 s total telemetry silence, and a
mid-run controller crash while a blackholed tunnel sits in quarantine:

* the data plane **never stops forwarding** (selector choice gaps stay
  under half a staleness horizon for the whole run);
* the controller **degrades to local RTT estimates within the staleness
  horizon** of the mirror going silent and re-upgrades after it heals;
* the supervisor **warm-restores quarantine state** from the journal —
  the quarantine/backoff history is identical to a crash-free twin run
  (no duplicate churn, no forgotten blackhole);
* the whole campaign is **byte-identical across replays** of the same
  plan and seed.
"""

import pytest

from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.policy import LowestDelaySelector
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.netsim.trace import PacketFactory
from repro.resilience import (
    ChannelConfig,
    ControllerJournal,
    DegradedModeConfig,
    RttFallbackEstimator,
)
from repro.scenarios.vultr import VultrDeployment

LOSS_AT, LOSS_FOR = 2.0, 4.0
DROP_AT, DROP_FOR = 8.0, 2.0
BLACKHOLE_AT, BLACKHOLE_FOR = 10.5, 5.0
CRASH_AT = 12.0
HORIZON_S = 0.5
RUN_UNTIL = 20.0


def build_plan(with_crash):
    events = [
        FaultEvent(
            "telemetry_loss",
            at=LOSS_AT,
            duration=LOSS_FOR,
            params={"edge": "ny", "rate": 0.3},
        ),
        FaultEvent(
            "telemetry_drop",
            at=DROP_AT,
            duration=DROP_FOR,
            params={"edge": "ny"},
        ),
        FaultEvent(
            "link_blackhole",
            at=BLACKHOLE_AT,
            duration=BLACKHOLE_FOR,
            params={"src": "ny", "path": "GTT"},
        ),
    ]
    if with_crash:
        events.append(
            FaultEvent("controller_crash", at=CRASH_AT, params={"edge": "ny"})
        )
    return FaultPlan(name="e14-combined", seed=11, events=tuple(events))


def run_campaign(with_crash):
    deployment = VultrDeployment(
        include_events=False,
        telemetry_channel=ChannelConfig(report_interval_s=0.1),
    )
    deployment.establish()
    deployment.start_path_probes("ny")
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway("ny").outbound, window_s=1.0)
    )
    estimator = RttFallbackEstimator.for_deployment(deployment, "ny")
    estimator.start()
    journal = ControllerJournal(checkpoint_every_ticks=10)
    controller = TangoController(
        deployment.gateway("ny"),
        deployment.sim,
        interval_s=0.1,
        staleness_s=HORIZON_S,
        quarantine=QuarantinePolicy(),
        degraded=DegradedModeConfig(
            estimates=estimator.estimates, horizon_s=HORIZON_S
        ),
        journal=journal,
    )
    controller.start()
    deployment.attach_controller("ny", controller)
    supervisor = deployment.supervise("ny", journal=journal)

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    deployment.sim.call_every(0.02, lambda: send(factory.build()))

    FaultInjector(deployment, build_plan(with_crash)).arm()
    deployment.net.run(until=RUN_UNTIL)
    return deployment, controller, supervisor, journal


def gtt_history(controller):
    return [
        (q.action, q.backoff_s)
        for q in controller.quarantine_log
        if q.label == "GTT"
    ]


class TestCombinedFaultCampaign:
    @pytest.fixture(scope="class")
    def crash_free(self):
        return run_campaign(with_crash=False)

    @pytest.fixture(scope="class")
    def crashy(self):
        return run_campaign(with_crash=True)

    # -- (a) the data plane never stops forwarding ---------------------------------

    @pytest.mark.parametrize("which", ["crash_free", "crashy"])
    def test_forwarding_never_stops(self, which, request):
        _, controller, _, _ = request.getfixturevalue(which)
        times = controller.choice_trace.times
        assert len(times) > 150
        assert times[-1] > RUN_UNTIL - HORIZON_S
        gaps = times[1:] - times[:-1]
        # Telemetry silence, frame loss, blackhole, and the crash are
        # all slow-path events: packets keep flowing the whole time.
        assert gaps.max() < HORIZON_S

    # -- (b) degraded-mode estimation within the staleness horizon -----------------

    def test_degrades_within_horizon_of_mirror_silence(self, crashy):
        _, controller, _, _ = crashy
        downgrades = [
            m.t
            for m in controller.mode_log
            if m.mode == "degraded" and m.t >= DROP_AT
        ]
        assert downgrades, "mirror silence never triggered degraded mode"
        # Last frame lands ~DROP_AT + channel latency; the first control
        # tick past the horizon flips the mode (one tick of slack).
        assert downgrades[0] <= DROP_AT + HORIZON_S + 0.2

    def test_reupgrades_after_mirror_heals(self, crashy):
        _, controller, _, _ = crashy
        heal_at = DROP_AT + DROP_FOR
        upgrades = [
            m.t
            for m in controller.mode_log
            if m.mode == "cooperative" and m.t >= heal_at
        ]
        assert upgrades
        assert upgrades[0] <= heal_at + 0.5
        assert controller.mode == "cooperative"

    def test_mode_transitions_alternate(self, crashy):
        _, controller, _, _ = crashy
        modes = [m.mode for m in controller.mode_log]
        assert all(a != b for a, b in zip(modes, modes[1:]))

    def test_mirror_outage_never_quarantines_healthy_tunnels(self, crashy):
        """Feed-wide staleness must read as 'mirror down', not 'every
        tunnel dead': only the blackholed path is ever quarantined."""
        _, controller, _, _ = crashy
        assert {q.label for q in controller.quarantine_log} == {"GTT"}
        assert not controller.fallback_active

    # -- (c) crash-safe warm restore ------------------------------------------------

    def test_crash_detected_and_recovered_quickly(self, crashy):
        _, controller, supervisor, journal = crashy
        assert supervisor.restarts == 1
        assert controller.running
        recovery = supervisor.recovery_times()
        assert len(recovery) == 1
        assert recovery[0] < 2.0
        assert journal.checkpoints > 0

    def test_no_duplicate_quarantine_churn_versus_crash_free_run(
        self, crash_free, crashy
    ):
        """The restarted controller must pick up the quarantine machine
        where it died: same transitions, same backoff escalation, same
        final restore as the run where the controller never crashed."""
        _, free_ctl, free_sup, _ = crash_free
        _, crash_ctl, _, _ = crashy
        assert free_sup.restarts == 0  # the twin really is crash-free
        assert gtt_history(crash_ctl) == gtt_history(free_ctl)
        history = gtt_history(crash_ctl)
        assert [b for a, b in history if a == "quarantine"] == [1.0, 2.0, 4.0]
        assert history[-1][0] == "restore"
        assert crash_ctl.quarantined == set()

    def test_quarantine_survives_the_crash_window(self, crashy):
        """GTT was quarantined before the crash and the blackhole was
        still active at restart: the warm-restored controller must keep
        it out of service, not re-admit and re-learn."""
        _, controller, supervisor, _ = crashy
        restart_at = next(
            e.t for e in supervisor.events if e.action == "restart"
        )
        requarantines = [
            q.t
            for q in controller.quarantine_log
            if q.label == "GTT"
            and q.action == "quarantine"
            and restart_at <= q.t < restart_at + 0.1
        ]
        assert requarantines == []  # no immediate post-restart churn


class TestReplayDeterminism:
    def test_journal_dump_byte_identical_across_replays(self):
        _, _, _, journal_a = run_campaign(with_crash=True)
        _, _, _, journal_b = run_campaign(with_crash=True)
        assert journal_a.dump() == journal_b.dump()

    def test_cli_resilient_byte_identical(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(build_plan(with_crash=True).to_json())
        outputs = []
        for run in (1, 2):
            out_path = tmp_path / f"log{run}.txt"
            assert (
                main_cli(
                    [
                        "faults",
                        "run",
                        "--resilient",
                        "--plan",
                        str(plan_path),
                        "--seed",
                        "11",
                        "--duration",
                        "16",
                        "--transitions",
                        "--out",
                        str(out_path),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            outputs.append(out_path.read_bytes())
        assert outputs[0] == outputs[1]
        text = outputs[0].decode()
        assert "link_blackhole ny:GTT" in text


def main_cli(argv):
    from repro.cli import main

    return main(argv)
