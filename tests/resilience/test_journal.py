"""Tests for the checkpoint + write-ahead-log persistence layer."""

import json

import pytest

from repro.resilience.journal import ControllerJournal, WriteAheadLog


class TestWriteAheadLog:
    def test_append_and_entries(self):
        wal = WriteAheadLog()
        wal.append({"kind": "quarantine", "t": 1.0, "path_id": 3})
        wal.append({"kind": "restore", "t": 2.0, "path_id": 3})
        assert len(wal) == 2
        assert [e["kind"] for e in wal.entries()] == ["quarantine", "restore"]

    def test_entries_returns_a_copy(self):
        wal = WriteAheadLog()
        wal.append({"kind": "mode", "t": 0.0})
        wal.entries().clear()
        assert len(wal) == 1

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append({"kind": "mode", "t": 0.0})
        wal.truncate()
        assert len(wal) == 0
        assert wal.entries() == []

    def test_file_backed_roundtrip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"kind": "quarantine", "t": 1.5, "path_id": 0})
        wal.append({"kind": "fallback", "t": 2.5, "active": True})
        # A fresh instance on the same file sees the same entries.
        reopened = WriteAheadLog(path)
        assert reopened.entries() == wal.entries()

    def test_file_truncate_empties_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"kind": "mode", "t": 0.0})
        wal.truncate()
        assert path.read_text(encoding="utf-8") == ""
        assert WriteAheadLog(path).entries() == []


class TestControllerJournal:
    def test_record_appends_to_wal(self):
        journal = ControllerJournal()
        journal.record("quarantine", 1.0, path_id=2, cause="stale")
        assert journal.records == 1
        snapshot, wal = journal.recover()
        assert snapshot is None
        assert wal == [{"kind": "quarantine", "t": 1.0, "path_id": 2, "cause": "stale"}]

    def test_checkpoint_truncates_wal(self):
        journal = ControllerJournal()
        journal.record("quarantine", 1.0, path_id=2)
        journal.checkpoint({"ticks": 10, "quarantined": [2]})
        assert journal.checkpoints == 1
        snapshot, wal = journal.recover()
        assert snapshot == {"ticks": 10, "quarantined": [2]}
        assert wal == []

    def test_recover_returns_checkpoint_plus_tail(self):
        journal = ControllerJournal()
        journal.checkpoint({"ticks": 10})
        journal.record("restore", 2.0, path_id=2)
        snapshot, wal = journal.recover()
        assert snapshot == {"ticks": 10}
        assert [e["kind"] for e in wal] == ["restore"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerJournal(checkpoint_every_ticks=0)

    def test_dump_is_deterministic(self):
        def build():
            journal = ControllerJournal()
            journal.checkpoint({"b": 2, "a": 1})
            journal.record("mode", 1.0, mode="degraded")
            return journal

        assert build().dump() == build().dump()
        # Compact, sorted-key JSON regardless of insertion order.
        assert '"a":1,"b":2' in build().dump()

    def test_directory_backed_checkpoint_atomic(self, tmp_path):
        journal = ControllerJournal(tmp_path)
        journal.checkpoint({"ticks": 5})
        assert not (tmp_path / "checkpoint.json.tmp").exists()
        on_disk = json.loads((tmp_path / "checkpoint.json").read_text())
        assert on_disk == {"ticks": 5}

    def test_reopen_recovers_across_process_restart(self, tmp_path):
        """Simulates a real process death: a second journal on the same
        directory must see the checkpoint and the WAL tail."""
        first = ControllerJournal(tmp_path)
        first.checkpoint({"ticks": 50, "quarantined": [1]})
        first.record("quarantine", 5.2, path_id=3, cause="loss")
        del first
        second = ControllerJournal(tmp_path)
        snapshot, wal = second.recover()
        assert snapshot == {"ticks": 50, "quarantined": [1]}
        assert wal == [{"kind": "quarantine", "t": 5.2, "path_id": 3, "cause": "loss"}]

    def test_memory_journal_does_not_touch_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        journal = ControllerJournal()
        journal.record("mode", 1.0, mode="degraded")
        journal.checkpoint({"ticks": 1})
        assert list(tmp_path.iterdir()) == []

    def test_repr_mentions_backing(self, tmp_path):
        assert "memory" in repr(ControllerJournal())
        assert str(tmp_path) in repr(ControllerJournal(tmp_path))
