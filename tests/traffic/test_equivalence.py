"""Fluid-vs-packet equivalence: model properties and the sweep gate."""

import numpy as np
import pytest

from repro.traffic.equivalence import _poisson_gaps, run_equivalence
from repro.traffic.fluid import (
    RHO_WAIT_CAP,
    fluid_overload_loss,
    fluid_wait_s,
)


class TestClosedForms:
    def test_pk_wait_monotone_in_rho(self):
        service = 1.2e-3
        waits = [fluid_wait_s(rho, service) for rho in (0.0, 0.3, 0.6, 0.9)]
        assert waits[0] == 0.0
        assert waits == sorted(waits)
        # Known point: rho=0.5 -> W = 0.5/(2*0.5) * service = service/2.
        assert fluid_wait_s(0.5, service) == pytest.approx(service / 2)

    def test_pk_wait_clamped_at_cap(self):
        service = 1.2e-3
        assert fluid_wait_s(5.0, service) == fluid_wait_s(RHO_WAIT_CAP, service)
        assert np.isfinite(fluid_wait_s(1e9, service))
        with pytest.raises(ValueError):
            fluid_wait_s(0.5, -1.0)

    def test_overload_loss(self):
        assert fluid_overload_loss(0.5) == 0.0
        assert fluid_overload_loss(1.0) == 0.0
        assert fluid_overload_loss(1.25) == pytest.approx(0.2)
        assert fluid_overload_loss(2.0) == pytest.approx(0.5)


class TestArrivalSchedule:
    def test_gaps_deterministic_and_positive(self):
        a = _poisson_gaps(9, 500, 1000.0)
        b = _poisson_gaps(9, 500, 1000.0)
        assert np.array_equal(a, b)
        assert (a > 0).all()

    def test_gaps_mean_matches_rate(self):
        gaps = _poisson_gaps(9, 20_000, 1000.0)
        assert float(np.mean(gaps)) == pytest.approx(1e-3, rel=0.05)

    def test_seed_changes_schedule(self):
        assert not np.array_equal(
            _poisson_gaps(1, 100, 1000.0), _poisson_gaps(2, 100, 1000.0)
        )


class TestSweep:
    def test_small_sweep_within_gates(self):
        # A reduced sweep (one point per regime, fewer packets) so the
        # tier-1 suite exercises the full comparison path quickly; the
        # benchmark gate runs the full-size sweep.
        points = run_equivalence(
            utilizations=(0.6,), overloads=(1.3,), packets=8_000
        )
        assert [p.rho for p in points] == [0.6, 1.3]
        for point in points:
            assert point.delay_rel_error <= 0.10
            assert point.loss_error_pp <= 2.0
        below, above = points
        assert below.packet_loss == 0.0
        assert below.fluid_loss == 0.0
        assert above.packet_loss > 0.15
        assert above.fluid_loss == pytest.approx(1.0 - 1.0 / 1.3)
        # Overload delay saturates near base + service + one buffer drain.
        assert above.fluid_delay_s > below.fluid_delay_s + 0.05

    def test_sweep_deterministic(self):
        kwargs = dict(utilizations=(0.5,), overloads=(), packets=3_000)
        assert run_equivalence(**kwargs) == run_equivalence(**kwargs)
