"""Tests for load-aware weights, the weighted-split selector, and the
controller rebalancer hook."""

import ipaddress
from dataclasses import dataclass

import pytest

from repro.core.controller import TangoController
from repro.netsim.events import Simulator
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.scenarios.vultr import VultrDeployment
from repro.telemetry.store import MeasurementStore
from repro.traffic.splitting import (
    LoadAwareWeights,
    SplitRebalancer,
    WeightedSplitSelector,
)


@dataclass(frozen=True)
class FakeTunnel:
    path_id: int
    local_endpoint: ipaddress.IPv6Address = ipaddress.IPv6Address("::1")
    remote_endpoint: ipaddress.IPv6Address = ipaddress.IPv6Address("::2")
    sport: int = 40000


TUNNELS = [FakeTunnel(path_id=i) for i in range(3)]


def packet(flow=1):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::1"),
                dst=ipaddress.IPv6Address("2001:db8:20::1"),
            ),
            UdpHeader(sport=1000 + flow, dport=2000),
        ],
        flow_label=flow,
    )


class TestLoadAwareWeights:
    def store_with(self, delays):
        store = MeasurementStore()
        for pid, delay in delays.items():
            store.record(pid, 1.0, delay)
        return store

    def test_inverse_delay(self):
        store = self.store_with({0: 0.030, 1: 0.060, 2: 0.030})
        weights = LoadAwareWeights(store, window_s=5.0)(TUNNELS, 1.5)
        assert weights[0] == pytest.approx(2.0 * weights[1])
        assert weights[0] == pytest.approx(weights[2])

    def test_headroom_discounts_hot_path(self):
        store = self.store_with({0: 0.030, 1: 0.030, 2: 0.030})
        rho = {0: 0.0, 1: 0.9, 2: 2.0}
        weights = LoadAwareWeights(
            store, window_s=5.0, utilization=lambda pid: rho[pid]
        )(TUNNELS, 1.5)
        assert weights[1] == pytest.approx(0.1 * weights[0])
        # Saturated path keeps the headroom floor, never zero.
        assert weights[2] == pytest.approx(0.05 * weights[0])
        assert weights[2] > 0

    def test_unmeasured_path_gets_neutral_weight(self):
        store = self.store_with({0: 0.025, 2: 0.075})
        weights = LoadAwareWeights(store, window_s=5.0)(TUNNELS, 1.5)
        assert weights[1] == pytest.approx((weights[0] + weights[2]) / 2)

    def test_nothing_measured_is_uniform(self):
        weights = LoadAwareWeights(MeasurementStore())(TUNNELS, 0.0)
        assert weights == [1.0, 1.0, 1.0]

    def test_validation(self):
        store = MeasurementStore()
        with pytest.raises(ValueError):
            LoadAwareWeights(store, window_s=0.0)
        with pytest.raises(ValueError):
            LoadAwareWeights(store, headroom_floor=0.0)


class TestWeightedSplitSelector:
    def test_split_weights_normalized(self):
        selector = WeightedSplitSelector()
        selector.update_weights([3.0, 1.0, 0.0])
        assert selector.split_weights(TUNNELS, 0.0) == pytest.approx(
            [0.75, 0.25, 0.0]
        )

    def test_negative_weights_clamped(self):
        selector = WeightedSplitSelector()
        selector.update_weights([2.0, -5.0, 2.0])
        assert selector.split_weights(TUNNELS, 0.0) == pytest.approx(
            [0.5, 0.0, 0.5]
        )

    def test_all_nonpositive_falls_back_to_uniform(self):
        selector = WeightedSplitSelector()
        selector.update_weights([0.0, -1.0, 0.0])
        assert selector.split_weights(TUNNELS, 0.0) == pytest.approx(
            [1 / 3, 1 / 3, 1 / 3]
        )
        assert selector.uniform_fallbacks == 1

    def test_aggregate_split_tracks_weights(self):
        selector = WeightedSplitSelector(seed=4)
        selector.update_weights([6.0, 3.0, 1.0])
        for f in range(1000):
            selector.select(TUNNELS, packet(flow=f), now=float(f))
        total = sum(selector.split_counts.values())
        assert total == 1000
        assert selector.split_counts[0] / total == pytest.approx(0.6, abs=0.06)
        assert selector.split_counts[1] / total == pytest.approx(0.3, abs=0.06)
        assert selector.split_counts[2] / total == pytest.approx(0.1, abs=0.06)

    def test_draws_deterministic_across_restarts(self):
        def run():
            selector = WeightedSplitSelector(seed=21)
            selector.update_weights([2.0, 1.0, 1.0])
            return [
                selector.select(TUNNELS, packet(flow=f), now=float(f)).path_id
                for f in range(200)
            ]

        assert run() == run()

    def test_seed_changes_assignment(self):
        def run(seed):
            selector = WeightedSplitSelector(seed=seed)
            selector.update_weights([1.0, 1.0, 1.0])
            return [
                selector.select(TUNNELS, packet(flow=f), now=float(f)).path_id
                for f in range(50)
            ]

        assert run(1) != run(2)

    def test_last_choice_and_protocol(self):
        selector = WeightedSplitSelector()
        assert selector.last_choice is None
        chosen = selector.select(TUNNELS, packet(flow=9), now=0.0)
        assert selector.last_choice == chosen.path_id

    def test_policy_cached_between_refreshes(self):
        calls = []

        def policy(tunnels, now):
            calls.append(now)
            return [1.0, 1.0, 1.0]

        selector = WeightedSplitSelector(policy, refresh_s=1.0)
        selector.split_weights(TUNNELS, 0.0)
        selector.split_weights(TUNNELS, 0.5)  # cached
        selector.split_weights(TUNNELS, 1.5)  # refreshed
        assert calls == [0.0, 1.5]

    def test_policy_shape_enforced(self):
        selector = WeightedSplitSelector(lambda tunnels, now: [1.0])
        with pytest.raises(ValueError, match="weight"):
            selector.split_weights(TUNNELS, 0.0)

    def test_empty_tunnel_list_rejected(self):
        with pytest.raises(ValueError):
            WeightedSplitSelector().select([], packet(), now=0.0)


class TestSplitRebalancer:
    def test_rebalance_installs_weights_and_records_history(self):
        selector = WeightedSplitSelector()
        shifting = {"weights": [4.0, 4.0, 0.0]}
        rebalancer = SplitRebalancer(
            selector, lambda tunnels, now: shifting["weights"], TUNNELS
        )
        rebalancer(1.0)
        assert selector.split_weights(TUNNELS, 1.0) == pytest.approx(
            [0.5, 0.5, 0.0]
        )
        shifting["weights"] = [0.0, 1.0, 3.0]
        rebalancer(2.0)
        assert selector.split_weights(TUNNELS, 2.0) == pytest.approx(
            [0.0, 0.25, 0.75]
        )
        assert [t for t, _ in rebalancer.history] == [1.0, 2.0]
        assert rebalancer.history[0][1] == pytest.approx((0.5, 0.5, 0.0))

    def test_degenerate_policy_output_goes_uniform(self):
        selector = WeightedSplitSelector()
        rebalancer = SplitRebalancer(
            selector, lambda tunnels, now: [-1.0, 0.0, -2.0], TUNNELS
        )
        rebalancer(0.5)
        assert rebalancer.history[0][1] == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_needs_tunnels(self):
        with pytest.raises(ValueError):
            SplitRebalancer(
                WeightedSplitSelector(), lambda tunnels, now: [], []
            )

    def test_controller_tick_drives_rebalancer(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        gateway = deployment.gateway_ny
        tunnels = deployment.tunnels("ny")
        selector = WeightedSplitSelector(seed=3)
        deployment.set_data_policy("ny", selector)
        rebalancer = SplitRebalancer(
            selector,
            LoadAwareWeights(gateway.outbound, window_s=1.0),
            tunnels,
        )
        controller = TangoController(
            gateway, deployment.sim, interval_s=0.1, rebalancer=rebalancer
        )
        controller.start()
        deployment.start_path_probes("ny", interval_s=0.01)
        deployment.net.run(until=2.0)
        controller.stop()

        assert controller.ticks >= 19
        assert len(rebalancer.history) == controller.ticks
        # Once probes fill the mirror, the installed split favors the
        # lowest-delay path (GTT, path id 2) over the BGP default (NTT).
        _, final = rebalancer.history[-1]
        assert final[2] > final[0]
        assert sum(final) == pytest.approx(1.0)


class TestSimulatorIndependence:
    def test_rebalancer_without_deployment(self):
        # The hook contract is plain (now) -> None; a bare Simulator can
        # drive it through a controller-free periodic task.
        sim = Simulator()
        selector = WeightedSplitSelector()
        rebalancer = SplitRebalancer(
            selector, lambda tunnels, now: [1.0, 2.0, 1.0], TUNNELS
        )
        sim.call_every(0.5, lambda: rebalancer(sim.now))
        sim.run(until=2.1)
        assert len(rebalancer.history) >= 4
        assert selector.split_weights(TUNNELS, sim.now) == pytest.approx(
            [0.25, 0.5, 0.25]
        )
