"""Tests for demand generation: flow classes, surges, heavy tails."""

import pytest

from repro.traffic.demand import (
    DemandModel,
    FlowClass,
    SurgeWindow,
    standard_flow_classes,
)


def web_class(**overrides):
    base = dict(
        name="web",
        flow_label=1,
        arrival_rate_per_s=100.0,
        mean_size_bytes=125_000.0,  # 1 Mbit
        rate_bps=1e6,  # -> 1 s mean duration
        pareto_alpha=1.5,
    )
    base.update(overrides)
    return FlowClass(**base)


class TestFlowClass:
    def test_littles_law(self):
        cls = web_class()
        assert cls.mean_duration_s == pytest.approx(1.0)
        assert cls.equilibrium_flows == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            web_class(pareto_alpha=1.0)  # infinite mean
        with pytest.raises(ValueError):
            web_class(rate_bps=0.0)
        with pytest.raises(ValueError):
            web_class(mean_size_bytes=-1.0)
        with pytest.raises(ValueError):
            web_class(diurnal_fraction=1.0)

    def test_diurnal_factor_cycles(self):
        cls = web_class(diurnal_fraction=0.5)
        assert cls.diurnal_factor(0.0) == pytest.approx(1.0)
        assert cls.diurnal_factor(86_400 / 4) == pytest.approx(1.5)
        assert cls.diurnal_factor(3 * 86_400 / 4) == pytest.approx(0.5)
        assert web_class().diurnal_factor(12_345.0) == 1.0


class TestSurges:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SurgeWindow(start=2.0, end=1.0, factor=2.0)
        with pytest.raises(ValueError):
            SurgeWindow(start=0.0, end=1.0, factor=0.0)

    def test_surges_stack_multiplicatively(self):
        model = DemandModel(classes=(web_class(),))
        model.add_surge(1.0, 5.0, 2.0)
        model.add_surge(2.0, 3.0, 3.0)
        assert model.surge_factor(1, 0.5) == 1.0
        assert model.surge_factor(1, 1.5) == 2.0
        assert model.surge_factor(1, 2.5) == 6.0
        assert model.surge_factor(1, 5.0) == 1.0  # end-exclusive

    def test_surge_targets_one_class(self):
        video = web_class(name="video", flow_label=2)
        model = DemandModel(classes=(web_class(), video))
        model.add_surge(0.0, 10.0, 4.0, flow_label=2)
        assert model.surge_factor(1, 5.0) == 1.0
        assert model.surge_factor(2, 5.0) == 4.0
        assert model.arrival_rate(video, 5.0) == pytest.approx(400.0)


class TestDemandModel:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            DemandModel(classes=(web_class(), web_class()))
        with pytest.raises(ValueError):
            DemandModel(classes=())

    def test_arrivals_deterministic_and_near_rate(self):
        model = DemandModel(classes=(web_class(),), seed=5)
        replay = DemandModel(classes=(web_class(),), seed=5)
        cls = model.classes[0]
        totals = []
        for i in range(200):
            a = model.arrivals_between(cls, i * 0.1, (i + 1) * 0.1)
            assert a == replay.arrivals_between(cls, i * 0.1, (i + 1) * 0.1)
            assert a >= 0.0
            totals.append(a)
        # 200 intervals x 10 arrivals: the Poisson-scale noise averages out.
        assert sum(totals) == pytest.approx(2000.0, rel=0.15)

    def test_different_seed_changes_arrivals(self):
        cls = web_class()
        a = DemandModel(classes=(cls,), seed=1).arrivals_between(cls, 0.0, 0.1)
        b = DemandModel(classes=(cls,), seed=2).arrivals_between(cls, 0.0, 0.1)
        assert a != b

    def test_sizes_heavy_tailed_capped_and_deterministic(self):
        model = DemandModel(classes=(web_class(),), seed=3)
        cls = model.classes[0]
        draws = [model.size_draw_bytes(cls, float(t)) for t in range(2000)]
        assert draws == [model.size_draw_bytes(cls, float(t)) for t in range(2000)]
        mean = sum(draws) / len(draws)
        # Mean within a factor band (the cap trims the infinite-variance tail).
        assert 0.5 * cls.mean_size_bytes < mean < 1.5 * cls.mean_size_bytes
        assert max(draws) <= 50.0 * cls.mean_size_bytes
        # Heavy tail: the top decile dominates the bottom decile by a lot.
        draws.sort()
        assert sum(draws[-200:]) > 5.0 * sum(draws[:200])

    def test_equilibrium_totals(self):
        model = DemandModel(classes=standard_flow_classes(1_050_000))
        assert model.total_equilibrium_flows(0.0) >= 1_000_000
        # Offered load must fit under the Vultr aggregate (~36 Gbps).
        assert model.offered_bps(0.0) < 36e9

    def test_standard_classes_scale(self):
        small = DemandModel(classes=standard_flow_classes(10_000))
        assert small.total_equilibrium_flows(0.0) == pytest.approx(
            10_000, rel=0.35
        )
        with pytest.raises(ValueError):
            standard_flow_classes(0)

    def test_class_lookup(self):
        model = DemandModel(classes=(web_class(),))
        assert model.class_for(1).name == "web"
        with pytest.raises(LookupError):
            model.class_for(99)
