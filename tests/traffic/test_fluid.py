"""Fluid engine tests: seeding, telemetry feed, loss ledger, determinism."""

import pytest

from repro.core.policy import StaticSelector
from repro.scenarios.vultr import VultrDeployment
from repro.traffic.demand import DemandModel, FlowClass, standard_flow_classes
from repro.traffic.fluid import FluidEngine, fluid_overload_loss

GTT = 2  # NY->LA path ids: 0=NTT, 1=Telia, 2=GTT, 3=Level3


def single_class(offered_bps=9.6e9, seed=7):
    """One flow class whose equilibrium offered load is ``offered_bps``."""
    flows = offered_bps / 1e6  # 1 Mbps per flow, 1 s mean duration
    return DemandModel(
        classes=(
            FlowClass(
                name="bulk",
                flow_label=1,
                arrival_rate_per_s=flows,
                mean_size_bytes=125_000.0,
                rate_bps=1e6,
            ),
        ),
        seed=seed,
    )


def build(demand, selector=None, **engine_kwargs):
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    if selector is not None:
        deployment.set_data_policy("ny", selector)
    engine = FluidEngine(deployment, "ny", demand, **engine_kwargs)
    return deployment, engine


class TestSeedingAndObservables:
    def test_equilibrium_seeding_hits_million_flows(self):
        demand = DemandModel(classes=standard_flow_classes(1_050_000), seed=42)
        deployment, engine = build(demand)
        assert engine.concurrent_flows == 0.0
        engine.start(at_equilibrium=True)
        assert engine.concurrent_flows >= 1_000_000
        assert engine.peak_concurrent_flows >= 1_000_000
        # Buckets aggregate: a million flows is three floats.
        assert len(engine._flows) == 3
        engine.stop()

    def test_cold_start_ramps_from_zero(self):
        deployment, engine = build(single_class(1e9))
        engine.start(at_equilibrium=False)
        assert engine.concurrent_flows == 0.0
        deployment.sim.run(until=deployment.sim.now + 2.0)
        # 1 s mean duration: ~86% of equilibrium after 2 s of ramp.
        assert engine.concurrent_flows > 0.5 * engine.demand.total_equilibrium_flows(
            deployment.sim.now
        )

    def test_engine_registers_with_deployment(self):
        deployment, engine = build(single_class())
        assert deployment.traffic_engine("ny") is engine
        with pytest.raises(LookupError):
            deployment.traffic_engine("la")

    def test_utilization_observable(self):
        demand = single_class(offered_bps=9.6e9)  # GTT capacity is 8 Gbps
        deployment, engine = build(demand, selector=StaticSelector(GTT))
        engine.start()
        deployment.sim.run(until=deployment.sim.now + 1.0)
        # All load pinned on GTT: rho ~ 9.6/8 (Poisson-noise wiggle).
        assert engine.utilization(GTT) == pytest.approx(1.2, rel=0.1)
        assert engine.utilization(0) == 0.0
        load = engine.last_loads[GTT]
        assert load.label == "GTT"
        assert load.capacity_bps == 8e9
        assert load.backlog_bits > 0
        assert engine.dominant_path() == GTT


class TestTelemetryFeed:
    def test_delay_samples_reach_both_stores(self):
        deployment, engine = build(single_class(1e9), selector=StaticSelector(GTT))
        engine.start()
        start = deployment.sim.now
        deployment.sim.run(until=start + 1.0)

        offset = deployment.clock_offset_delta("ny")
        inbound = deployment.gateway_la.inbound
        outbound = deployment.gateway_ny.outbound
        for pid, base_s in ((0, 0.0364), (1, 0.0320), (3, 0.0402)):
            # Unloaded tunnels still get one sample per step at their
            # calibrated floor (+ the clock-offset distortion).
            series = inbound.series(pid)
            assert len(series.times) >= 9
            assert series.values[-1] == pytest.approx(base_s + offset, abs=2e-3)
            # The existing TelemetryMirror reported it back to the sender.
            mirrored = outbound.recent_delay(pid, 1.0, deployment.sim.now)
            assert mirrored == pytest.approx(base_s + offset, abs=2e-3)

    def test_overload_inflates_delay_and_feeds_loss_ledger(self):
        demand = single_class(offered_bps=9.6e9)
        deployment, engine = build(
            demand, selector=StaticSelector(GTT), buffer_delay_s=0.1
        )
        engine.start()
        start = deployment.sim.now
        deployment.sim.run(until=start + 2.0)

        offset = deployment.clock_offset_delta("ny")
        inbound = deployment.gateway_la.inbound
        # Backlog drove GTT's measured delay well above its 28 ms floor
        # (up to one full buffer drain = +100 ms).
        inflated = inbound.series(GTT).values[-1] - offset
        assert inflated > 0.08
        assert inflated < 0.0282 + engine.buffer_delay_s + 0.01

        # The loss ledger landed in the *sender's* tracker.
        stats = deployment.gateway_ny.tracker.stats_for(GTT)
        assert stats.presumed_lost > 0
        assert stats.received > 0
        # Cumulative loss sits between zero and the steady-state shed
        # rate (the buffer-fill transient at the start is lossless).
        steady = fluid_overload_loss(1.2)
        assert 0.5 * steady < stats.loss_fraction < 1.1 * steady

        # LossMonitor (sampled the usual way) sees fluid-mode loss.
        monitor = deployment.gateway_ny.loss_monitor
        monitor.sample(deployment.sim.now)
        assert monitor.recent_loss(GTT) == pytest.approx(
            stats.loss_fraction, rel=0.05
        )

    def test_no_load_means_no_loss_entries(self):
        deployment, engine = build(single_class(1e9), selector=StaticSelector(0))
        engine.start()
        deployment.sim.run(until=deployment.sim.now + 1.0)
        # NTT at rho ~0.08: packets delivered, nothing lost.
        stats = deployment.gateway_ny.tracker.stats_for(0)
        assert stats.received > 0
        assert stats.presumed_lost == 0
        # Tunnels that never carried load have no ledger entries at all.
        assert deployment.gateway_ny.tracker.stats_for(GTT).received == 0


class TestDeterminism:
    def run_once(self):
        demand = single_class(offered_bps=9.6e9, seed=11)
        deployment, engine = build(demand, selector=StaticSelector(GTT))
        engine.start()
        deployment.sim.run(until=deployment.sim.now + 2.0)
        return engine

    def test_identical_traces_across_fresh_runs(self):
        a = self.run_once()
        b = self.run_once()
        assert a.steps == b.steps
        assert a.split_trace == b.split_trace
        assert a.concurrency_trace == b.concurrency_trace
        assert a.peak_concurrent_flows == b.peak_concurrent_flows
        assert {p: load.loss for p, load in a.last_loads.items()} == {
            p: load.loss for p, load in b.last_loads.items()
        }

    def test_step_validation(self):
        with pytest.raises(ValueError):
            build(single_class(), step_s=0.0)
