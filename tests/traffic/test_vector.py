"""Vectorized fluid engine: seeded bit-equivalence with the scalar oracle.

The vectorized engine is only admissible because it is *bit-identical*
to the scalar closed forms, not merely close: every per-step state
vector matches to the last ulp, the telemetry ledgers are byte-for-byte
equal, and selectors fed by both engines make identical reroute
decisions.  These tests pin that contract on the shipped Vultr
scenario, including mid-run surges, blackholed links (model objects
swapped underneath the engine, the fault injector's move), and the
``engine=`` factory knob.
"""

import numpy as np
import pytest

from repro.netsim.links import ConstantLoss
from repro.scenarios.vultr import VultrDeployment
from repro.traffic.demand import DemandModel, standard_flow_classes
from repro.traffic.fluid import FluidEngine
from repro.traffic.splitting import LoadAwareWeights, WeightedSplitSelector
from repro.traffic.vector import (
    ENGINES,
    VectorFluidEngine,
    create_fluid_engine,
)

GTT = 2


def build(engine, *, flows=50_000.0, surge=True, selector_seed=9, **kwargs):
    """One seeded Vultr deployment driving the requested engine."""
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    demand = DemandModel(classes=standard_flow_classes(flows), seed=42)
    if surge:
        demand.add_surge(5.0, 10.0, 2.5)
    fluid = create_fluid_engine(
        deployment, "ny", demand, engine=engine, **kwargs
    )
    selector = WeightedSplitSelector(
        LoadAwareWeights(
            deployment.gateway_ny.outbound,
            window_s=1.0,
            utilization=fluid.utilization,
        ),
        seed=selector_seed,
    )
    deployment.set_data_policy("ny", selector)
    fluid.start()
    return deployment, fluid, selector


def assert_runs_identical(dep_s, fluid_s, dep_v, fluid_v):
    """Bit-equality of state, telemetry bytes, and loss ledgers."""
    assert fluid_s.steps == fluid_v.steps
    assert fluid_s.split_trace == fluid_v.split_trace
    assert fluid_s.concurrency_trace == fluid_v.concurrency_trace
    assert fluid_s.last_loads == fluid_v.last_loads

    store_s = dep_s.gateway_la.inbound
    store_v = dep_v.gateway_la.inbound
    assert store_s.path_ids() == store_v.path_ids()
    for pid in store_s.path_ids():
        a, b = store_s.series(pid), store_v.series(pid)
        assert a.times.tobytes() == b.times.tobytes()
        assert a.values.tobytes() == b.values.tobytes()

    tracker_s = dep_s.gateway_ny.tracker
    tracker_v = dep_v.gateway_ny.tracker
    assert tracker_s.all_paths() == tracker_v.all_paths()


class TestFactory:
    def test_engine_registry(self):
        assert ENGINES == {
            "scalar": FluidEngine,
            "vector": VectorFluidEngine,
        }

    def test_scalar_knob_builds_the_oracle(self):
        _, fluid, _ = build("scalar")
        assert type(fluid) is FluidEngine

    def test_vector_knob_builds_the_vector_engine(self):
        _, fluid, _ = build("vector")
        assert type(fluid) is VectorFluidEngine
        assert isinstance(fluid, FluidEngine)  # substitutable

    def test_unknown_engine_rejected(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        demand = DemandModel(classes=standard_flow_classes(1000.0), seed=1)
        with pytest.raises(ValueError, match="unknown fluid engine"):
            create_fluid_engine(deployment, "ny", demand, engine="simd")


class TestBitEquivalence:
    def test_surge_run_is_bit_identical(self):
        dep_s, fluid_s, _ = build("scalar")
        dep_v, fluid_v, _ = build("vector")
        dep_s.sim.run(until=dep_s.sim.now + 12.0)
        dep_v.sim.run(until=dep_v.sim.now + 12.0)
        assert fluid_v.steps > 100
        assert_runs_identical(dep_s, fluid_s, dep_v, fluid_v)

    def test_lockstep_per_step_state(self):
        # Step the two simulators alternately and compare the full load
        # state after every engine step — any divergence is caught at
        # the step it first appears, within 1e-9 and in fact exactly.
        dep_s, fluid_s, _ = build("scalar")
        dep_v, fluid_v, _ = build("vector")
        step = fluid_s.step_s
        for i in range(60):
            until = (i + 1) * step + step / 2
            dep_s.sim.run(until=until)
            dep_v.sim.run(until=until)
            assert fluid_s.steps == fluid_v.steps
            loads_s, loads_v = fluid_s.last_loads, fluid_v.last_loads
            assert sorted(loads_s) == sorted(loads_v)
            for pid, load_s in loads_s.items():
                load_v = loads_v[pid]
                for field in (
                    "offered_bps",
                    "utilization",
                    "backlog_bits",
                    "delay_s",
                    "loss",
                ):
                    a = getattr(load_s, field)
                    b = getattr(load_v, field)
                    assert a == pytest.approx(b, abs=1e-9)
                    assert a == b  # and in fact bit-identical

    def test_blackholed_link_swap_is_bit_identical(self):
        # The fault injector replaces link model *objects* mid-run; the
        # vector engine must notice the identity change and reproduce
        # the scalar blackhole path (no telemetry, full ledger loss).
        runs = []
        for engine in ("scalar", "vector"):
            dep, fluid, _ = build(engine, surge=False)
            link = dep.wan_link("ny", fluid.tunnels[GTT].short_label)
            dep.sim.schedule_at(2.5, lambda li=link: setattr(
                li, "loss", ConstantLoss(1.0)
            ))
            dep.sim.run(until=dep.sim.now + 6.0)
            runs.append((dep, fluid))
        (dep_s, fluid_s), (dep_v, fluid_v) = runs
        assert_runs_identical(dep_s, fluid_s, dep_v, fluid_v)
        # The blackholed path really stopped producing telemetry...
        gtt_pid = fluid_s.tunnels[GTT].path_id
        times = dep_v.gateway_la.inbound.series(gtt_pid).times
        assert times.size and float(times[-1]) < 2.7
        # ...and its ledger kept counting losses.
        assert dep_v.gateway_ny.tracker.stats_for(gtt_pid).presumed_lost > 0

    def test_reroute_decisions_identical_under_surge(self):
        # The E16 acceptance condition under the new engine: the
        # load-aware selector sees identical telemetry, so its split
        # history — the reroute decisions — must match exactly.
        dep_s, fluid_s, sel_s = build("scalar", flows=100_000.0)
        dep_v, fluid_v, sel_v = build("vector", flows=100_000.0)
        dep_s.sim.run(until=dep_s.sim.now + 12.0)
        dep_v.sim.run(until=dep_v.sim.now + 12.0)
        assert fluid_s.split_trace == fluid_v.split_trace
        assert sel_s.uniform_fallbacks == sel_v.uniform_fallbacks
        assert sel_s.split_counts == sel_v.split_counts
        # The surge actually moved traffic (the trace is non-trivial).
        splits = {
            max(split, key=split.get) for _, split in fluid_s.split_trace
        }
        assert splits


class TestVectorState:
    def test_last_loads_rebuilt_lazily(self):
        dep, fluid, _ = build("vector", surge=False)
        dep.sim.run(until=dep.sim.now + 1.0)
        loads = fluid.last_loads
        assert loads and all(
            isinstance(v, type(next(iter(loads.values())))) for v in loads.values()
        )
        for load in loads.values():
            for field in ("offered_bps", "utilization", "delay_s", "loss"):
                assert isinstance(getattr(load, field), float)
        # Cached: same object until the next step invalidates it.
        assert fluid.last_loads is loads

    def test_utilization_matches_scalar(self):
        dep_s, fluid_s, _ = build("scalar", surge=False)
        dep_v, fluid_v, _ = build("vector", surge=False)
        dep_s.sim.run(until=dep_s.sim.now + 2.0)
        dep_v.sim.run(until=dep_v.sim.now + 2.0)
        for tunnel in fluid_s.tunnels:
            assert fluid_s.utilization(tunnel.path_id) == fluid_v.utilization(
                tunnel.path_id
            )

    def test_state_vectors_are_float64(self):
        _, fluid, _ = build("vector", surge=False)
        assert fluid._cap_vec.dtype == np.float64
        assert fluid._backlog_vec.dtype == np.float64
        assert fluid._service_vec.dtype == np.float64
