"""End-to-end: UNMODIFIED selectors and quarantine reroute around
fluid-mode congestion.

The acceptance bar for the traffic subsystem: the existing policy stack
(LowestDelaySelector, HysteresisSelector, LossAwareSelector,
QuarantinePolicy/GuardedSelector) must work on fluid telemetry without
any code changes — congestion the fluid engine creates shows up as
inflated delay samples and loss-ledger entries through the exact same
stores the packet path fills, and the policies route around it.
"""

import pytest

from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.policy import (
    HysteresisSelector,
    LossAwareSelector,
    LowestDelaySelector,
    StaticSelector,
)
from repro.scenarios.vultr import VultrDeployment
from repro.traffic.demand import DemandModel, FlowClass
from repro.traffic.fluid import FluidEngine

NTT, TELIA, GTT, LEVEL3 = 0, 1, 2, 3


def overload_demand(offered_bps=9.6e9, seed=17):
    """One bulk class: overloads GTT (8 Gbps), fits on NTT/Telia."""
    return DemandModel(
        classes=(
            FlowClass(
                name="bulk",
                flow_label=1,
                arrival_rate_per_s=offered_bps / 1e6,
                mean_size_bytes=125_000.0,
                rate_bps=1e6,
            ),
        ),
        seed=seed,
    )


def launch(selector, *, buffer_delay_s=0.1, controller_kwargs=None):
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.set_data_policy("ny", selector)
    engine = FluidEngine(
        deployment, "ny", overload_demand(), buffer_delay_s=buffer_delay_s
    )
    controller = None
    if controller_kwargs is not None:
        controller = TangoController(
            deployment.gateway_ny,
            deployment.sim,
            interval_s=0.1,
            **controller_kwargs,
        )
        deployment.attach_controller("ny", controller)
        controller.start()
    engine.start()
    return deployment, engine, controller


def dominance(engine):
    """(time, dominant_path_id) per engine step."""
    return [
        (t, max(sorted(split), key=lambda pid: split[pid]))
        for t, split in engine.split_trace
    ]


def assert_found_then_abandoned(engine, deployment, congested=GTT):
    """The selector chose the congested path, congestion inflated its
    measured delay, and traffic later moved off it."""
    picks = dominance(engine)
    on = [t for t, pid in picks if pid == congested]
    assert on, "selector never tried the lowest-delay (congested) path"
    first_on = on[0]
    off_after = [t for t, pid in picks if t > first_on and pid != congested]
    assert off_after, "selector never rerouted off the congested path"

    offset = deployment.clock_offset_delta("ny")
    measured = deployment.gateway_la.inbound.series(congested)
    inflated = max(measured.values) - offset
    assert inflated > 0.060, f"congestion never visible: max {inflated:.3f}s"
    return first_on, off_after[0]


class TestLowestDelayReroute:
    def test_reroutes_off_congested_path(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        selector = LowestDelaySelector(
            deployment.gateway_ny.outbound, window_s=0.5
        )
        deployment.set_data_policy("ny", selector)
        engine = FluidEngine(deployment, "ny", overload_demand())
        engine.start()
        deployment.sim.run(until=deployment.sim.now + 5.0)

        found_at, left_at = assert_found_then_abandoned(engine, deployment)
        assert left_at > found_at
        assert selector.switches >= 2  # found GTT, then fled it
        # The escape target can absorb the load: NTT or Telia.
        final = dominance(engine)
        escapes = {pid for t, pid in final if t > left_at}
        assert escapes & {NTT, TELIA}


class TestHysteresisReroute:
    def test_dwell_limits_flapping(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        selector = HysteresisSelector(
            deployment.gateway_ny.outbound,
            window_s=0.5,
            margin_s=0.002,
            dwell_s=1.0,
        )
        deployment.set_data_policy("ny", selector)
        engine = FluidEngine(deployment, "ny", overload_demand())
        engine.start()
        deployment.sim.run(until=deployment.sim.now + 6.0)

        assert_found_then_abandoned(engine, deployment)
        # Dwell bounds the churn: switches at least 1 s apart.
        picks = dominance(engine)
        changes = [
            t
            for (t, pid), (_, prev) in zip(picks[1:], picks[:-1])
            if pid != prev
        ]
        assert changes, "hysteresis selector never switched"
        gaps = [b - a for a, b in zip(changes, changes[1:])]
        assert all(gap >= 1.0 - 0.11 for gap in gaps)
        # An unbounded greedy policy would flap every drain cycle; the
        # dwell caps it at ~1 switch per second.
        assert len(changes) <= 7


class TestLossAwareReroute:
    def test_loss_alone_drives_the_reroute(self):
        # A tiny bottleneck buffer (2 ms) keeps GTT's inflated delay
        # (~30 ms) below Telia's floor (32 ms): on delay alone the
        # selector would sit on GTT forever.  Only the fluid loss ledger
        # — overload shedding 1 - 1/rho — makes it leave.
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        gateway = deployment.gateway_ny
        selector = LossAwareSelector(
            gateway.outbound,
            gateway.loss_monitor,
            window_s=0.5,
            loss_penalty_s=1.0,
        )
        deployment.set_data_policy("ny", selector)
        engine = FluidEngine(
            deployment, "ny", overload_demand(), buffer_delay_s=0.002
        )
        controller = TangoController(gateway, deployment.sim, interval_s=0.1)
        deployment.attach_controller("ny", controller)
        controller.start()  # samples the loss monitor each tick
        engine.start()
        deployment.sim.run(until=deployment.sim.now + 5.0)
        controller.stop()

        picks = dominance(engine)
        on_gtt = [t for t, pid in picks if pid == GTT]
        assert on_gtt, "never tried GTT"
        off_after = [t for t, pid in picks if t > on_gtt[0] and pid != GTT]
        assert off_after, "loss penalty never moved traffic off GTT"
        # Loss really flowed through the ledger...
        stats = gateway.tracker.stats_for(GTT)
        assert stats.presumed_lost > 0
        # ...while delay stayed un-actionable (below Telia's floor).
        offset = deployment.clock_offset_delta("ny")
        gtt_max = max(deployment.gateway_la.inbound.series(GTT).values)
        telia_min = min(deployment.gateway_la.inbound.series(TELIA).values)
        assert gtt_max - offset < telia_min - offset


class TestQuarantineReroute:
    def test_quarantine_evicts_congested_path(self):
        # Data plane pinned to GTT (index 2): only the controller's
        # quarantine machinery — via the unmodified GuardedSelector —
        # can move traffic.
        deployment, engine, controller = launch(
            StaticSelector(2),
            buffer_delay_s=0.002,
            controller_kwargs={
                "quarantine": QuarantinePolicy(
                    loss_threshold=0.05, unhealthy_ticks=2
                )
            },
        )
        deployment.sim.run(until=deployment.sim.now + 3.0)
        controller.stop()

        quarantines = [
            e for e in controller.quarantine_log if e.action == "quarantine"
        ]
        assert quarantines, "lossy path never quarantined"
        first = quarantines[0]
        assert first.path_id == GTT
        assert first.cause == "loss"

        # While quarantined, the guarded static policy degrades to the
        # surviving candidate set — traffic leaves GTT.
        probations = [
            e.t
            for e in controller.quarantine_log
            if e.action == "probation" and e.path_id == GTT
        ]
        window_end = probations[0] if probations else float("inf")
        during = [
            pid for t, pid in dominance(engine) if first.t < t <= window_end
        ]
        assert during, "no engine steps inside the quarantine window"
        assert GTT not in during
        assert engine.utilization(GTT) == 0.0 or during[-1] != GTT

    def test_quarantine_policy_validation_unchanged(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(loss_threshold=1.5)
