"""E18 correlated campaign: plan purity, determinism, gates, retries."""

import json
import os

import pytest

import repro.campaign.runner as runner_module
from repro.campaign.plans import CORRELATED_ARCHETYPES, generate_correlated_plans
from repro.campaign.runner import (
    CorrelatedConfig,
    _apply_correlated_gates,
    run_correlated_campaign,
)


class TestPlanGeneration:
    def test_plans_are_pure_functions_of_seed_and_index(self):
        short = generate_correlated_plans(4, 2026)
        long = generate_correlated_plans(8, 2026)
        assert [p.plan.to_json() for p in short] == [
            p.plan.to_json() for p in long[:4]
        ]

    def test_archetypes_cycle(self):
        plans = generate_correlated_plans(8, 7)
        assert [p.archetype for p in plans[:4]] == list(CORRELATED_ARCHETYPES)
        assert plans[4].archetype == CORRELATED_ARCHETYPES[0]

    def test_names_encode_index_and_archetype(self):
        plans = generate_correlated_plans(2, 7)
        assert plans[0].plan.name == "corr-000-shared_srlg"
        assert plans[1].plan.name == "corr-001-two_group"

    def test_decorrelated_from_e17_namespace(self):
        from repro.campaign.plans import generate_adversarial_plans

        corr = generate_correlated_plans(1, 2026)[0]
        adv = generate_adversarial_plans(1, 2026)[0]
        assert corr.plan.seed != adv.plan.seed

    def test_two_group_events_overlap(self):
        plans = generate_correlated_plans(16, 11)
        for adv in plans:
            if adv.archetype != "two_group":
                continue
            first, second = adv.plan.events
            assert first.at < second.at < first.end

    def test_population_lints_clean_against_vultr(self):
        from repro.lint.plans import check_fault_plan, vultr_spec

        spec = vultr_spec()
        for adv in generate_correlated_plans(8, 2026):
            assert check_fault_plan(adv.plan, spec) == []

    def test_count_validated(self):
        with pytest.raises(ValueError):
            generate_correlated_plans(0, 1)


class TestGates:
    BASELINE = {"median_ms": 0.1}

    def row(self, **overrides):
        defended = {
            "median_ms": 0.0,
            "availability": 0.99,
            "switchover_s": 0.1,
            "failed_srlg_ticks": 0,
            "frr_switchovers": 1,
        }
        undefended = {"failed_srlg_ticks": 5}
        for key, value in overrides.items():
            side, _, field = key.partition("__")
            (defended if side == "defended" else undefended)[field] = value
        return {
            "name": "corr-000-shared_srlg",
            "archetype": "shared_srlg",
            "defended": defended,
            "undefended": undefended,
        }

    def test_clean_row_passes(self):
        gates, failures = _apply_correlated_gates(
            [self.row()], self.BASELINE, CorrelatedConfig()
        )
        assert failures == []
        assert gates["switchover_budget_s"] == pytest.approx(1.0)

    def test_slow_switchover_fails(self):
        _, failures = _apply_correlated_gates(
            [self.row(defended__switchover_s=2.5)],
            self.BASELINE,
            CorrelatedConfig(),
        )
        assert any("switchover" in f for f in failures)

    def test_traffic_on_failed_group_fails(self):
        _, failures = _apply_correlated_gates(
            [self.row(defended__failed_srlg_ticks=3)],
            self.BASELINE,
            CorrelatedConfig(),
        )
        assert any("failed risk group" in f for f in failures)

    def test_two_group_rows_use_stricter_slo(self):
        row = self.row(defended__availability=0.91)
        row["archetype"] = "two_group"
        _, failures = _apply_correlated_gates(
            [row], self.BASELINE, CorrelatedConfig()
        )
        assert failures == []  # 0.91 >= the 0.9 two-group SLO
        row = self.row(defended__availability=0.85)
        row["archetype"] = "two_group"
        _, failures = _apply_correlated_gates(
            [row], self.BASELINE, CorrelatedConfig()
        )
        assert any("availability" in f for f in failures)

    def test_undemonstrated_fault_fails(self):
        _, failures = _apply_correlated_gates(
            [self.row(undefended__failed_srlg_ticks=0)],
            self.BASELINE,
            CorrelatedConfig(),
        )
        assert any("not demonstrated" in f for f in failures)


class TestEndToEnd:
    """One small real E18 campaign, sharded two ways."""

    @pytest.fixture(scope="class")
    def reports(self):
        one = run_correlated_campaign(2, master_seed=2026, workers=1)
        two = run_correlated_campaign(2, master_seed=2026, workers=2)
        return one, two

    def test_gates_pass(self, reports):
        one, _ = reports
        assert one.failures == []
        assert one.passed

    def test_shard_merge_byte_identical(self, reports):
        one, two = reports
        assert one.to_json() == two.to_json()

    def test_report_shape(self, reports):
        one, _ = reports
        payload = json.loads(one.to_json())
        assert payload["experiment"] == "E18"
        assert payload["shard_retries"] == 0
        assert [row["index"] for row in payload["results"]] == [0, 1]

    def test_defended_rows_show_the_defense_working(self, reports):
        one, _ = reports
        for row in one.results:
            assert row["defended"]["failed_srlg_ticks"] == 0
            assert row["defended"]["switchover_s"] <= 1.0
            assert row["defended"]["fate_filtered"] > 0
            assert row["undefended"]["failed_srlg_ticks"] > 0


class TestShardRetry:
    def test_dead_worker_shard_retried_in_process(self, monkeypatch):
        parent = os.getpid()

        def crash(index):
            # Only kill forked workers, never the test process itself.
            if index == 0 and os.getpid() != parent:
                os._exit(1)

        monkeypatch.setattr(runner_module, "_shard_crash_hook", crash)
        crashed = run_correlated_campaign(2, master_seed=2026, workers=2)
        monkeypatch.setattr(runner_module, "_shard_crash_hook", None)
        clean = run_correlated_campaign(2, master_seed=2026, workers=2)

        assert crashed.shard_retries >= 1
        # The retried shard reproduced the dead worker's rows exactly.
        assert crashed.results == clean.results
        assert crashed.gates == clean.gates
        assert crashed.passed

    def test_single_worker_path_never_retries(self):
        report = run_correlated_campaign(1, master_seed=2026, workers=1)
        assert report.shard_retries == 0
