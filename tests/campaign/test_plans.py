"""Unit tests: adversarial plan generation determinism and validity."""

import pytest

from repro.campaign.plans import (
    ARCHETYPES,
    AdversarialPlan,
    _BASE_MS,
    generate_adversarial_plans,
)
from repro.faults.plan import FAULT_KINDS
from repro.lint.plans import check_fault_plan, vultr_spec


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = generate_adversarial_plans(10, master_seed=99)
        b = generate_adversarial_plans(10, master_seed=99)
        assert [p.plan.to_json() for p in a] == [p.plan.to_json() for p in b]

    def test_plan_i_is_independent_of_count(self):
        """Plan i is a pure function of (master_seed, i): growing the
        population must not reshuffle the prefix."""
        small = generate_adversarial_plans(5, master_seed=7)
        large = generate_adversarial_plans(15, master_seed=7)
        assert [p.plan.to_json() for p in small] == [
            p.plan.to_json() for p in large[:5]
        ]

    def test_different_seeds_differ(self):
        a = generate_adversarial_plans(5, master_seed=1)
        b = generate_adversarial_plans(5, master_seed=2)
        assert [p.plan.to_json() for p in a] != [p.plan.to_json() for p in b]


class TestPopulationShape:
    def test_archetypes_interleave(self):
        plans = generate_adversarial_plans(10, master_seed=3)
        assert tuple(p.archetype for p in plans[:5]) == ARCHETYPES
        assert tuple(p.archetype for p in plans[5:]) == ARCHETYPES

    def test_count_validated(self):
        with pytest.raises(ValueError):
            generate_adversarial_plans(0, master_seed=1)

    def test_all_plans_use_known_kinds(self):
        for adv in generate_adversarial_plans(20, master_seed=5):
            for event in adv.plan.events:
                assert event.kind in FAULT_KINDS

    def test_all_plans_pass_tng105(self):
        """Every generated plan must validate clean against the Vultr
        scenario — the campaign must never arm an invalid plan."""
        spec = vultr_spec()
        for adv in generate_adversarial_plans(20, master_seed=8):
            assert check_fault_plan(adv.plan, spec) == []

    def test_tamper_bias_exceeds_gap_to_best(self):
        """A favored tamper must make its path *appear* best, so the
        bias must exceed the true gap to the best path."""
        for adv in generate_adversarial_plans(20, master_seed=11):
            if adv.archetype != "favored_tamper":
                continue
            event = adv.plan.events[0]
            assert adv.favored == event.params["path"]
            gap = _BASE_MS[adv.favored] - _BASE_MS["GTT"]
            assert event.params["bias_ms"] > gap

    def test_base_delays_match_vultr_calibration(self):
        """The generator's embedded base-delay table must track the
        scenario it attacks."""
        from repro.scenarios.vultr import NY_TO_LA_PATHS

        for label, base_ms in _BASE_MS.items():
            assert NY_TO_LA_PATHS[label].base_ms == base_ms


class TestPayloadRoundTrip:
    def test_to_from_payload(self):
        adv = generate_adversarial_plans(5, master_seed=13)[0]
        back = AdversarialPlan.from_payload(adv.to_payload())
        assert back.index == adv.index
        assert back.archetype == adv.archetype
        assert back.favored == adv.favored
        assert back.plan.to_json() == adv.plan.to_json()
