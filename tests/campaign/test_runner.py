"""Campaign runner: metric units, shard-merge determinism, E17 gating."""

import json

import pytest

from repro.campaign.plans import AdversarialPlan, generate_adversarial_plans
from repro.campaign.runner import (
    CampaignConfig,
    _apply_gates,
    _regret_ms,
    _steered_s,
    _unusable_windows,
    run_campaign,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.telemetry.store import TimeSeries


class FakeController:
    def __init__(self, choices, interval_s=0.1):
        self.interval_s = interval_s
        self.choice_trace = TimeSeries()
        for t, v in choices:
            self.choice_trace.append(t, float(v))


class FlatModel:
    def __init__(self, delay_s):
        self._delay = delay_s

    def delay_at(self, t):
        return self._delay


def adv_for(events, archetype="favored_tamper", favored=None):
    return AdversarialPlan(
        index=0,
        archetype=archetype,
        favored=favored,
        plan=FaultPlan(name="t", seed=1, events=tuple(events)),
    )


class TestUnusableWindows:
    def test_blackhole_bounded_gray_loss_open_ended(self):
        adv = adv_for(
            [
                FaultEvent(
                    "link_blackhole",
                    at=3.0,
                    duration=2.0,
                    params={"src": "ny", "path": "GTT"},
                ),
                FaultEvent(
                    "gray_loss",
                    at=4.0,
                    duration=2.0,
                    params={"src": "ny", "path": "Telia", "rate": 0.3},
                ),
            ],
            archetype="blackhole",
        )
        windows = _unusable_windows(adv, horizon_s=14.0)
        assert ("GTT", 3.0, 5.0) in windows
        assert ("Telia", 4.0, 14.0) in windows

    def test_tamper_does_not_mark_unusable(self):
        adv = adv_for(
            [
                FaultEvent(
                    "telemetry_tamper",
                    at=3.0,
                    duration=2.0,
                    params={"src": "ny", "path": "NTT", "bias_ms": 12.0},
                )
            ]
        )
        assert _unusable_windows(adv, 14.0) == []


class TestRegret:
    MODELS = {0: FlatModel(0.036), 1: FlatModel(0.032), 2: FlatModel(0.028)}
    LABELS = {0: "NTT", 1: "Telia", 2: "GTT"}

    def test_best_path_has_zero_regret(self):
        controller = FakeController([(2.0, 2), (3.0, 2)])
        out = _regret_ms(
            controller, self.MODELS, self.LABELS, [], CampaignConfig()
        )
        assert out["median_ms"] == 0.0
        assert out["ticks"] == 2

    def test_worse_path_charged_the_gap(self):
        controller = FakeController([(2.0, 1)])
        out = _regret_ms(
            controller, self.MODELS, self.LABELS, [], CampaignConfig()
        )
        assert out["median_ms"] == pytest.approx(4.0)

    def test_warmup_and_no_choice_skipped(self):
        config = CampaignConfig()
        controller = FakeController([(0.5, 1), (2.0, -1)])
        out = _regret_ms(controller, self.MODELS, self.LABELS, [], config)
        assert out["ticks"] == 0
        assert out["median_ms"] is None

    def test_rerouting_off_unusable_path_is_not_regret(self):
        """While GTT is blackholed, riding Telia is optimal — zero
        regret; riding the dead path itself draws the penalty."""
        config = CampaignConfig()
        unusable = [("GTT", 3.0, 6.0)]
        on_telia = FakeController([(4.0, 1)])
        out = _regret_ms(on_telia, self.MODELS, self.LABELS, unusable, config)
        assert out["median_ms"] == 0.0
        on_dead = FakeController([(4.0, 2)])
        out = _regret_ms(on_dead, self.MODELS, self.LABELS, unusable, config)
        assert out["median_ms"] == config.unusable_penalty_ms


class TestSteered:
    def test_longest_contiguous_run(self):
        choices = [(3.0, 0), (3.1, 0), (3.2, 2), (3.3, 0), (3.4, 0), (3.5, 0)]
        controller = FakeController(choices)
        assert _steered_s(controller, 0, (3.0, 4.0)) == pytest.approx(0.3)

    def test_outside_window_ignored(self):
        controller = FakeController([(1.0, 0), (1.1, 0)])
        assert _steered_s(controller, 0, (3.0, 4.0)) == 0.0


class TestGates:
    BASELINE = {"median_ms": 0.0, "availability": 0.997}

    def row(self, **overrides):
        row = {
            "index": 0,
            "name": "adv-000-favored_tamper",
            "archetype": "favored_tamper",
            "favored": "NTT",
            "defended": {
                "median_ms": 0.0,
                "availability": 0.99,
                "steered_s": 0.0,
                "mttr_s": None,
            },
            "undefended": {"median_ms": 5.0, "steered_s": 4.0},
        }
        for key, value in overrides.items():
            section, _, field = key.partition("__")
            row[section][field] = value
        return row

    def test_clean_row_passes(self):
        gates, failures = _apply_gates(
            [self.row()], self.BASELINE, CampaignConfig()
        )
        assert failures == []
        assert gates["regret_budget_ms"] == 1.0  # the noise floor

    def test_regret_breach_fails(self):
        _, failures = _apply_gates(
            [self.row(defended__median_ms=3.0)],
            self.BASELINE,
            CampaignConfig(),
        )
        assert any("regret" in f for f in failures)

    def test_defended_steering_breach_fails(self):
        _, failures = _apply_gates(
            [self.row(defended__steered_s=1.5)],
            self.BASELINE,
            CampaignConfig(),
        )
        assert any("tampered-favored" in f for f in failures)

    def test_undemonstrated_attack_fails(self):
        _, failures = _apply_gates(
            [self.row(undefended__steered_s=0.5)],
            self.BASELINE,
            CampaignConfig(),
        )
        assert any("not demonstrated" in f for f in failures)

    def test_availability_breach_fails(self):
        _, failures = _apply_gates(
            [self.row(defended__availability=0.5)],
            self.BASELINE,
            CampaignConfig(),
        )
        assert any("availability" in f for f in failures)

    def test_mttr_breach_fails(self):
        _, failures = _apply_gates(
            [self.row(defended__mttr_s=5.0)], self.BASELINE, CampaignConfig()
        )
        assert any("MTTR" in f for f in failures)


class TestEndToEnd:
    """One small real campaign, sharded two ways — the expensive part of
    this module (two tamper/replay pairs plus baselines)."""

    @pytest.fixture(scope="class")
    def reports(self):
        one = run_campaign(2, master_seed=2026, workers=1)
        two = run_campaign(2, master_seed=2026, workers=2)
        return one, two

    def test_gates_pass(self, reports):
        one, _ = reports
        assert one.failures == []
        assert one.passed

    def test_shard_merge_byte_identical(self, reports):
        one, two = reports
        assert one.to_json() == two.to_json()

    def test_report_is_stable_json(self, reports):
        one, _ = reports
        payload = json.loads(one.to_json())
        assert payload["experiment"] == "E17"
        assert payload["plans"] == 2
        assert [row["index"] for row in payload["results"]] == [0, 1]
        # No wall-clock anywhere: serializing twice is identical.
        assert one.to_json() == one.to_json()

    def test_defended_row_carries_defense_counters(self, reports):
        one, _ = reports
        tamper = one.results[0]
        assert tamper["archetype"] == "favored_tamper"
        assert tamper["defended"]["dataplane_rejected"] > 0
        assert tamper["defended"]["steered_s"] <= 1.0
        assert tamper["undefended"]["steered_s"] >= 3.0
