"""The whole-program flow pass: call graph, taint, fork safety, cache.

Fixtures are miniature packages written to ``tmp_path`` — each test
builds the smallest project exhibiting one cross-module property the
per-file rules cannot see.
"""

import io
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.engine import LintEngine
from repro.lint.flow import (
    FlowAnalyzer,
    ProjectGraph,
    SummaryCache,
    extract_module,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src" / "repro")


def write_project(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "proj"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text(files.pop("__init__.py", ""))
    for name, source in files.items():
        target = root / name
        target.parent.mkdir(parents=True, exist_ok=True)
        if target.parent != root and not (target.parent / "__init__.py").exists():
            (target.parent / "__init__.py").write_text("")
        target.write_text(source)
    return root


def analyze(root: Path, cache_dir=None):
    files = list(LintEngine.iter_python_files([str(root)]))
    cache = SummaryCache(str(cache_dir) if cache_dir else None)
    return FlowAnalyzer(cache).run(files)


def codes(result):
    return sorted(f.code for f in result.findings)


class TestExtraction:
    def test_module_name_walks_packages(self, tmp_path):
        root = write_project(tmp_path, {"sub/leaf.py": "x = 1\n"})
        assert module_name_for(str(root / "sub" / "leaf.py")) == "proj.sub.leaf"
        assert module_name_for(str(root / "__init__.py")) == "proj"

    def test_deps_and_exports(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "__init__.py": "from .clock import stamp\n",
                "clock.py": "import time\n\ndef stamp():\n    return time.time()\n",
            },
        )
        summary = extract_module(str(root / "__init__.py"))
        assert "proj.clock" in summary.deps
        assert summary.exports["stamp"] == "proj.clock.stamp"

    def test_noqa_in_docstring_is_not_inventory(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "doc.py": (
                    '"""Shows the syntax: # tango: noqa[TNG001]."""\n'
                    "x = 1  # tango: noqa[TNG001]\n"
                ),
            },
        )
        summary = extract_module(str(root / "doc.py"))
        assert list(summary.noqa) == [2]


class TestCallGraph:
    def build(self, tmp_path, files):
        root = write_project(tmp_path, files)
        paths = LintEngine.iter_python_files([str(root)])
        return ProjectGraph(extract_module(p) for p in paths)

    def test_resolve_through_reexport_facade(self, tmp_path):
        graph = self.build(
            tmp_path,
            {
                "__init__.py": "from .clock import stamp\n",
                "clock.py": "def stamp():\n    return 0\n",
            },
        )
        assert graph.resolve("proj.stamp") == ("func", "proj.clock.stamp")
        assert graph.resolve("proj.clock.stamp") == ("func", "proj.clock.stamp")
        assert graph.resolve("os.path.join") is None

    def test_import_cycle_does_not_diverge(self, tmp_path):
        graph = self.build(
            tmp_path,
            {
                "a.py": "from proj import b\n\ndef fa():\n    return b.fb()\n",
                "b.py": "def fb():\n    from proj import a\n    return 0\n",
            },
        )
        dirty = graph.invalidated_by(["proj.a"])
        assert {"proj.a", "proj.b"} <= dirty

    def test_invalidation_covers_transitive_importers(self, tmp_path):
        graph = self.build(
            tmp_path,
            {
                "leaf.py": "X = 1\n",
                "mid.py": "from proj.leaf import X\n",
                "top.py": "from proj.mid import X\n",
                "other.py": "Y = 2\n",
            },
        )
        dirty = graph.invalidated_by(["proj.leaf"])
        assert {"proj.leaf", "proj.mid", "proj.top"} <= dirty
        assert "proj.other" not in dirty


class TestDeterminismTaint:
    def test_wallclock_through_helper_chain(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "clock.py": (
                    "import time\n\n\ndef stamp():\n    return time.time()\n"
                ),
                "engine.py": (
                    "from proj.clock import stamp\n\n\n"
                    "def drive(sim):\n"
                    "    sim.schedule_at(stamp(), None)\n"
                ),
            },
        )
        result = analyze(root)
        assert codes(result) == ["TNG201"]
        finding = result.findings[0]
        assert finding.path.endswith("engine.py")
        assert "time.time" in finding.message
        assert "schedule_at" in finding.message
        assert "->" in finding.message  # the full source→sink chain

    def test_taint_through_default_argument(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "jit.py": (
                    "import time\n\n\n"
                    "def jitter(delay=time.time()):\n"
                    "    return delay\n\n\n"
                    "def drive(sim):\n"
                    "    sim.schedule_at(jitter(), None)\n"
                ),
            },
        )
        result = analyze(root)
        assert "TNG201" in codes(result)

    def test_unseeded_rng_leak_across_modules(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "randsrc.py": (
                    "import numpy as np\n\n"
                    "GEN = np.random.default_rng()\n\n\n"
                    "def draw():\n    return GEN.uniform()\n"
                ),
                "consume.py": (
                    "from proj.randsrc import draw\n\n\n"
                    "def feed(store):\n    store.record(draw())\n"
                ),
            },
        )
        result = analyze(root)
        got = codes(result)
        assert "TNG202" in got  # the module-global generator itself
        assert "TNG201" in got  # its draw reaching the telemetry store
        leak = [f for f in result.findings if f.code == "TNG201"][0]
        assert leak.path.endswith("consume.py")
        assert "unseeded" in leak.message

    def test_method_dispatch_on_instance(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "disp.py": (
                    "import time\n\n\n"
                    "class Clock:\n"
                    "    def now(self):\n"
                    "        return time.time()\n\n\n"
                    "def use(sim):\n"
                    "    c = Clock()\n"
                    "    sim.schedule_at(c.now(), None)\n"
                ),
            },
        )
        result = analyze(root)
        assert "TNG201" in codes(result)

    def test_wallclock_in_report_output(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "rep.py": (
                    "import json\nimport time\n\n\n"
                    "def report():\n"
                    '    payload = {"t": time.time()}\n'
                    "    return json.dumps(payload)\n"
                ),
            },
        )
        result = analyze(root)
        assert codes(result) == ["TNG203"]
        assert "replay-compared output" in result.findings[0].message

    def test_seeded_rng_draw_is_clean(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "ok.py": (
                    "import numpy as np\n\n\n"
                    "def drive(sim, seed):\n"
                    "    rng = np.random.default_rng(seed)\n"
                    "    sim.schedule_at(rng.uniform(), None)\n"
                ),
            },
        )
        assert codes(analyze(root)) == []


FORK_FIXTURE = {
    "work.py": (
        "import numpy as np\n\n"
        "_registry = {}\n\n\n"
        "def work(args):\n"
        '    scale = _registry.get("scale", 1.0)\n'
        "    rng = np.random.default_rng(42)\n"
        "    return rng.uniform() * scale\n"
    ),
    "launch.py": (
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "import numpy as np\n\n"
        "from proj.work import work\n\n\n"
        "def launch(payloads):\n"
        "    rng = np.random.default_rng(123)\n"
        "    pool = ProcessPoolExecutor(2)\n"
        "    return pool.submit(work, (payloads, rng))\n"
    ),
}


class TestForkSafety:
    def test_fork_fixture_trips_all_three_rules(self, tmp_path):
        root = write_project(tmp_path, dict(FORK_FIXTURE))
        result = analyze(root)
        got = codes(result)
        assert "TNG301" in got  # _registry read from worker
        assert "TNG302" in got  # rng shipped in submit args
        assert "TNG303" in got  # default_rng(42) inside the worker
        by_code = {f.code: f for f in result.findings}
        assert by_code["TNG301"].path.endswith("launch.py")
        assert "_registry" in by_code["TNG301"].message
        assert "fork boundary" in by_code["TNG301"].message
        assert "RNG" in by_code["TNG302"].message
        assert "SeedSequence" in by_code["TNG303"].message

    def test_fork_findings_are_suppressible(self, tmp_path):
        files = dict(FORK_FIXTURE)
        files["launch.py"] = files["launch.py"].replace(
            "    return pool.submit(work, (payloads, rng))",
            "    return pool.submit(work, (payloads, rng))"
            "  # tango: noqa[TNG301,TNG302,TNG303]",
        )
        root = write_project(tmp_path, files)
        result = analyze(root)
        assert codes(result) == []
        launch = [p for p in result.used if p.endswith("launch.py")][0]
        assert set().union(*result.used[launch].values()) == {
            "TNG301",
            "TNG302",
            "TNG303",
        }

    def test_entry_resolved_through_param_passing(self, tmp_path):
        # run() forwards the worker through an _execute-style helper, so
        # the fork site only resolves interprocedurally.
        root = write_project(
            tmp_path,
            {
                "w.py": (
                    "_state = []\n\n\n"
                    "def work(args):\n    return len(_state)\n"
                ),
                "exe.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n\n\n"
                    "def execute(worker, payloads):\n"
                    "    pool = ProcessPoolExecutor(2)\n"
                    "    return [pool.submit(worker, p) for p in payloads]\n"
                ),
                "run.py": (
                    "from proj.exe import execute\n"
                    "from proj.w import work\n\n\n"
                    "def run(payloads):\n"
                    "    return execute(work, payloads)\n"
                ),
            },
        )
        result = analyze(root)
        trips = [f for f in result.findings if f.code == "TNG301"]
        assert trips, codes(result)
        assert trips[0].path.endswith("run.py")
        assert "_state" in trips[0].message


class TestCacheIncrementality:
    def test_warm_run_reanalyzes_nothing(self, tmp_path):
        root = write_project(tmp_path, dict(FORK_FIXTURE))
        cache = tmp_path / "cache"
        first = analyze(root, cache_dir=cache)
        assert sorted(first.analyzed) == [
            "proj",
            "proj.launch",
            "proj.work",
        ]
        second = analyze(root, cache_dir=cache)
        assert second.analyzed == []
        assert sorted(second.cached) == sorted(first.analyzed)
        # cached findings survive byte-identically
        assert [f.render() for f in second.findings] == [
            f.render() for f in first.findings
        ]

    def test_edit_dirties_only_transitive_importers(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "leaf.py": "def leaf():\n    return 1\n",
                "mid.py": (
                    "from proj.leaf import leaf\n\n\n"
                    "def mid():\n    return leaf()\n"
                ),
                "lone.py": "def lone():\n    return 2\n",
            },
        )
        cache = tmp_path / "cache"
        analyze(root, cache_dir=cache)
        (root / "leaf.py").write_text("def leaf():\n    return 3\n")
        result = analyze(root, cache_dir=cache)
        assert sorted(result.analyzed) == ["proj.leaf", "proj.mid"]
        assert "proj.lone" in result.cached

    def test_version_or_corruption_degrades_to_full_run(self, tmp_path):
        root = write_project(tmp_path, {"m.py": "x = 1\n"})
        cache = tmp_path / "cache"
        analyze(root, cache_dir=cache)
        for entry in cache.glob("*.json"):
            entry.write_text("{not json")
        result = analyze(root, cache_dir=cache)
        assert "proj.m" in result.analyzed


def run(paths, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    status = run_lint(paths, stdout=out, stderr=err, **kwargs)
    return status, out.getvalue(), err.getvalue()


class TestRunnerIntegration:
    def test_committed_tree_flow_clean(self, tmp_path):
        status, out, err = run(
            [SRC], flow=True, flow_cache=str(tmp_path / "cache")
        )
        assert status == 0, out + err
        assert "clean: 0 findings" in out
        assert "flow:" in out

    def test_flow_findings_reach_the_report(self, tmp_path):
        root = write_project(tmp_path, dict(FORK_FIXTURE))
        status, out, _ = run(
            [str(root)], flow=True, flow_cache=None, semantics=False
        )
        assert status == 1
        assert "TNG301" in out and "TNG302" in out and "TNG303" in out

    def test_select_flow_code_requires_flow(self, tmp_path):
        status, _, err = run([SRC], select="TNG301")
        assert status == 2
        assert "--flow" in err

    def test_select_restricts_flow_codes(self, tmp_path):
        root = write_project(tmp_path, dict(FORK_FIXTURE))
        status, out, _ = run(
            [str(root)],
            flow=True,
            flow_cache=None,
            semantics=False,
            select="TNG302",
        )
        assert status == 1
        assert "TNG302" in out
        assert "TNG301" not in out and "TNG303" not in out

    def test_baseline_round_trip_for_flow_findings(self, tmp_path):
        root = write_project(tmp_path, dict(FORK_FIXTURE))
        baseline = tmp_path / "baseline.json"
        status, _, _ = run(
            [str(root)],
            flow=True,
            flow_cache=None,
            semantics=False,
            write_baseline=str(baseline),
        )
        assert status == 0
        status, out, _ = run(
            [str(root)],
            flow=True,
            flow_cache=None,
            semantics=False,
            baseline_path=str(baseline),
        )
        assert status == 0, out

    def test_flow_stats_in_json_report(self, tmp_path):
        import json as json_mod

        root = write_project(tmp_path, {"m.py": "x = 1\n"})
        status, out, _ = run(
            [str(root)],
            flow=True,
            flow_cache=str(tmp_path / "cache"),
            semantics=False,
            fmt="json",
        )
        payload = json_mod.loads(out)
        assert payload["flow"]["analyzed"] == 2  # proj + proj.m
        assert payload["flow"]["cached"] == 0


class TestUnusedSuppression:
    def test_dead_noqa_is_flagged(self, tmp_path):
        root = write_project(
            tmp_path,
            {"m.py": "x = 1  # tango: noqa[TNG001]\n"},
        )
        status, out, _ = run([str(root)], semantics=False)
        assert status == 1
        assert "TNG007" in out
        assert "TNG001" in out

    def test_used_noqa_is_not_flagged(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "m.py": (
                    "import time\n\n"
                    "T = time.time()  # tango: noqa[TNG001]\n"
                ),
            },
        )
        status, out, _ = run([str(root)], semantics=False)
        assert status == 0, out

    def test_flow_code_noqa_judged_only_with_flow(self, tmp_path):
        root = write_project(
            tmp_path,
            {"m.py": "x = 1  # tango: noqa[TNG301]\n"},
        )
        status, out, _ = run([str(root)], semantics=False)
        assert status == 0, out  # flow family did not run: benefit of doubt
        status, out, _ = run(
            [str(root)], semantics=False, flow=True, flow_cache=None
        )
        assert status == 1
        assert "TNG007" in out

    def test_blanket_noqa_judged_only_with_flow(self, tmp_path):
        root = write_project(
            tmp_path,
            {"m.py": "x = 1  # tango: noqa\n"},
        )
        status, out, _ = run([str(root)], semantics=False)
        assert status == 0, out
        status, out, _ = run(
            [str(root)], semantics=False, flow=True, flow_cache=None
        )
        assert status == 1
        assert "blanket" in out

    def test_used_flow_noqa_survives_the_audit(self, tmp_path):
        files = dict(FORK_FIXTURE)
        files["launch.py"] = files["launch.py"].replace(
            "    return pool.submit(work, (payloads, rng))",
            "    return pool.submit(work, (payloads, rng))"
            "  # tango: noqa[TNG301,TNG302,TNG303]",
        )
        root = write_project(tmp_path, files)
        status, out, _ = run(
            [str(root)], semantics=False, flow=True, flow_cache=None
        )
        assert status == 0, out

    def test_tng007_cannot_be_self_suppressed(self, tmp_path):
        root = write_project(
            tmp_path,
            {"m.py": "x = 1  # tango: noqa[TNG001,TNG007]\n"},
        )
        status, out, _ = run([str(root)], semantics=False)
        assert status == 1
        assert "TNG007" in out
