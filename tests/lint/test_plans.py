"""Fault-plan target validation (TNG105) against scenario specs."""

from pathlib import Path

from repro.faults.plan import FaultEvent, FaultPlan
from repro.lint import check_fault_plan, check_plan_files, vultr_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


def plan_of(*events: FaultEvent) -> FaultPlan:
    return FaultPlan(name="test-plan", seed=1, events=events)


class TestCheckFaultPlan:
    def setup_method(self):
        self.spec = vultr_spec()

    def test_valid_plan_clean(self):
        plan = plan_of(
            FaultEvent(
                "link_blackhole",
                at=5.0,
                duration=5.0,
                params={"src": "ny", "path": "GTT"},
            ),
            FaultEvent(
                "prefix_withdraw",
                at=10.0,
                duration=5.0,
                params={"edge": "la", "prefix_index": 0},
            ),
            FaultEvent(
                "bgp_session_down",
                at=20.0,
                duration=5.0,
                params={"a": "vultr-ny", "b": "cogent"},
            ),
        )
        assert check_fault_plan(plan, self.spec) == []

    def test_unknown_edge(self):
        plan = plan_of(
            FaultEvent(
                "link_blackhole",
                at=1.0,
                duration=1.0,
                params={"src": "tokyo", "path": "GTT"},
            )
        )
        findings = check_fault_plan(plan, self.spec, path="plan.json")
        assert [f.code for f in findings] == ["TNG105"]
        assert "unknown edge 'tokyo'" in findings[0].message
        assert findings[0].path == "plan.json"

    def test_unknown_path_label(self):
        plan = plan_of(
            FaultEvent(
                "link_blackhole",
                at=1.0,
                duration=1.0,
                params={"src": "ny", "path": "Sprint"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "no wide-area path 'Sprint'" in findings[0].message

    def test_prefix_index_out_of_range(self):
        plan = plan_of(
            FaultEvent(
                "prefix_withdraw",
                at=1.0,
                duration=1.0,
                params={"edge": "ny", "prefix_index": 99},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "prefix_index 99 out of range" in findings[0].message

    def test_unknown_router_in_session_down(self):
        plan = plan_of(
            FaultEvent(
                "bgp_session_down",
                at=1.0,
                duration=1.0,
                params={"a": "vultr-ny", "b": "sprint"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "unknown router 'sprint'" in findings[0].message

    def test_no_session_between_known_routers(self):
        # Both routers exist, but level3 is an LA-side provider only.
        plan = plan_of(
            FaultEvent(
                "bgp_session_down",
                at=1.0,
                duration=1.0,
                params={"a": "vultr-ny", "b": "level3"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "no BGP session" in findings[0].message

    def test_every_finding_names_the_event(self):
        plan = plan_of(
            FaultEvent(
                "telemetry_drop",
                at=1.0,
                duration=1.0,
                params={"edge": "mars"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert "plan 'test-plan' event #0" in findings[0].message


class TestCheckPlanFiles:
    def test_shipped_example_plans_validate_clean(self):
        plans = sorted(str(p) for p in (REPO_ROOT / "examples").glob("*.json"))
        assert plans  # the repo ships at least faults_blackhole.json
        assert check_plan_files(plans) == []

    def test_unreadable_file_becomes_finding(self):
        findings = check_plan_files(["/no/such/plan.json"])
        assert [f.code for f in findings] == ["TNG105"]
        assert "cannot read fault plan" in findings[0].message

    def test_malformed_json_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        findings = check_plan_files([str(bad)])
        assert [f.code for f in findings] == ["TNG105"]
        assert "invalid fault plan" in findings[0].message

    def test_bad_target_in_file_reports_file_path(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "x", "seed": 1, "events": [{"kind": "link_blackhole",'
            ' "at": 1.0, "duration": 1.0, "src": "ny", "path": "Sprint"}]}'
        )
        findings = check_plan_files([str(plan)])
        assert len(findings) == 1
        assert findings[0].path == str(plan)
