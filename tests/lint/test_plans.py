"""Fault-plan target validation (TNG105) against scenario specs."""

from pathlib import Path

from repro.faults.plan import FaultEvent, FaultPlan
from repro.lint import check_fault_plan, check_plan_files, vultr_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


def plan_of(*events: FaultEvent) -> FaultPlan:
    return FaultPlan(name="test-plan", seed=1, events=events)


class TestCheckFaultPlan:
    def setup_method(self):
        self.spec = vultr_spec()

    def test_valid_plan_clean(self):
        plan = plan_of(
            FaultEvent(
                "link_blackhole",
                at=5.0,
                duration=5.0,
                params={"src": "ny", "path": "GTT"},
            ),
            FaultEvent(
                "prefix_withdraw",
                at=10.0,
                duration=5.0,
                params={"edge": "la", "prefix_index": 0},
            ),
            FaultEvent(
                "bgp_session_down",
                at=20.0,
                duration=5.0,
                params={"a": "vultr-ny", "b": "cogent"},
            ),
        )
        assert check_fault_plan(plan, self.spec) == []

    def test_unknown_edge(self):
        plan = plan_of(
            FaultEvent(
                "link_blackhole",
                at=1.0,
                duration=1.0,
                params={"src": "tokyo", "path": "GTT"},
            )
        )
        findings = check_fault_plan(plan, self.spec, path="plan.json")
        assert [f.code for f in findings] == ["TNG105"]
        assert "unknown edge 'tokyo'" in findings[0].message
        assert findings[0].path == "plan.json"

    def test_unknown_path_label(self):
        plan = plan_of(
            FaultEvent(
                "link_blackhole",
                at=1.0,
                duration=1.0,
                params={"src": "ny", "path": "Sprint"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "no wide-area path 'Sprint'" in findings[0].message

    def test_prefix_index_out_of_range(self):
        plan = plan_of(
            FaultEvent(
                "prefix_withdraw",
                at=1.0,
                duration=1.0,
                params={"edge": "ny", "prefix_index": 99},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "prefix_index 99 out of range" in findings[0].message

    def test_unknown_router_in_session_down(self):
        plan = plan_of(
            FaultEvent(
                "bgp_session_down",
                at=1.0,
                duration=1.0,
                params={"a": "vultr-ny", "b": "sprint"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "unknown router 'sprint'" in findings[0].message

    def test_no_session_between_known_routers(self):
        # Both routers exist, but level3 is an LA-side provider only.
        plan = plan_of(
            FaultEvent(
                "bgp_session_down",
                at=1.0,
                duration=1.0,
                params={"a": "vultr-ny", "b": "level3"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert len(findings) == 1
        assert "no BGP session" in findings[0].message

    def test_every_finding_names_the_event(self):
        plan = plan_of(
            FaultEvent(
                "telemetry_drop",
                at=1.0,
                duration=1.0,
                params={"edge": "mars"},
            )
        )
        findings = check_fault_plan(plan, self.spec)
        assert "plan 'test-plan' event #0" in findings[0].message


class TestAdversarialKinds:
    """TNG105 fixtures for the Byzantine-peer fault kinds."""

    def setup_method(self):
        self.spec = vultr_spec()

    def adversarial(self, kind, **params):
        defaults = {
            "telemetry_tamper": {"src": "ny", "path": "NTT", "bias_ms": 12.0},
            "telemetry_replay": {"src": "ny", "path": "GTT", "delay_s": 1.0},
            "gray_loss": {"src": "ny", "path": "GTT", "rate": 0.3},
            "clock_drift": {"edge": "la", "ppm": 200.0},
        }[kind]
        duration = 0.0 if kind == "clock_drift" else 4.0
        return plan_of(
            FaultEvent(
                kind, at=3.0, duration=duration, params={**defaults, **params}
            )
        )

    def test_valid_fixtures_clean(self):
        for kind in (
            "telemetry_tamper",
            "telemetry_replay",
            "gray_loss",
            "clock_drift",
        ):
            assert check_fault_plan(self.adversarial(kind), self.spec) == []

    def test_tamper_bias_must_be_a_nonzero_number(self):
        findings = check_fault_plan(
            self.adversarial("telemetry_tamper", bias_ms=0.0), self.spec
        )
        assert len(findings) == 1
        assert "bias_ms must be nonzero" in findings[0].message
        findings = check_fault_plan(
            self.adversarial("telemetry_tamper", bias_ms="big"), self.spec
        )
        assert "is not a number" in findings[0].message

    def test_replay_delay_must_be_positive(self):
        findings = check_fault_plan(
            self.adversarial("telemetry_replay", delay_s=-1.0), self.spec
        )
        assert len(findings) == 1
        assert "delay_s must be > 0" in findings[0].message

    def test_gray_loss_rate_must_be_a_probability(self):
        for rate in (0.0, 1.5):
            findings = check_fault_plan(
                self.adversarial("gray_loss", rate=rate), self.spec
            )
            assert len(findings) == 1
            assert "rate must be in (0, 1]" in findings[0].message

    def test_adversarial_kinds_check_their_targets_too(self):
        findings = check_fault_plan(
            self.adversarial("telemetry_tamper", path="Sprint"), self.spec
        )
        assert any("no wide-area path 'Sprint'" in f.message for f in findings)

    def test_clock_drift_beyond_monitor_bound_rejected(self):
        """A drift the monitor cannot re-estimate away tests nothing but
        the plausibility filter's slack — the lint refuses the plan."""
        from repro.trust.clock import ClockIntegrityMonitor

        bound = ClockIntegrityMonitor.MAX_TRACKABLE_PPM
        findings = check_fault_plan(
            self.adversarial("clock_drift", ppm=bound + 1), self.spec
        )
        assert len(findings) == 1
        assert "re-estimation bound" in findings[0].message
        assert check_fault_plan(
            self.adversarial("clock_drift", ppm=-bound), self.spec
        ) == []


class TestCorrelatedKinds:
    def setup_method(self):
        self.spec = vultr_spec()

    def check(self, event):
        return check_fault_plan(plan_of(event), self.spec)

    def test_valid_correlated_events_clean(self):
        plan = plan_of(
            FaultEvent(
                "srlg_failure",
                at=1.0,
                duration=2.0,
                params={"group": "socal-conduit"},
            ),
            FaultEvent(
                "regional_outage",
                at=1.0,
                duration=2.0,
                params={"region": "socal"},
            ),
            FaultEvent(
                "maintenance_window",
                at=1.0,
                duration=2.0,
                params={"group": "ntt-backbone", "drain_s": 0.5},
            ),
        )
        assert check_fault_plan(plan, self.spec) == []

    def test_unknown_group_rejected(self):
        findings = self.check(
            FaultEvent(
                "srlg_failure", at=1.0, duration=2.0,
                params={"group": "atlantis-cable"},
            )
        )
        assert len(findings) == 1
        assert "unknown risk group 'atlantis-cable'" in findings[0].message

    def test_maintenance_group_also_checked(self):
        findings = self.check(
            FaultEvent(
                "maintenance_window", at=1.0, duration=2.0,
                params={"group": "nope"},
            )
        )
        assert len(findings) == 1
        assert "unknown risk group" in findings[0].message

    def test_unknown_region_rejected(self):
        findings = self.check(
            FaultEvent(
                "regional_outage", at=1.0, duration=2.0,
                params={"region": "mars"},
            )
        )
        assert len(findings) == 1
        assert "unknown region 'mars'" in findings[0].message

    def test_drain_must_be_numeric_and_inside_window(self):
        bad_value = self.check(
            FaultEvent(
                "maintenance_window", at=1.0, duration=2.0,
                params={"group": "ntt-backbone", "drain_s": "soon"},
            )
        )
        assert any("not a number" in f.message for f in bad_value)
        too_long = self.check(
            FaultEvent(
                "maintenance_window", at=1.0, duration=2.0,
                params={"group": "ntt-backbone", "drain_s": 2.0},
            )
        )
        assert any("drain_s" in f.message for f in too_long)

    def test_transit_tags_are_valid_groups(self):
        findings = self.check(
            FaultEvent(
                "srlg_failure", at=1.0, duration=2.0,
                params={"group": "transit:NTT"},
            )
        )
        assert findings == []


class TestRelayOutage:
    """TNG105 fixtures for the federation relay-outage fault kind: the
    member must be a declared mesh member of the scenario."""

    def setup_method(self):
        from repro.lint import mesh_spec

        self.spec = mesh_spec(4)

    def check(self, member):
        plan = plan_of(
            FaultEvent(
                "relay_outage",
                at=2.0,
                duration=2.0,
                params={"member": member},
            )
        )
        return check_fault_plan(plan, self.spec)

    def test_declared_member_accepted(self):
        assert self.check("edge2") == []

    def test_unknown_member_rejected(self):
        findings = self.check("edge9")
        assert [f.code for f in findings] == ["TNG105"]
        assert "unknown federation member 'edge9'" in findings[0].message
        assert "edge0" in findings[0].message  # names the valid members

    def test_two_party_scenario_has_no_members(self):
        findings = check_fault_plan(
            plan_of(
                FaultEvent(
                    "relay_outage",
                    at=2.0,
                    duration=2.0,
                    params={"member": "ny"},
                )
            ),
            vultr_spec(),
        )
        # 'ny' is a vultr edge, so it passes the static member check;
        # arming against a two-party deployment still fails at runtime
        # (no member_links).  A name outside the edge set is caught.
        assert findings == []
        findings = check_fault_plan(
            plan_of(
                FaultEvent(
                    "relay_outage",
                    at=2.0,
                    duration=2.0,
                    params={"member": "tokyo"},
                )
            ),
            vultr_spec(),
        )
        assert len(findings) == 1

    def test_zero_duration_rejected_at_authoring(self):
        import pytest

        with pytest.raises(ValueError, match="positive duration"):
            FaultEvent(
                "relay_outage", at=2.0, duration=0.0, params={"member": "edge2"}
            )


class TestCheckPlanFiles:
    def test_shipped_example_plans_validate_clean(self):
        plans = sorted(str(p) for p in (REPO_ROOT / "examples").glob("*.json"))
        assert plans  # the repo ships at least faults_blackhole.json
        assert check_plan_files(plans) == []

    def test_unreadable_file_becomes_finding(self):
        findings = check_plan_files(["/no/such/plan.json"])
        assert [f.code for f in findings] == ["TNG105"]
        assert "cannot read fault plan" in findings[0].message

    def test_malformed_json_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        findings = check_plan_files([str(bad)])
        assert [f.code for f in findings] == ["TNG105"]
        assert "invalid fault plan" in findings[0].message

    def test_bad_target_in_file_reports_file_path(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "x", "seed": 1, "events": [{"kind": "link_blackhole",'
            ' "at": 1.0, "duration": 1.0, "src": "ny", "path": "Sprint"}]}'
        )
        findings = check_plan_files([str(plan)])
        assert len(findings) == 1
        assert findings[0].path == str(plan)
