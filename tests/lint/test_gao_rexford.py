"""Semantic Gao–Rexford checks: leaks, valleys, cycles, communities."""

from repro.bgp.attributes import LargeCommunity
from repro.bgp.communities import (
    ACTION_NO_EXPORT_ALL,
    ACTION_NO_EXPORT_TO,
    ACTION_PREPEND_TO,
)
from repro.bgp.network import BgpNetwork
from repro.bgp.policy import Relationship
from repro.bgp.router import BgpRouter
from repro.lint import (
    check_communities,
    check_network,
    check_scenario,
    leak_witness,
    shipped_scenario_specs,
    valley_free_reachable,
)

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


def star(*names_and_asns) -> BgpNetwork:
    net = BgpNetwork()
    for name, asn in names_and_asns:
        net.add_router(BgpRouter(name, asn))
    return net


def leaky_network() -> BgpNetwork:
    """upstream --provider--> leaker --?--> victim, with the leaker and
    victim disagreeing about their session: the leaker thinks the victim
    is its customer (so provider routes flow to it), the victim thinks
    the session is settlement-free peering.  That asymmetry is exactly a
    transit leak; :meth:`BgpNetwork.connect` cannot express it, so the
    sessions are wired directly."""
    net = star(("upstream", 100), ("leaker", 200), ("victim", 300))
    net.router("leaker").add_neighbor("upstream", 100, R)
    net.router("upstream").add_neighbor("leaker", 200, C)
    net.router("leaker").add_neighbor("victim", 300, C)
    net.router("victim").add_neighbor("leaker", 200, P)
    return net


class TestTransitLeak:
    def test_leaky_topology_rejected_with_path_witness(self):
        findings = check_network(leaky_network(), scenario="leaky")
        assert [f.code for f in findings] == ["TNG101"]
        message = findings[0].message
        # The explanation must spell out the concrete leaked path and why
        # it is a valley, not just flag the session.
        assert "upstream -> leaker -> victim" in message
        assert "provider-learned" in message
        assert "valley" in message
        assert findings[0].path == "scenario:leaky"

    def test_leak_witness_none_for_consistent_session(self):
        net = star(("a", 1), ("b", 2))
        net.add_provider("a", "b")
        assert leak_witness(net, "a", "b") is None
        assert leak_witness(net, "b", "a") is None

    def test_half_open_session_flagged(self):
        net = star(("a", 1), ("b", 2))
        net.router("a").add_neighbor("b", 2, R)
        findings = check_network(net)
        assert [f.code for f in findings] == ["TNG101"]
        assert "half-open" in findings[0].message

    def test_session_to_unknown_router_flagged(self):
        net = star(("a", 1))
        net.router("a").add_neighbor("ghost", 9, R)
        findings = check_network(net)
        assert [f.code for f in findings] == ["TNG101"]
        assert "ghost" in findings[0].message


class TestValleyFree:
    def build_chain(self) -> BgpNetwork:
        # t1 -> core1 (provider), core1 ~ core2 (peer), core2 -> t2
        net = star(("t1", 1), ("core1", 10), ("core2", 20), ("t2", 2))
        net.add_provider("t1", "core1")
        net.add_peering("core1", "core2")
        net.add_provider("t2", "core2")
        return net

    def test_one_peer_crossing_is_reachable(self):
        net = self.build_chain()
        assert "t2" in valley_free_reachable(net, "t1")
        assert check_network(net, edges=("t1", "t2")) == []

    def test_two_peer_crossings_are_a_valley(self):
        # t1 -> core1 ~ core2 ~ core3 <- t2: needs two peer hops.
        net = star(
            ("t1", 1), ("core1", 10), ("core2", 20), ("core3", 30), ("t2", 2)
        )
        net.add_provider("t1", "core1")
        net.add_peering("core1", "core2")
        net.add_peering("core2", "core3")
        net.add_provider("t2", "core3")
        assert "t2" not in valley_free_reachable(net, "t1")
        findings = check_network(net, edges=("t1", "t2"))
        assert {f.code for f in findings} == {"TNG102"}
        assert len(findings) == 2  # neither direction establishes

    def test_shared_provider_reaches_both_customers(self):
        net = star(("t1", 1), ("core", 10), ("t2", 2))
        net.add_provider("t1", "core")
        net.add_provider("t2", "core")
        assert check_network(net, edges=("t1", "t2")) == []


class TestProviderCycles:
    def test_cycle_detected(self):
        net = star(("a", 1), ("b", 2), ("c", 3))
        net.add_provider("a", "b")
        net.add_provider("b", "c")
        net.add_provider("c", "a")  # a is transitively its own provider
        findings = check_network(net)
        assert [f.code for f in findings] == ["TNG103"]
        assert "cycle" in findings[0].message

    def test_diamond_without_cycle_clean(self):
        net = star(("a", 1), ("b", 2), ("c", 3), ("d", 4))
        net.add_provider("a", "b")
        net.add_provider("a", "c")
        net.add_provider("b", "d")
        net.add_provider("c", "d")
        assert check_network(net) == []


class TestCommunities:
    def build(self) -> BgpNetwork:
        net = star(("provider", 100), ("tenant", 64512), ("peer", 300))
        net.add_provider("tenant", "provider")
        net.add_peering("provider", "peer")
        return net

    def test_valid_actions_clean(self):
        net = self.build()
        good = [
            LargeCommunity(100, ACTION_NO_EXPORT_ALL, 0),
            LargeCommunity(100, ACTION_NO_EXPORT_TO, 300),
            LargeCommunity(100, ACTION_PREPEND_TO + 1, 300),
        ]
        assert check_communities(net, good) == []

    def test_unknown_admin_flagged(self):
        findings = check_communities(
            self.build(), [LargeCommunity(555, ACTION_NO_EXPORT_ALL, 0)]
        )
        assert [f.code for f in findings] == ["TNG104"]
        assert "AS555" in findings[0].message

    def test_unknown_action_code_flagged(self):
        findings = check_communities(
            self.build(), [LargeCommunity(100, 4242, 300)]
        )
        assert [f.code for f in findings] == ["TNG104"]
        assert "unknown action" in findings[0].message

    def test_target_not_a_neighbor_flagged(self):
        findings = check_communities(
            self.build(), [LargeCommunity(100, ACTION_NO_EXPORT_TO, 999)]
        )
        assert [f.code for f in findings] == ["TNG104"]
        assert "never fire" in findings[0].message


class TestShippedScenarios:
    def test_every_shipped_scenario_validates_clean(self):
        for spec in shipped_scenario_specs():
            assert check_scenario(spec) == [], spec.name
