"""Engine mechanics: selection, parse errors, baselines, reporters."""

import json
import textwrap

import pytest

from repro.lint import (
    PARSE_ERROR_CODE,
    Baseline,
    LintEngine,
    default_rules,
    render_json,
    render_text,
)


def lint(source: str, **kwargs) -> list:
    return LintEngine(default_rules(), **kwargs).check_source(
        textwrap.dedent(source), path="fixture.py"
    )


WALLCLOCK_AND_RNG = """\
import time
import random
a = time.time()
b = random.random()
"""


class TestSelection:
    def test_select_restricts_to_one_code(self):
        findings = lint(WALLCLOCK_AND_RNG, select=["TNG001"])
        assert [f.code for f in findings] == ["TNG001"]

    def test_select_is_case_insensitive(self):
        findings = lint(WALLCLOCK_AND_RNG, select=["tng003"])
        assert [f.code for f in findings] == ["TNG003"]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            LintEngine(default_rules(), select=["TNG999"])

    def test_duplicate_rule_code_rejected(self):
        rules = default_rules()
        with pytest.raises(ValueError, match="duplicate rule code"):
            LintEngine(list(rules) + [rules[0]])


class TestParseErrors:
    def test_syntax_error_becomes_tng000(self):
        findings = lint("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].code == PARSE_ERROR_CODE
        assert findings[0].line == 1


class TestFileDiscovery:
    def test_walk_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.pyc.py").write_text("junk\n")
        files = list(LintEngine.iter_python_files([str(tmp_path)]))
        assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(LintEngine.iter_python_files(["/no/such/dir"]))


class TestBaseline:
    def test_round_trip_through_json(self):
        findings = lint(WALLCLOCK_AND_RNG)
        assert len(findings) == 2
        baseline = Baseline.from_findings(findings)
        restored = Baseline.from_json(baseline.to_json())
        assert len(restored) == 2
        assert restored.filter_new(findings) == []

    def test_round_trip_through_file(self, tmp_path):
        findings = lint(WALLCLOCK_AND_RNG)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).to_file(str(path))
        assert Baseline.from_file(str(path)).filter_new(findings) == []

    def test_new_findings_surface(self):
        old = lint("import time\na = time.time()\n")
        both = lint("import time\na = time.time()\nb = time.time_ns()\n")
        fresh = Baseline.from_findings(old).filter_new(both)
        assert len(fresh) == 1
        assert fresh[0].line == 3

    def test_each_slot_absorbs_one_finding(self):
        # Two identical violations, one baselined slot: one must surface.
        src = "import time\na = time.time()\na = time.time()\n"
        findings = lint(src)
        assert len(findings) == 2
        baseline = Baseline.from_findings(findings[:1])
        assert len(baseline.filter_new(findings)) == 1

    def test_line_moves_do_not_invalidate(self):
        # Fingerprints hash the snippet, not the line number.
        before = lint("import time\na = time.time()\n")
        after = lint("import time\n\n\na = time.time()\n")
        assert Baseline.from_findings(before).filter_new(after) == []

    def test_invalid_payloads_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            Baseline.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            Baseline.from_json("[]")
        with pytest.raises(ValueError, match="version"):
            Baseline.from_json('{"version": 99, "fingerprints": []}')
        with pytest.raises(ValueError, match="list of strings"):
            Baseline.from_json('{"version": 1, "fingerprints": [1]}')


class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        findings = lint(WALLCLOCK_AND_RNG)
        text = render_text(findings, checked_files=1)
        assert "fixture.py:3:5: TNG001" in text
        assert "fixture.py:4:5: TNG003" in text
        assert "2 finding(s) in 1 file(s): TNG001 x1, TNG003 x1" in text

    def test_text_report_clean(self):
        assert render_text([], checked_files=5) == "clean: 0 findings in 5 file(s)\n"

    def test_json_report_is_machine_readable(self):
        findings = lint(WALLCLOCK_AND_RNG)
        payload = json.loads(render_json(findings, checked_files=1))
        assert payload["checked_files"] == 1
        assert payload["finding_count"] == 2
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["TNG001", "TNG003"]
        assert payload["findings"][0]["line"] == 3
