"""End-to-end: ``tango-repro lint`` over the committed tree and fixtures."""

import io
import json
from pathlib import Path

from repro.cli import main
from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src" / "repro")


def run(paths, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    status = run_lint(paths, stdout=out, stderr=err, **kwargs)
    return status, out.getvalue(), err.getvalue()


class TestCommittedTree:
    def test_src_repro_lints_clean(self):
        status, out, err = run([SRC])
        assert status == 0, out + err
        assert "clean: 0 findings" in out

    def test_cli_subcommand_exits_zero(self, capsys):
        assert main(["lint", SRC]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules_covers_every_code(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ["TNG000", *(f"TNG00{i}" for i in range(1, 7)),
                     *(f"TNG10{i}" for i in range(1, 6))]:
            assert code in out

    def test_shipped_plans_validate_through_cli(self):
        plan = str(REPO_ROOT / "examples" / "faults_blackhole.json")
        status, out, _ = run([SRC], plan_paths=[plan])
        assert status == 0, out


class TestFindingsSurface:
    def write_bad_file(self, tmp_path) -> Path:
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\nimport random\n"
            "a = time.time()\n"
            "b = random.random()\n"
        )
        return bad

    def test_violations_fail_with_location(self, tmp_path):
        bad = self.write_bad_file(tmp_path)
        status, out, _ = run([str(tmp_path)], semantics=False)
        assert status == 1
        assert f"{bad}:3:5: TNG001" in out
        assert f"{bad}:4:5: TNG003" in out

    def test_json_format(self, tmp_path):
        self.write_bad_file(tmp_path)
        status, out, _ = run([str(tmp_path)], fmt="json", semantics=False)
        assert status == 1
        payload = json.loads(out)
        assert payload["finding_count"] == 2
        assert [f["code"] for f in payload["findings"]] == ["TNG001", "TNG003"]

    def test_select_restricts_rules(self, tmp_path):
        self.write_bad_file(tmp_path)
        status, out, _ = run([str(tmp_path)], select="TNG003", semantics=False)
        assert status == 1
        assert "TNG001" not in out
        assert "TNG003" in out


class TestBaselineWorkflow:
    def test_write_then_filter_then_regress(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\na = time.time()\n")
        baseline = tmp_path / "baseline.json"

        status, out, _ = run(
            [str(bad)], write_baseline=str(baseline), semantics=False
        )
        assert status == 0
        assert "1 accepted finding(s)" in out

        status, _, _ = run(
            [str(bad)], baseline_path=str(baseline), semantics=False
        )
        assert status == 0

        bad.write_text("import time\na = time.time()\nb = time.time_ns()\n")
        status, out, _ = run(
            [str(bad)], baseline_path=str(baseline), semantics=False
        )
        assert status == 1
        assert "time_ns" in out or "TNG001" in out


class TestUsageErrors:
    def test_unknown_select_code(self, tmp_path):
        status, _, err = run([str(tmp_path)], select="TNG999", semantics=False)
        assert status == 2
        assert "unknown rule code" in err

    def test_missing_path(self):
        status, _, err = run(["/no/such/path"], semantics=False)
        assert status == 2
        assert "no such file or directory" in err

    def test_unreadable_baseline(self, tmp_path):
        empty = tmp_path / "ok.py"
        empty.write_text("x = 1\n")
        status, _, err = run(
            [str(empty)],
            baseline_path=str(tmp_path / "missing.json"),
            semantics=False,
        )
        assert status == 2
        assert "cannot read baseline" in err
