"""Fixture corpus for the determinism rules (TNG001–TNG006).

Every positive fixture asserts the exact code *and* line; every rule also
gets negatives proving the seeded/ordered/deliberate variants stay clean.
"""

import textwrap

from repro.lint import LintEngine, default_rules


def lint(source: str) -> list:
    return LintEngine(default_rules()).check_source(
        textwrap.dedent(source), path="fixture.py"
    )


def codes_and_lines(source: str) -> list[tuple[str, int]]:
    return [(f.code, f.line) for f in lint(source)]


class TestWallclock:
    def test_time_module_calls_flagged(self):
        src = """\
        import time
        a = time.time()
        b = time.monotonic()
        c = time.perf_counter_ns()
        """
        assert codes_and_lines(src) == [
            ("TNG001", 2),
            ("TNG001", 3),
            ("TNG001", 4),
        ]

    def test_datetime_now_flagged_through_alias(self):
        src = """\
        import datetime as dt
        stamp = dt.datetime.now()
        today = dt.date.today()
        """
        assert codes_and_lines(src) == [("TNG001", 2), ("TNG001", 3)]

    def test_from_import_flagged(self):
        src = """\
        from time import perf_counter
        x = perf_counter()
        """
        assert codes_and_lines(src) == [("TNG001", 2)]

    def test_time_sleep_is_not_a_clock_read(self):
        src = """\
        import time
        time.sleep(0.1)
        """
        assert codes_and_lines(src) == []


class TestUnseededRng:
    def test_unseeded_constructors_flagged(self):
        src = """\
        import random
        import numpy as np
        a = random.Random()
        b = np.random.default_rng()
        c = np.random.RandomState()
        """
        assert codes_and_lines(src) == [
            ("TNG002", 3),
            ("TNG002", 4),
            ("TNG002", 5),
        ]

    def test_seeded_constructors_clean(self):
        src = """\
        import random
        import numpy as np
        a = random.Random(42)
        b = np.random.default_rng(7)
        c = np.random.default_rng(seed=7)
        d = np.random.RandomState(seed=3)
        """
        assert codes_and_lines(src) == []

    def test_explicit_none_seed_flagged(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(None)
        """
        assert codes_and_lines(src) == [("TNG002", 2)]


class TestGlobalRng:
    def test_module_level_random_calls_flagged(self):
        src = """\
        import random
        import numpy as np
        a = random.random()
        b = random.choice([1, 2])
        np.random.shuffle([1, 2])
        """
        assert codes_and_lines(src) == [
            ("TNG003", 3),
            ("TNG003", 4),
            ("TNG003", 5),
        ]

    def test_instance_methods_clean(self):
        src = """\
        import random
        rng = random.Random(7)
        x = rng.random()
        y = rng.choice([1, 2])
        """
        assert codes_and_lines(src) == []


class TestOsEntropy:
    def test_entropy_sources_flagged(self):
        src = """\
        import os
        import uuid
        import secrets
        a = os.urandom(16)
        b = uuid.uuid4()
        c = secrets.token_hex(8)
        """
        assert codes_and_lines(src) == [
            ("TNG004", 4),
            ("TNG004", 5),
            ("TNG004", 6),
        ]

    def test_uuid5_is_deterministic_and_clean(self):
        src = """\
        import uuid
        a = uuid.uuid5(uuid.NAMESPACE_DNS, "tango")
        """
        assert codes_and_lines(src) == []


class TestSetIteration:
    def test_for_over_set_display_flagged(self):
        src = """\
        def f(xs):
            for item in {1, 2, 3}:
                print(item)
        """
        assert codes_and_lines(src) == [("TNG005", 2)]

    def test_for_over_set_call_flagged(self):
        src = """\
        def f(xs):
            for item in set(xs):
                print(item)
        """
        assert codes_and_lines(src) == [("TNG005", 2)]

    def test_dataflow_through_assignment(self):
        src = """\
        def f(xs, ys):
            pending = set(xs)
            extra = pending | set(ys)
            for item in extra:
                print(item)
        """
        assert codes_and_lines(src) == [("TNG005", 4)]

    def test_listcomp_over_set_flagged(self):
        src = """\
        def f(xs):
            return [x + 1 for x in set(xs)]
        """
        assert codes_and_lines(src) == [("TNG005", 2)]

    def test_sorted_set_is_clean(self):
        src = """\
        def f(xs):
            for item in sorted(set(xs)):
                print(item)
        """
        assert codes_and_lines(src) == []

    def test_generator_into_order_insensitive_sink_is_clean(self):
        # Generator expressions are deliberately exempt: sorted()/min()/
        # sum() over a set do not leak iteration order.
        src = """\
        def f(xs):
            return sorted(x for x in set(xs))
        """
        assert codes_and_lines(src) == []

    def test_list_call_on_set_flagged(self):
        src = """\
        def f(xs):
            return list(set(xs))
        """
        assert codes_and_lines(src) == [("TNG005", 2)]


class TestMutableDefault:
    def test_mutable_defaults_flagged_as_warning(self):
        src = """\
        def f(items=[]):
            return items

        def g(mapping={}):
            return mapping
        """
        findings = lint(src)
        assert [(f.code, f.line) for f in findings] == [
            ("TNG006", 1),
            ("TNG006", 4),
        ]
        assert all(f.severity.label == "warning" for f in findings)

    def test_none_default_clean(self):
        src = """\
        def f(items=None):
            return items or []
        """
        assert codes_and_lines(src) == []


class TestSuppression:
    def test_targeted_noqa_suppresses_one_code(self):
        src = """\
        import time
        a = time.time()  # tango: noqa[TNG001]
        b = time.time()
        """
        assert codes_and_lines(src) == [("TNG001", 3)]

    def test_bare_tango_noqa_suppresses_everything(self):
        src = """\
        import time
        a = time.time()  # tango: noqa
        """
        assert codes_and_lines(src) == []

    def test_noqa_for_other_code_does_not_suppress(self):
        src = """\
        import time
        a = time.time()  # tango: noqa[TNG005]
        """
        assert codes_and_lines(src) == [("TNG001", 2)]

    def test_plain_flake8_noqa_is_ignored(self):
        src = """\
        import time
        a = time.time()  # noqa
        """
        assert codes_and_lines(src) == [("TNG001", 2)]

    def test_multiple_codes_comma_separated(self):
        src = """\
        import time, random
        a = time.time() + random.random()  # tango: noqa[TNG001, TNG003]
        """
        assert codes_and_lines(src) == []
