"""Relay encap hop: header swap semantics at the relay switch."""

import ipaddress

import pytest

from repro.dataplane.relay import (
    RelayBinding,
    RelayForwardProgram,
    attach_relay_program,
)
from repro.netsim.packet import (
    TANGO_UDP_PORT,
    Ipv6Header,
    Packet,
    TangoHeader,
    UdpHeader,
)
from repro.netsim.topology import Network

A_TO_R = ipaddress.IPv6Address("2001:db8:aa::1")
R_LOCAL = ipaddress.IPv6Address("2001:db8:bb::1")
R_TO_B = ipaddress.IPv6Address("2001:db8:cc::1")


def binding(path_id=777):
    return RelayBinding(
        path_id=path_id,
        arrival_endpoint=R_LOCAL,
        next_src=R_LOCAL,
        next_dst=R_TO_B,
        next_sport=41003,
    )


def stitched_packet(path_id=777, dst=R_LOCAL, timestamp_ns=123_456_789):
    return Packet(
        headers=[
            Ipv6Header(src=A_TO_R, dst=dst),
            UdpHeader(sport=40001, dport=TANGO_UDP_PORT),
            TangoHeader(timestamp_ns=timestamp_ns, seq=9, path_id=path_id),
        ],
        payload_bytes=1000,
    )


@pytest.fixture()
def switch():
    return Network().add_switch("relay-sw")


class TestHeaderSwap:
    def test_bound_packet_gets_segment_two_coordinates(self, switch):
        program = RelayForwardProgram()
        program.bind(binding())
        packet = stitched_packet()
        out = program(switch, packet)
        assert out is packet
        assert packet.headers[0].src == R_LOCAL
        assert packet.headers[0].dst == R_TO_B
        assert packet.headers[1].sport == 41003
        assert program.relayed == 1

    def test_tango_header_survives_untouched(self, switch):
        """The origin timestamp and stitched path id must cross the
        relay unmodified — that is what makes the final receiver's
        measurement the true end-to-end OWD (clock offsets telescope)
        and keeps the stitched route's telemetry under its own id."""
        program = RelayForwardProgram()
        program.bind(binding())
        packet = stitched_packet(timestamp_ns=42)
        before = packet.headers[2]
        program(switch, packet)
        assert packet.headers[2] is before
        assert packet.headers[2].timestamp_ns == 42
        assert packet.headers[2].path_id == 777

    def test_unbound_path_id_passes_through(self, switch):
        program = RelayForwardProgram()
        program.bind(binding(path_id=777))
        packet = stitched_packet(path_id=555)
        program(switch, packet)
        assert packet.headers[0].dst == R_LOCAL  # unchanged
        assert program.relayed == 0
        assert program.passed_through == 1

    def test_other_destination_passes_through(self, switch):
        """A direct (non-stitched) packet that happens to share a path id
        but targets a different endpoint is not the relay's business."""
        program = RelayForwardProgram()
        program.bind(binding())
        other = ipaddress.IPv6Address("2001:db8:dd::1")
        packet = stitched_packet(dst=other)
        program(switch, packet)
        assert packet.headers[0].dst == other
        assert program.relayed == 0

    def test_non_tango_packet_passes_through(self, switch):
        program = RelayForwardProgram()
        program.bind(binding())
        packet = Packet(
            headers=[Ipv6Header(src=A_TO_R, dst=R_LOCAL)], payload_bytes=10
        )
        assert program(switch, packet) is packet
        assert program.passed_through == 1

    def test_double_bind_rejected(self, switch):
        program = RelayForwardProgram()
        program.bind(binding())
        with pytest.raises(ValueError, match="already bound"):
            program.bind(binding())

    def test_unbind_then_pass_through(self, switch):
        program = RelayForwardProgram()
        program.bind(binding())
        program.unbind(777)
        packet = stitched_packet()
        program(switch, packet)
        assert program.relayed == 0

    def test_on_transit_hook_sees_relay_clock(self):
        net = Network()
        switch = net.add_switch("relay-sw", clock_offset=0.25)
        seen = []
        program = RelayForwardProgram(
            on_transit=lambda pid, t: seen.append((pid, t))
        )
        program.bind(binding())
        program(switch, stitched_packet())
        assert seen == [(777, pytest.approx(0.25))]


class TestAttach:
    def test_attach_inserts_at_ingress_front(self, switch):
        def other_program(sw, packet):
            return packet

        switch.ingress_programs.append(other_program)
        program = attach_relay_program(switch)
        assert switch.ingress_programs[0] is program

    def test_attach_is_idempotent(self, switch):
        first = attach_relay_program(switch)
        second = attach_relay_program(switch)
        assert first is second
        assert (
            sum(
                isinstance(p, RelayForwardProgram)
                for p in switch.ingress_programs
            )
            == 1
        )
