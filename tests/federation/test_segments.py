"""Segment-telemetry composition: OWD sums, loss folds, determinism."""

import numpy as np
import pytest

from repro.core.multipop import MultiPopStore
from repro.federation import (
    Segment,
    SegmentComposer,
    compose_delay,
    compose_loss,
)
from repro.telemetry.store import MeasurementStore


def make_offsets(offsets: dict) -> MultiPopStore:
    store = MultiPopStore(reference_pop="a")
    for pop, offset in offsets.items():
        store.set_offset(pop, offset)
    return store


class TestComposeFunctions:
    def test_delay_is_sum_plus_overhead(self):
        assert compose_delay(0.030, 0.040, 0.0002) == pytest.approx(0.0702)

    def test_loss_is_independent_series_formula(self):
        assert compose_loss(0.1, 0.2) == pytest.approx(1 - 0.9 * 0.8)
        assert compose_loss(0.0, 0.0) == 0.0
        assert compose_loss(1.0, 0.0) == 1.0
        assert compose_loss(0.3, 0.0) == pytest.approx(0.3)

    def test_loss_rejects_non_probabilities(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            compose_loss(-0.1, 0.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            compose_loss(0.5, 1.5)


class TestSegmentComposer:
    """Composed OWD must equal the sum of *true* segment OWDs.

    Each segment's receiver measures ``true_owd + offset(receiver) −
    offset(sender)`` in its own clock; the composer's per-segment
    correction strips exactly that distortion, so under known PoP
    offsets the composed value is the true end-to-end delay plus the
    relay overhead — regardless of how wrong the clocks are.
    """

    def setup_method(self):
        # Reference clock is a (the stitched sender); r and b are off by
        # +5 ms and -3 ms respectively.
        self.offsets = make_offsets({"a": 0.0, "r": 0.005, "b": -0.003})
        self.true_seg1 = 0.030  # a -> r
        self.true_seg2 = 0.040  # r -> b
        self.store_r = MeasurementStore()
        self.store_b = MeasurementStore()
        # Receivers record measured (offset-distorted) OWDs at their own
        # local timestamps.
        now = 10.0
        self.store_r.record(
            101, now + 0.005, self.true_seg1 + 0.005 - 0.0
        )
        self.store_b.record(
            202, now - 0.003, self.true_seg2 + (-0.003) - 0.005
        )
        self.composer = SegmentComposer(
            900,
            [
                Segment("a", "r", self.store_r, 101),
                Segment("r", "b", self.store_b, 202),
            ],
            self.offsets,
            overhead_s=0.0002,
        )

    def test_composed_equals_true_sum_under_known_offsets(self):
        value = self.composer.compose_at(10.0)
        assert value == pytest.approx(
            self.true_seg1 + self.true_seg2 + 0.0002, abs=1e-12
        )

    def test_cold_segment_returns_none(self):
        composer = SegmentComposer(
            901,
            [
                Segment("a", "r", self.store_r, 101),
                Segment("r", "b", MeasurementStore(), 203),
            ],
            self.offsets,
        )
        assert composer.compose_at(10.0) is None

    def test_tick_records_into_composed_series(self):
        self.composer.tick(10.0)
        series = self.composer.composed.series(900)
        assert len(series) == 1
        assert series.values[0] == pytest.approx(
            self.true_seg1 + self.true_seg2 + 0.0002, abs=1e-12
        )

    def test_tick_skips_while_cold(self):
        composer = SegmentComposer(
            902,
            [Segment("r", "b", MeasurementStore(), 203)],
            self.offsets,
        )
        composer.tick(10.0)
        assert len(composer.composed.series(902)) == 0

    def test_needs_at_least_one_segment(self):
        with pytest.raises(ValueError, match="at least one segment"):
            SegmentComposer(903, [], self.offsets)

    def test_composed_loss_folds_all_segments(self):
        assert self.composer.composed_loss([0.1, 0.2, 0.5]) == pytest.approx(
            1 - 0.9 * 0.8 * 0.5
        )


class TestDeterminism:
    def _composed_series(self):
        from repro.core.controller import QuarantinePolicy
        from repro.federation import FederationRegistry
        from repro.scenarios.topologies import build_live_federation

        registry = FederationRegistry(build_live_federation(3, seed=11))
        registry.establish()
        result = registry.stitch_pair("edge0", "edge1")
        relay = result.plan.relay
        registry.start_telemetry()
        registry.start_control_plane(
            focus=[("edge0", "edge1")],
            quarantine=QuarantinePolicy(unhealthy_ticks=1),
        )
        registry.start_traffic("edge0", "edge1")
        registry.start_traffic("edge0", relay)
        registry.start_traffic(relay, "edge1")
        registry.sim.run(until=2.0)
        series = result.composer.composed.series(result.tunnel.path_id)
        out = (series.times.copy(), series.values.copy())
        registry.stop()
        return out

    def test_composed_series_byte_identical_across_reruns(self):
        t1, v1 = self._composed_series()
        t2, v2 = self._composed_series()
        assert len(t1) > 0
        assert t1.tobytes() == t2.tobytes()
        assert v1.tobytes() == v2.tobytes()
        assert not np.isnan(v1).any()
