"""Federation registry: N-site establishment, dedup, stitched tunnels."""

import pytest

from repro.core.controller import QuarantinePolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.federation import FederationRegistry
from repro.scenarios.topologies import build_live_federation
from repro.scenarios.vultr import VultrDeployment
from repro.srlg.diversity import FateAwareSelector, max_disjoint_backup


@pytest.fixture(scope="module")
def federation():
    scenario = build_live_federation(4, seed=42)
    registry = FederationRegistry(scenario)
    registry.establish()
    registry.stitch_pair("edge0", "edge1")
    return registry


class TestEstablishment:
    def test_all_pairs_established(self, federation):
        assert federation.state.pair_count == 6
        for session in federation.sessions.values():
            assert session.state is not None
            assert all(session.state.path_counts)

    def test_path_id_blocks_disjoint_across_sessions(self, federation):
        seen: set[int] = set()
        for session in federation.sessions.values():
            ids = {
                t.path_id
                for t in (
                    session.state.tunnels_a_to_b + session.state.tunnels_b_to_a
                )
            }
            assert ids.isdisjoint(seen)
            seen |= ids

    def test_sessions_share_one_snapshot_cache(self, federation):
        caches = {id(s.snapshots) for s in federation.sessions.values()}
        assert caches == {id(federation.snapshots)}

    def test_shared_cache_beats_independent_baseline(self, federation):
        shared = federation.snapshot_stats()
        baseline = FederationRegistry(
            build_live_federation(4, seed=42), share_snapshots=False
        )
        baseline.establish()
        independent = baseline.snapshot_stats()
        baseline.stop()
        assert shared["hit_rate"] >= 0.5
        assert shared["hit_rate"] > independent["hit_rate"]

    def test_degraded_pair_has_single_direct_path(self, federation):
        session = federation.session_for("edge0", "edge1")
        # Both endpoints single-homed to the same transit: no disjoint
        # direct alternative exists by construction.
        assert len(session.state.tunnels_a_to_b) == 1

    def test_calibrated_wan_link_per_tunnel(self, federation):
        for (a, b), session in federation.sessions.items():
            for t in session.state.tunnels_a_to_b:
                link = federation.wan_link(a, b, t.short_label)
                assert link.name == f"{a}->{b}:{t.short_label}"
                cal = federation.calibrations_for(a, b)[t.short_label]
                assert cal.base_ms > 0

    def test_member_links_unknown_member_rejected(self, federation):
        with pytest.raises(ValueError, match="not a federation member"):
            federation.member_links("tokyo")

    def test_establish_twice_rejected(self, federation):
        with pytest.raises(RuntimeError, match="already established"):
            federation.establish()


class TestStitchedTunnel:
    def test_stitched_route_joins_direction(self, federation):
        tunnels = federation.direction_tunnels("edge0", "edge1")
        assert len(tunnels) == 2
        stitched = tunnels[-1]
        assert stitched.short_label.startswith("via-")
        assert stitched.path_id % 64 != 0

    def test_stitched_srlgs_union_segments_plus_relay_fate(self, federation):
        result = federation.stitches[("edge0", "edge1")]
        relay = result.plan.relay
        expected = (
            result.plan.seg1.srlgs
            | result.plan.seg2.srlgs
            | {f"member:{relay}"}
        )
        assert result.tunnel.srlgs == expected

    def test_stitched_wire_coordinates_are_segment_one(self, federation):
        result = federation.stitches[("edge0", "edge1")]
        assert result.tunnel.remote_endpoint == result.plan.seg1.remote_endpoint
        assert result.tunnel.sport != result.plan.seg1.sport

    def test_relay_binding_installed_at_relay_switch(self, federation):
        from repro.dataplane.relay import RelayForwardProgram

        result = federation.stitches[("edge0", "edge1")]
        switch = federation.switches[result.plan.relay]
        programs = [
            p
            for p in switch.ingress_programs
            if isinstance(p, RelayForwardProgram)
        ]
        assert len(programs) == 1
        assert result.tunnel.path_id in programs[0].bound_ids
        # Must run before the gateway receiver terminates the packet.
        assert switch.ingress_programs[0] is programs[0]

    def test_stitched_calibration_composes_segments(self, federation):
        result = federation.stitches[("edge0", "edge1")]
        cal = federation.calibrations_for("edge0", "edge1")[
            result.tunnel.short_label
        ]
        assert cal.base_ms == pytest.approx(
            result.plan.composed_base_delay_s * 1e3
        )

    def test_composed_link_sees_segment_loss_live(self, federation):
        from repro.netsim.links import OverrideLoss

        result = federation.stitches[("edge0", "edge1")]
        link = result.link
        assert link.loss.loss_probability(0.0) == pytest.approx(0.0)
        saved = link.seg2.loss
        try:
            link.seg2.loss = OverrideLoss.blackhole(saved, 0.0, 10.0)
            assert link.loss.loss_probability(5.0) == pytest.approx(1.0)
        finally:
            link.seg2.loss = saved

    def test_second_stitch_for_same_direction_rejected(self, federation):
        with pytest.raises(ValueError, match="already has a stitched"):
            federation.stitch_pair("edge0", "edge1")

    def test_relay_cannot_be_an_endpoint(self, federation):
        with pytest.raises(ValueError, match="endpoint of the pair"):
            federation.plan_relay("edge2", "edge3", relay="edge2")


class TestSrlgParticipation:
    def test_stitched_is_max_disjoint_backup_of_direct(self, federation):
        direct, stitched = federation.direction_tunnels("edge0", "edge1")
        backup = max_disjoint_backup(direct, [direct, stitched])
        assert backup is stitched

    def test_fate_aware_selector_filters_dead_relay(self, federation):
        class Grab:
            seen = None

            def select(self, tunnels, packet, now):
                self.seen = list(tunnels)
                return tunnels[0]

        direct, stitched = federation.direction_tunnels("edge0", "edge1")
        result = federation.stitches[("edge0", "edge1")]
        inner = Grab()
        selector = FateAwareSelector(inner, federation.srlg)
        group = f"member:{result.plan.relay}"
        federation.srlg.mark_down(group)
        try:
            chosen = selector.select([direct, stitched], packet=None, now=0.0)
        finally:
            federation.srlg.clear_down(group)
        assert chosen is direct
        assert inner.seen == [direct]  # the dead relay never reached policy


class TestLiveFailover:
    def test_relay_outage_quarantines_stitched_within_budget(self):
        scenario = build_live_federation(4, seed=42)
        registry = FederationRegistry(scenario)
        registry.establish()
        result = registry.stitch_pair("edge0", "edge1")
        relay = result.plan.relay
        registry.start_telemetry()
        registry.start_control_plane(
            focus=[("edge0", "edge1")],
            staleness_s=0.5,
            quarantine=QuarantinePolicy(unhealthy_ticks=1),
        )
        registry.start_traffic("edge0", "edge1")
        registry.start_traffic("edge0", relay)
        registry.start_traffic(relay, "edge1")
        plan = FaultPlan(
            name="kill-relay",
            events=(
                FaultEvent(
                    "relay_outage",
                    at=2.0,
                    duration=2.0,
                    params={"member": relay},
                ),
            ),
        )
        FaultInjector(registry, plan).arm()
        registry.sim.run(until=6.0)
        log = registry.controllers["edge0"].quarantine_log
        hits = [
            ev
            for ev in log
            if ev.path_id == result.tunnel.path_id
            and ev.action == "quarantine"
            and ev.t >= 2.0
        ]
        assert hits, "stitched tunnel never quarantined after relay kill"
        assert hits[0].t - 2.0 <= 0.5 + 2 * 0.1  # one telemetry horizon
        # The relay's fate tag held the tunnel out of probation while down.
        assert any(
            ev.cause == "srlg-down"
            for ev in log
            if ev.path_id == result.tunnel.path_id
        )
        registry.stop()
        registry.stop()  # teardown is defensive: double-stop is a no-op

    def test_relay_outage_needs_a_federation(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        plan = FaultPlan(
            name="bad",
            events=(
                FaultEvent(
                    "relay_outage",
                    at=1.0,
                    duration=1.0,
                    params={"member": "ny"},
                ),
            ),
        )
        with pytest.raises(ValueError, match="federation deployment"):
            FaultInjector(deployment, plan).arm()


class TestTelemetryScoping:
    def test_mirrors_scoped_to_session_ids_plus_stitched(self):
        scenario = build_live_federation(3, seed=7)
        registry = FederationRegistry(scenario)
        registry.establish()
        result = registry.stitch_pair("edge0", "edge1")
        registry.start_telemetry()
        session = registry.session_for("edge0", "edge1")
        mirror, _ = session.mirror_to("edge0")
        expected = {
            t.path_id for t in session.state.tunnels_a_to_b
        } | {result.tunnel.path_id}
        assert mirror.path_ids == expected
        other = registry.session_for("edge0", "edge2")
        other_mirror, _ = other.mirror_to("edge0")
        assert result.tunnel.path_id not in other_mirror.path_ids
        registry.stop()
