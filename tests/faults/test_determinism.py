"""Replay determinism: the property the whole subsystem is built on.

Two layers: the :class:`OverrideLoss` wrapper as a pure function of
``(seed, t, nonce)``, and a full packet-level deployment where replaying
one plan with one seed must drop exactly the same packets.
"""

from hypothesis import given, strategies as st

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.netsim.links import ConstantLoss, OverrideLoss
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment


class TestOverrideLossProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        t=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        nonce=st.integers(min_value=0, max_value=10_000),
    )
    def test_drops_is_a_pure_function(self, seed, t, nonce):
        loss = OverrideLoss.burst(ConstantLoss(0.0), 10.0, 20.0, rate=0.5, seed=9)
        assert loss.drops(seed, t, nonce) == loss.drops(seed, t, nonce)

    @given(t=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_outside_windows_delegates_to_inner(self, t):
        inner = ConstantLoss(0.3)
        loss = OverrideLoss.burst(inner, 10.0, 20.0, rate=0.9, seed=9)
        if not 10.0 <= t < 20.0:
            assert loss.drops(7, t, 1) == inner.drops(7, t, 1)
            assert loss.loss_probability(t) == inner.loss_probability(t)

    @given(
        t=st.floats(min_value=10.0, max_value=19.999, allow_nan=False),
        nonce=st.integers(min_value=0, max_value=1000),
    )
    def test_blackhole_window_always_drops(self, t, nonce):
        loss = OverrideLoss.blackhole(ConstantLoss(0.0), 10.0, 20.0)
        assert loss.drops(0, t, nonce)
        assert loss.loss_probability(t) == 1.0


def run_campaign(plan_seed):
    """One fresh deployment + burst plan; returns per-packet outcomes."""
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    plan = FaultPlan(
        name="burst",
        seed=plan_seed,
        events=(
            # NTT is the default path, so the un-steered data stream
            # below rides straight through the burst.
            FaultEvent(
                "loss_burst",
                at=1.0,
                duration=2.0,
                params={"src": "ny", "path": "NTT", "rate": 0.5},
            ),
        ),
    )
    FaultInjector(deployment, plan).arm()

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    sent = []
    delivered = []

    def emit():
        packet = factory.build()
        packet.meta["n"] = len(sent)
        sent.append(packet)
        send(packet)

    def on_delivery(packet, now):
        if packet.flow_label == 9:
            delivered.append((packet.meta["n"], round(now, 9)))

    deployment.hosts["la"]._on_packet = on_delivery
    deployment.sim.call_every(0.005, emit)
    deployment.net.run(until=4.0)
    return len(sent), delivered


class TestCampaignReplay:
    def test_same_seed_drops_exactly_the_same_packets(self):
        count1, outcome1 = run_campaign(plan_seed=42)
        count2, outcome2 = run_campaign(plan_seed=42)
        assert count1 == count2
        assert outcome1 == outcome2
        # The burst actually bit: some packets were dropped.
        assert len(outcome1) < count1

    def test_different_seed_drops_different_packets(self):
        _, outcome1 = run_campaign(plan_seed=42)
        _, outcome2 = run_campaign(plan_seed=43)
        assert outcome1 != outcome2
