"""Tests for declarative fault plans."""

import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultPlan


def blackhole(at=5.0, duration=2.0, src="ny", path="GTT"):
    return FaultEvent(
        "link_blackhole", at=at, duration=duration, params={"src": src, "path": path}
    )


class TestFaultEvent:
    def test_known_kinds(self):
        assert "link_blackhole" in FAULT_KINDS
        assert "clock_step" in FAULT_KINDS
        assert "telemetry_loss" in FAULT_KINDS
        assert "controller_crash" in FAULT_KINDS
        assert "demand_surge" in FAULT_KINDS
        assert "telemetry_tamper" in FAULT_KINDS
        assert "telemetry_replay" in FAULT_KINDS
        assert "gray_loss" in FAULT_KINDS
        assert "clock_drift" in FAULT_KINDS
        assert "srlg_failure" in FAULT_KINDS
        assert "regional_outage" in FAULT_KINDS
        assert "maintenance_window" in FAULT_KINDS
        assert "relay_outage" in FAULT_KINDS
        assert len(FAULT_KINDS) == 19

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("gamma_ray", at=1.0, duration=1.0)

    def test_negative_onset_rejected(self):
        with pytest.raises(ValueError, match="onset"):
            blackhole(at=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            blackhole(duration=-1.0)

    def test_zero_duration_blackhole_rejected(self):
        with pytest.raises(ValueError, match="positive duration"):
            blackhole(duration=0.0)

    def test_permanent_clock_step_allowed(self):
        event = FaultEvent(
            "clock_step", at=1.0, params={"edge": "ny", "step_ms": 5.0}
        )
        assert event.duration == 0.0
        assert event.end == 1.0

    def test_missing_params_rejected(self):
        with pytest.raises(ValueError, match="missing parameter"):
            FaultEvent("link_blackhole", at=1.0, duration=1.0, params={"src": "ny"})

    def test_end(self):
        assert blackhole(at=5.0, duration=2.0).end == 7.0

    def test_target_strings(self):
        assert blackhole().target == "ny:GTT"
        assert (
            FaultEvent(
                "bgp_session_down", at=0.0, duration=1.0, params={"a": "x", "b": "y"}
            ).target
            == "x~y"
        )
        assert (
            FaultEvent(
                "prefix_withdraw",
                at=0.0,
                duration=1.0,
                params={"edge": "la", "prefix_index": 2},
            ).target
            == "la:route[2]"
        )
        assert (
            FaultEvent(
                "telemetry_drop", at=0.0, duration=1.0, params={"edge": "ny"}
            ).target
            == "ny"
        )

    def test_params_copied(self):
        params = {"src": "ny", "path": "GTT"}
        event = blackhole()
        params["path"] = "Telia"
        assert event.params["path"] == "GTT"


class TestFaultPlan:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            FaultPlan(name="", events=())

    def test_timeline_sorted_by_onset(self):
        late, early = blackhole(at=9.0), blackhole(at=1.0)
        plan = FaultPlan(name="p", events=(late, early))
        assert plan.timeline == (early, late)
        assert plan.events == (late, early)  # authoring order preserved

    def test_timeline_ties_keep_authoring_order(self):
        a, b = blackhole(at=3.0, path="GTT"), blackhole(at=3.0, path="Telia")
        plan = FaultPlan(name="p", events=(a, b))
        assert plan.timeline == (a, b)

    def test_horizon(self):
        plan = FaultPlan(
            name="p", events=(blackhole(at=1.0, duration=2.0), blackhole(at=4.0))
        )
        assert plan.horizon == 6.0
        assert FaultPlan(name="empty", events=()).horizon == 0.0

    def test_json_roundtrip(self):
        plan = FaultPlan(
            name="demo",
            seed=42,
            events=(
                blackhole(),
                FaultEvent(
                    "loss_burst",
                    at=8.0,
                    duration=1.5,
                    params={"src": "la", "path": "Telia", "rate": 0.4},
                ),
            ),
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_to_json_is_stable(self):
        plan = FaultPlan(name="demo", seed=1, events=(blackhole(),))
        assert plan.to_json() == plan.to_json()
        assert "\n" not in plan.to_json()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="'events' must be a list"):
            FaultPlan.from_json('{"name": "x", "events": 3}')
        with pytest.raises(ValueError, match="missing field"):
            FaultPlan.from_json('{"name": "x", "events": [{"at": 1.0}]}')

    def test_from_file(self, tmp_path):
        plan = FaultPlan(name="demo", seed=9, events=(blackhole(),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(str(path)) == plan
