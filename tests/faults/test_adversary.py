"""Unit tests: on-path adversary stages (tamper, replay, gray loss)."""

import pytest

from repro.faults.adversary import (
    AdversaryChain,
    GrayLoss,
    TelemetryReplay,
    TelemetryTamper,
)
from repro.netsim.packet import Packet, TangoHeader


def tango_packet(timestamp_ns=1_000_000, seq=0, path_id=2, tag=b"\x01" * 8):
    return Packet(
        headers=[
            TangoHeader(
                timestamp_ns=timestamp_ns, seq=seq, path_id=path_id, auth_tag=tag
            )
        ]
    )


def no_inject(packet):
    raise AssertionError("unexpected injection")


class TestTelemetryTamper:
    def test_bias_applied_tag_kept_stale(self):
        stage = TelemetryTamper(start=1.0, end=2.0, bias_s=0.012)
        packet = tango_packet(timestamp_ns=5_000_000, tag=b"\xaa" * 8)
        out = stage.process(packet, 1.5, no_inject)
        assert out is packet
        assert out.tango.timestamp_ns == 5_000_000 + 12_000_000
        # The stale MAC survives verbatim: under auth this is a forgery.
        assert out.tango.auth_tag == b"\xaa" * 8
        assert stage.tampered == 1

    def test_inactive_outside_window(self):
        stage = TelemetryTamper(start=1.0, end=2.0, bias_s=0.012)
        before = tango_packet(timestamp_ns=7)
        assert stage.process(before, 0.5, no_inject).tango.timestamp_ns == 7
        at_end = tango_packet(timestamp_ns=7)
        assert stage.process(at_end, 2.0, no_inject).tango.timestamp_ns == 7
        assert stage.tampered == 0

    def test_non_tango_packet_untouched(self):
        stage = TelemetryTamper(start=0.0, end=9.0, bias_s=0.012)
        plain = Packet(headers=[])
        assert stage.process(plain, 1.0, no_inject) is plain


class TestTelemetryReplay:
    def test_replays_only_aged_copies(self):
        stage = TelemetryReplay(start=0.0, end=99.0, delay_s=1.0, every=2)
        injected = []
        t = 0.0
        seq = 0
        while t < 3.0:
            stage.process(
                tango_packet(timestamp_ns=int(t * 1e9), seq=seq),
                t,
                injected.append,
            )
            seq += 1
            t = round(t + 0.1, 10)
        assert stage.replayed == len(injected) > 0
        for copy in injected:
            # Byte-identical aged capture: valid tag, stale timestamp.
            assert copy.tango.auth_tag == b"\x01" * 8
        # Every injected copy was at least delay_s old when re-injected:
        # the first eligible capture is the t=0 packet, replayable only
        # once now >= 1.0 — so nothing injected before that.
        assert injected[0].tango.timestamp_ns == 0

    def test_replay_is_a_distinct_packet(self):
        stage = TelemetryReplay(start=0.0, end=99.0, delay_s=0.5, every=1)
        injected = []
        original = tango_packet(seq=7)
        stage.process(original, 0.0, injected.append)
        stage.process(tango_packet(seq=8), 1.0, injected.append)
        assert len(injected) == 1
        assert injected[0] is not original
        assert injected[0].tango.seq == 7

    def test_validation(self):
        with pytest.raises(ValueError, match="delay"):
            TelemetryReplay(0.0, 1.0, delay_s=0.0, every=2)
        with pytest.raises(ValueError, match="cadence"):
            TelemetryReplay(0.0, 1.0, delay_s=1.0, every=0)
        with pytest.raises(ValueError, match="window"):
            TelemetryTamper(start=2.0, end=1.0, bias_s=0.01)


class TestGrayLoss:
    def run_window(self, stage, count, t0=1.0, dt=0.01, path_id=2):
        survivors = []
        for i in range(count):
            out = stage.process(
                tango_packet(seq=i, path_id=path_id),
                t0 + i * dt,
                no_inject,
            )
            if out is not None:
                survivors.append(out)
        return survivors

    def test_drops_near_rate_and_hides_gap(self):
        stage = GrayLoss(start=0.0, end=99.0, rate=0.3, seed=11)
        survivors = self.run_window(stage, 500)
        assert stage.dropped == 500 - len(survivors)
        assert 0.2 < stage.dropped / 500 < 0.4
        # The receiver-visible sequence is perfectly contiguous: every
        # survivor's seq was rewritten down by the hidden count so far.
        seqs = [p.tango.seq for p in survivors]
        assert seqs == list(range(len(survivors)))

    def test_rewrite_persists_past_window_end(self):
        """If survivors reverted to true seq when dropping stops, the
        hidden gap would surface as one visible burst at window end."""
        stage = GrayLoss(start=0.0, end=2.0, rate=1.0, seed=3)
        assert self.run_window(stage, 10, t0=1.0, dt=0.01) == []
        after = stage.process(tango_packet(seq=10), 5.0, no_inject)
        assert after.tango.seq == 0

    def test_hidden_counts_are_per_path(self):
        stage = GrayLoss(start=0.0, end=99.0, rate=1.0, seed=5)
        assert stage.process(tango_packet(seq=0, path_id=1), 1.0, no_inject) is None
        stage.end = 1.5  # close the window; only rewrites remain
        other = stage.process(tango_packet(seq=4, path_id=3), 2.0, no_inject)
        assert other.tango.seq == 4  # path 3 lost nothing
        victim = stage.process(tango_packet(seq=4, path_id=1), 2.0, no_inject)
        assert victim.tango.seq == 3

    def test_deterministic_across_replays(self):
        a = GrayLoss(0.0, 99.0, rate=0.4, seed=21)
        b = GrayLoss(0.0, 99.0, rate=0.4, seed=21)
        kept_a = [p.tango.seq for p in self.run_window(a, 200)]
        kept_b = [p.tango.seq for p in self.run_window(b, 200)]
        assert kept_a == kept_b
        c = GrayLoss(0.0, 99.0, rate=0.4, seed=22)
        assert [p.tango.seq for p in self.run_window(c, 200)] != kept_a

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            GrayLoss(0.0, 1.0, rate=1.5, seed=0)


class TestAdversaryChain:
    class FakeLink:
        def __init__(self):
            self.interceptor = None

    def test_install_on_is_idempotent(self):
        link = self.FakeLink()
        chain = AdversaryChain.install_on(link)
        assert link.interceptor is chain
        assert AdversaryChain.install_on(link) is chain

    def test_stages_compose_in_order(self):
        chain = AdversaryChain()
        chain.add(TelemetryTamper(0.0, 9.0, bias_s=0.010))
        chain.add(GrayLoss(0.0, 9.0, rate=0.0, seed=0))
        out = chain.process(tango_packet(timestamp_ns=0), 1.0, no_inject)
        assert out.tango.timestamp_ns == 10_000_000

    def test_consuming_stage_short_circuits(self):
        chain = AdversaryChain()
        eater = GrayLoss(0.0, 9.0, rate=1.0, seed=0)
        tail = TelemetryTamper(0.0, 9.0, bias_s=0.010)
        chain.add(eater)
        chain.add(tail)
        assert chain.process(tango_packet(), 1.0, no_inject) is None
        assert tail.tampered == 0
