"""Tests for the demand_surge fault kind (fluid traffic engine)."""

import pytest

from repro.core.policy import StaticSelector
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.lint import check_fault_plan, vultr_spec
from repro.scenarios.vultr import VultrDeployment
from repro.traffic.demand import DemandModel, FlowClass
from repro.traffic.fluid import FluidEngine


def surge_event(at=1.0, duration=2.0, factor=3.0, **extra):
    params = {"edge": "ny", "factor": factor, **extra}
    return FaultEvent("demand_surge", at=at, duration=duration, params=params)


def plan_of(*events, seed=0):
    return FaultPlan(name="surge-test", events=tuple(events), seed=seed)


def fluid_deployment(offered_bps=1e9):
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.set_data_policy("ny", StaticSelector(0))
    demand = DemandModel(
        classes=(
            FlowClass(
                name="bulk",
                flow_label=1,
                arrival_rate_per_s=offered_bps / 1e6,
                mean_size_bytes=125_000.0,
                rate_bps=1e6,
            ),
        ),
        seed=5,
    )
    engine = FluidEngine(deployment, "ny", demand)
    return deployment, engine


class TestPlanValidation:
    def test_params_required(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(
                "demand_surge", at=1.0, duration=1.0, params={"edge": "ny"}
            )
        with pytest.raises(ValueError, match="edge"):
            FaultEvent(
                "demand_surge", at=1.0, duration=1.0, params={"factor": 2.0}
            )

    def test_duration_required(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(
                "demand_surge",
                at=1.0,
                params={"edge": "ny", "factor": 2.0},
            )

    def test_json_round_trip(self):
        plan = plan_of(surge_event(factor=2.5, flow_label=1))
        replayed = FaultPlan.from_json(plan.to_json())
        assert replayed.events[0].params["factor"] == 2.5
        assert replayed.events[0].params["flow_label"] == 1


class TestLint:
    def test_valid_plan_is_clean(self):
        assert check_fault_plan(plan_of(surge_event()), vultr_spec()) == []

    def test_unknown_edge_flagged(self):
        plan = plan_of(surge_event(edge="sf"))
        findings = check_fault_plan(plan, vultr_spec())
        assert any("unknown edge" in f.message for f in findings)

    def test_nonpositive_factor_flagged(self):
        findings = check_fault_plan(
            plan_of(surge_event(factor=0.0)), vultr_spec()
        )
        assert any("factor must be > 0" in f.message for f in findings)

    def test_non_numeric_factor_flagged(self):
        findings = check_fault_plan(
            plan_of(surge_event(factor="huge")), vultr_spec()
        )
        assert any("not a number" in f.message for f in findings)


class TestInjection:
    def test_arm_requires_attached_engine(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        injector = FaultInjector(deployment, plan_of(surge_event()))
        with pytest.raises(LookupError, match="no traffic engine"):
            injector.arm()

    def test_arm_rejects_nonpositive_factor(self):
        deployment, _engine = fluid_deployment()
        injector = FaultInjector(deployment, plan_of(surge_event(factor=-1.0)))
        with pytest.raises(ValueError, match="factor must be > 0"):
            injector.arm()

    def test_surge_window_installed_on_demand_model(self):
        deployment, engine = fluid_deployment()
        FaultInjector(
            deployment, plan_of(surge_event(at=1.0, duration=2.0, factor=3.0))
        ).arm()
        assert engine.demand.surge_factor(1, 0.5) == 1.0
        assert engine.demand.surge_factor(1, 1.5) == 3.0
        assert engine.demand.surge_factor(1, 3.0) == 1.0

    def test_surge_raises_offered_load_within_window(self):
        deployment, engine = fluid_deployment(offered_bps=1e9)
        FaultInjector(
            deployment, plan_of(surge_event(at=1.0, duration=1.0, factor=3.0))
        ).arm()
        engine.start()
        sim = deployment.sim

        sim.run(until=1.0)
        base = engine.last_loads[0].offered_bps
        sim.run(until=1.6)
        surged = engine.last_loads[0].offered_bps
        sim.run(until=3.5)
        settled = engine.last_loads[0].offered_bps

        # The surge scales the instantaneous rate, so load responds
        # within a step, then settles back once the window closes.
        assert surged > 2.0 * base
        assert settled < 1.6 * base

    def test_label_targeted_surge_leaves_other_classes_alone(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        deployment.set_data_policy("ny", StaticSelector(0))
        demand = DemandModel(
            classes=(
                FlowClass(
                    name="a",
                    flow_label=1,
                    arrival_rate_per_s=100.0,
                    mean_size_bytes=125_000.0,
                    rate_bps=1e6,
                ),
                FlowClass(
                    name="b",
                    flow_label=2,
                    arrival_rate_per_s=100.0,
                    mean_size_bytes=125_000.0,
                    rate_bps=1e6,
                ),
            ),
            seed=5,
        )
        FluidEngine(deployment, "ny", demand)
        FaultInjector(
            deployment, plan_of(surge_event(factor=4.0, flow_label=2))
        ).arm()
        assert demand.surge_factor(1, 1.5) == 1.0
        assert demand.surge_factor(2, 1.5) == 4.0

    def test_replay_determinism(self):
        def run():
            deployment, engine = fluid_deployment(offered_bps=9.6e9)
            FaultInjector(
                deployment, plan_of(surge_event(at=1.0, duration=1.0, factor=2.0))
            ).arm()
            engine.start()
            deployment.sim.run(until=3.0)
            return engine.split_trace, engine.concurrency_trace

        assert run() == run()
