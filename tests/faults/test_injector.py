"""Tests for arming fault plans on a live deployment."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.netsim.links import OverrideLoss
from repro.scenarios.vultr import VultrDeployment


def deployment():
    d = VultrDeployment(include_events=False)
    d.establish()
    return d


def plan_of(*events, seed=0):
    return FaultPlan(name="test", events=tuple(events), seed=seed)


def blackhole(at=2.0, duration=1.0, src="ny", path="GTT"):
    return FaultEvent(
        "link_blackhole", at=at, duration=duration, params={"src": src, "path": path}
    )


class TestArming:
    def test_requires_established_deployment(self):
        d = VultrDeployment(include_events=False)
        with pytest.raises(RuntimeError, match="established"):
            FaultInjector(d, plan_of(blackhole()))

    def test_arm_only_once(self):
        d = deployment()
        injector = FaultInjector(d, plan_of(blackhole()))
        assert injector.arm() == 1
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_past_events_rejected(self):
        d = deployment()
        d.sim.clock.advance_to(5.0)
        injector = FaultInjector(d, plan_of(blackhole(at=2.0)))
        with pytest.raises(ValueError, match="in the past"):
            injector.arm()

    def test_armed_describes_events(self):
        d = deployment()
        injector = FaultInjector(d, plan_of(blackhole()))
        injector.arm()
        assert injector.armed == ["link_blackhole ny:GTT at=2"]


class TestLinkFaults:
    def test_blackhole_overrides_loss_in_window(self):
        d = deployment()
        link = d.wan_link("ny", "GTT")
        baseline = link.loss
        FaultInjector(d, plan_of(blackhole(at=2.0, duration=1.0))).arm()
        assert isinstance(link.loss, OverrideLoss)
        assert link.loss.inner is baseline
        assert link.loss.loss_probability(2.5) == 1.0
        assert link.loss.loss_probability(1.9) == baseline.loss_probability(1.9)
        assert link.loss.loss_probability(3.1) == baseline.loss_probability(3.1)

    def test_flap_alternates_within_window(self):
        d = deployment()
        link = d.wan_link("ny", "Telia")
        event = FaultEvent(
            "link_flap",
            at=10.0,
            duration=4.0,
            params={"src": "ny", "path": "Telia", "period": 2.0, "duty": 0.5},
        )
        FaultInjector(d, plan_of(event)).arm()
        assert link.loss.loss_probability(10.5) == 1.0  # down phase
        assert link.loss.loss_probability(11.5) == 0.0  # up phase
        assert link.loss.loss_probability(12.5) == 1.0  # down again

    def test_burst_uses_per_event_seed(self):
        d1, d2 = deployment(), deployment()
        event = FaultEvent(
            "loss_burst",
            at=1.0,
            duration=2.0,
            params={"src": "ny", "path": "GTT", "rate": 0.5},
        )
        FaultInjector(d1, plan_of(event, seed=7)).arm()
        FaultInjector(d2, plan_of(event, seed=8)).arm()
        loss1 = d1.wan_link("ny", "GTT").loss
        loss2 = d2.wan_link("ny", "GTT").loss
        draws1 = [loss1.drops(0, 1.0 + i * 1e-3, i) for i in range(400)]
        draws2 = [loss2.drops(0, 1.0 + i * 1e-3, i) for i in range(400)]
        assert draws1 != draws2  # plan seed decorrelates the burst
        assert 0.3 < np.mean(draws1) < 0.7

    def test_delay_spike_adds_extra_ms_inside_window(self):
        d = deployment()
        link = d.wan_link("ny", "GTT")
        before = link.delay.delays(np.array([5.5, 7.5]))
        event = FaultEvent(
            "delay_spike",
            at=5.0,
            duration=1.0,
            params={"src": "ny", "path": "GTT", "extra_ms": 30.0},
        )
        FaultInjector(d, plan_of(event)).arm()
        after = link.delay.delays(np.array([5.5, 7.5]))
        assert after[0] == pytest.approx(before[0] + 0.030)
        assert after[1] == pytest.approx(before[1])  # outside the window


class TestControlPlaneFaults:
    def test_bgp_session_down_and_restore(self):
        d = deployment()
        tenant = d.pairing.edge("la").tenant_router
        provider = d.pairing.edge("la").provider_router
        config = d.bgp.session_config(tenant, provider)
        event = FaultEvent(
            "bgp_session_down",
            at=1.0,
            duration=2.0,
            params={"a": tenant, "b": provider},
        )
        FaultInjector(d, plan_of(event)).arm()

        ny_link = d.wan_link("ny", "GTT")
        baseline = ny_link.loss
        d.net.run(until=1.5)
        # LA's routes vanished from the core: NY's tunnels toward LA are
        # blackholed at the data plane.
        with pytest.raises(KeyError):
            d.bgp.session_config(tenant, provider)
        assert ny_link.loss is not baseline
        assert ny_link.loss.loss_probability(1.5) == 1.0

        d.net.run(until=3.5)
        assert d.bgp.session_config(tenant, provider) == config
        assert ny_link.loss is baseline

    def test_prefix_withdraw_blackholes_matching_tunnel(self):
        d = deployment()
        # NY's tunnel over GTT terminates at one of LA's route prefixes.
        target = d.wan_link("ny", "GTT")
        tunnel = next(
            t for t in d.tunnels("ny") if t.short_label == "GTT"
        )
        index = list(d.pairing.edge("la").route_prefixes).index(
            tunnel.remote_prefix
        )
        event = FaultEvent(
            "prefix_withdraw",
            at=1.0,
            duration=2.0,
            params={"edge": "la", "prefix_index": index},
        )
        baseline = target.loss
        FaultInjector(d, plan_of(event)).arm()

        d.net.run(until=1.5)
        assert target.loss is not baseline
        assert target.loss.loss_probability(1.5) == 1.0
        d.net.run(until=3.5)
        assert target.loss is baseline
        # Re-announcement restored reachability.
        assert d.bgp.reachable(
            d.pairing.edge("ny").tenant_router, str(tunnel.remote_prefix)
        )

    def test_prefix_withdraw_index_out_of_range(self):
        d = deployment()
        event = FaultEvent(
            "prefix_withdraw",
            at=1.0,
            duration=2.0,
            params={"edge": "la", "prefix_index": 99},
        )
        with pytest.raises(ValueError, match="out of range"):
            FaultInjector(d, plan_of(event)).arm()

    def test_telemetry_drop_silences_mirror(self):
        d = deployment()
        # Probes from LA are measured by NY's inbound store and mirrored
        # back into LA's outbound store by the mirror *to* la.
        d.start_path_probes("la")
        event = FaultEvent(
            "telemetry_drop", at=2.0, duration=2.0, params={"edge": "la"}
        )
        FaultInjector(d, plan_of(event)).arm()
        mirror, task = d.session.mirror_to("la")
        pid = d.tunnels("la")[0].path_id

        d.net.run(until=2.5)
        assert task.paused
        grown_to = len(d.gateway("la").outbound.series(pid))
        assert grown_to > 0  # mirror ran before the fault hit
        d.net.run(until=3.9)
        assert len(d.gateway("la").outbound.series(pid)) == grown_to

        d.net.run(until=6.0)
        assert not task.paused
        assert len(d.gateway("la").outbound.series(pid)) > grown_to
        assert mirror.samples_discarded > 0

    def test_clock_step_applies_and_reverts(self):
        d = deployment()
        switch = d.switches["ny"]
        base = switch.clock.offset
        event = FaultEvent(
            "clock_step",
            at=1.0,
            duration=2.0,
            params={"edge": "ny", "step_ms": 5.0},
        )
        FaultInjector(d, plan_of(event)).arm()
        d.net.run(until=1.5)
        assert switch.clock.offset == pytest.approx(base + 0.005)
        d.net.run(until=3.5)
        assert switch.clock.offset == pytest.approx(base)

    def test_permanent_clock_step_never_reverts(self):
        d = deployment()
        switch = d.switches["ny"]
        base = switch.clock.offset
        event = FaultEvent(
            "clock_step", at=1.0, params={"edge": "ny", "step_ms": -3.0}
        )
        FaultInjector(d, plan_of(event)).arm()
        d.net.run(until=10.0)
        assert switch.clock.offset == pytest.approx(base - 0.003)
