"""Integration: a mid-run blackhole on the active tunnel.

The headline robustness claim (ISSUE acceptance criteria): with the
quarantine-enabled controller, a blackholed active path is detected via
staleness, evicted, and user traffic rerouted within bounded ticks —
MTTR well under 2 simulated seconds, versus BGP's ~180 s convergence —
and the path is restored after backoff once the fault clears.
"""

import pytest

from repro.bgp.network import CONVERGENCE_DELAY_S
from repro.cli import main
from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.policy import LowestDelaySelector
from repro.faults import FaultEvent, FaultInjector, FaultPlan, RecoveryLog
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment

FAIL_AT = 5.0
FAIL_FOR = 5.0


def run_blackhole_campaign():
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    deployment.start_path_probes("ny")
    # GTT is the calibrated-best ny->la path, so the adaptive selector
    # pins the data stream to it — the blackhole hits the active tunnel.
    deployment.set_data_policy(
        "ny", LowestDelaySelector(deployment.gateway("ny").outbound, window_s=1.0)
    )
    controller = TangoController(
        deployment.gateway("ny"),
        deployment.sim,
        interval_s=0.1,
        staleness_s=0.5,
        quarantine=QuarantinePolicy(),
    )
    controller.start()

    factory = PacketFactory(
        src=str(deployment.pairing.a.host_address(4)),
        dst=str(deployment.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = deployment.sender_for("ny")
    deployment.sim.call_every(0.02, lambda: send(factory.build()))

    plan = FaultPlan(
        name="active-blackhole",
        seed=11,
        events=(
            FaultEvent(
                "link_blackhole",
                at=FAIL_AT,
                duration=FAIL_FOR,
                params={"src": "ny", "path": "GTT"},
            ),
        ),
    )
    FaultInjector(deployment, plan).arm()
    deployment.net.run(until=20.0)
    return deployment, controller, plan


class TestActivePathBlackhole:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_blackhole_campaign()

    def test_active_path_was_the_faulted_one(self, campaign):
        _, controller, _ = campaign
        gtt = next(
            t.path_id
            for t in controller.gateway.tunnel_table.all_tunnels()
            if t.short_label == "GTT"
        )
        times = controller.choice_trace.times
        values = controller.choice_trace.values
        before = [c for t, c in zip(times, values) if 2.0 < t < FAIL_AT]
        assert set(before) == {float(gtt)}

    def test_quarantined_and_rerouted_within_mttr_bound(self, campaign):
        _, controller, plan = campaign
        log = RecoveryLog.build(plan, {"ny": controller})
        record = log.records[0]
        assert record.detected_at is not None, "blackhole was never detected"
        assert record.rerouted_at is not None, "traffic was never rerouted"
        assert record.reroute_s < 2.0
        assert log.mttr() < 2.0
        assert log.mttr() < CONVERGENCE_DELAY_S / 50
        assert log.detected_count == 1

    def test_restored_after_backoff_once_fault_cleared(self, campaign):
        _, controller, plan = campaign
        log = RecoveryLog.build(plan, {"ny": controller})
        record = log.records[0]
        assert record.restored_at is not None
        assert record.restored_at >= FAIL_AT + FAIL_FOR
        gtt = next(
            q.path_id for q in controller.quarantine_log if q.label == "GTT"
        )
        assert controller.quarantine_state(gtt) == "healthy"
        assert gtt not in controller.quarantined

    def test_backoff_doubles_between_requarantines(self, campaign):
        _, controller, _ = campaign
        backoffs = [
            q.backoff_s
            for q in controller.quarantine_log
            if q.action == "quarantine" and q.label == "GTT"
        ]
        assert len(backoffs) >= 2
        for earlier, later in zip(backoffs, backoffs[1:]):
            assert later == pytest.approx(earlier * 2)

    def test_fallback_never_engaged(self, campaign):
        _, controller, _ = campaign
        # Only one of four paths failed: the guarded selector always had
        # healthy candidates, so BGP-best fallback stayed off.
        assert not controller.fallback_active
        assert all(
            q.action not in ("fallback-on", "fallback-off")
            for q in controller.quarantine_log
        )


class TestCliByteIdentical:
    def test_same_plan_same_seed_identical_logs(self, tmp_path, capsys):
        plan = FaultPlan(
            name="ci-blackhole",
            seed=5,
            events=(
                FaultEvent(
                    "link_blackhole",
                    at=3.0,
                    duration=3.0,
                    params={"src": "ny", "path": "GTT"},
                ),
            ),
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())

        outputs = []
        for run in (1, 2):
            out_path = tmp_path / f"log{run}.txt"
            assert (
                main(
                    [
                        "faults",
                        "run",
                        "--plan",
                        str(plan_path),
                        "--seed",
                        "5",
                        "--duration",
                        "12",
                        "--transitions",
                        "--out",
                        str(out_path),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            outputs.append(out_path.read_bytes())
        assert outputs[0] == outputs[1]
        text = outputs[0].decode()
        assert "link_blackhole ny:GTT" in text
        assert "# transitions" in text
