"""Tests for recovery records and deterministic log rendering."""

import pytest

from repro.faults import FaultEvent, FaultPlan
from repro.faults.recovery import RecoveryLog, RecoveryRecord


def blackhole(at=5.0, duration=2.0):
    return FaultEvent(
        "link_blackhole",
        at=at,
        duration=duration,
        params={"src": "ny", "path": "GTT"},
    )


class TestRecoveryRecord:
    def test_derived_timings(self):
        record = RecoveryRecord(
            kind="link_blackhole",
            target="ny:GTT",
            at=5.0,
            cleared=10.0,
            detected_at=5.7,
            rerouted_at=5.8,
            restored_at=13.5,
        )
        assert record.detection_s == pytest.approx(0.7)
        assert record.reroute_s == pytest.approx(0.8)
        assert record.repair_s == pytest.approx(3.5)

    def test_missing_timings_render_as_dashes(self):
        record = RecoveryRecord(
            kind="telemetry_drop", target="ny", at=16.0, cleared=18.0
        )
        assert record.detection_s is None
        assert record.as_line() == (
            "telemetry_drop ny 16.000000 18.000000 - - - - - -"
        )

    def test_as_line_fixed_precision(self):
        record = RecoveryRecord(
            kind="link_blackhole",
            target="ny:GTT",
            at=1.0,
            cleared=2.0,
            detected_at=1.25,
        )
        assert record.as_line() == (
            "link_blackhole ny:GTT 1.000000 2.000000 1.250000 - - 0.250000 - -"
        )


class TestRecoveryLog:
    def log_of(self, *records):
        plan = FaultPlan(name="p", events=(blackhole(),))
        return RecoveryLog(plan, list(records))

    def test_mttr_means_over_detected_path_faults(self):
        log = self.log_of(
            RecoveryRecord(
                "link_blackhole", "ny:GTT", 5.0, 7.0,
                detected_at=5.5, rerouted_at=5.6,
            ),
            RecoveryRecord(
                "loss_burst", "ny:Telia", 8.0, 9.0,
                detected_at=8.5, rerouted_at=9.0,
            ),
            RecoveryRecord("link_flap", "la:GTT", 1.0, 3.0),  # undetected
        )
        assert log.mttr() == pytest.approx((0.6 + 1.0) / 2)
        assert log.detected_count == 2
        assert log.path_fault_count == 3

    def test_mttr_none_when_nothing_rerouted(self):
        log = self.log_of(
            RecoveryRecord("link_blackhole", "ny:GTT", 5.0, 7.0)
        )
        assert log.mttr() is None
        assert "mttr_s=-" in log.format()

    def test_format_structure(self):
        log = self.log_of(
            RecoveryRecord(
                "link_blackhole", "ny:GTT", 5.0, 7.0,
                detected_at=5.5, rerouted_at=5.6, restored_at=8.0,
            )
        )
        text = log.format()
        lines = text.splitlines()
        assert lines[0] == "# tango-repro fault recovery log"
        assert lines[1] == "# plan=p seed=0 events=1"
        assert lines[2].startswith("# columns: kind target")
        assert lines[3].startswith("link_blackhole ny:GTT")
        assert lines[4] == "# mttr_s=0.600000 detected=1/1"
        assert text.endswith("\n")

    def test_format_is_deterministic(self):
        log = self.log_of(
            RecoveryRecord(
                "link_blackhole", "ny:GTT", 5.0, 7.0, detected_at=5.5
            )
        )
        assert log.format() == log.format()
