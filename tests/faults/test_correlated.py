"""Correlated fault kinds: SRLG failures, regional outages, maintenance."""

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan, RecoveryLog
from repro.faults.plan import maintenance_drain_s
from repro.scenarios.vultr import VultrDeployment


def deployment():
    d = VultrDeployment(include_events=False)
    d.establish()
    return d


def plan_of(*events, seed=0):
    return FaultPlan(name="test", events=tuple(events), seed=seed)


def srlg_failure(at=2.0, duration=2.0, group="socal-conduit"):
    return FaultEvent(
        "srlg_failure", at=at, duration=duration, params={"group": group}
    )


class TestSrlgFailure:
    def test_all_member_links_fail_together(self):
        d = deployment()
        members = d.srlg.link_members("socal-conduit")
        # Both directions of both conduit paths are members.
        assert len(members) == 4
        links = [d.net.links[name] for name in members]
        baselines = [link.loss for link in links]
        FaultInjector(d, plan_of(srlg_failure(at=2.0, duration=2.0))).arm()
        for link, baseline in zip(links, baselines):
            assert link.loss.loss_probability(2.5) == 1.0
            assert link.loss.loss_probability(1.9) == baseline.loss_probability(1.9)
            assert link.loss.loss_probability(4.1) == baseline.loss_probability(4.1)

    def test_registry_marked_down_for_the_window(self):
        d = deployment()
        FaultInjector(d, plan_of(srlg_failure(at=2.0, duration=2.0))).arm()
        assert d.srlg.state("socal-conduit") == "up"
        d.net.run(until=2.5)
        assert d.srlg.state("socal-conduit") == "down"
        d.net.run(until=4.5)
        assert d.srlg.state("socal-conduit") == "up"

    def test_unknown_group_rejected_at_arm(self):
        d = deployment()
        event = srlg_failure(group="atlantis-cable")
        with pytest.raises(ValueError, match="atlantis-cable"):
            FaultInjector(d, plan_of(event)).arm()

    def test_target_names_the_group(self):
        assert srlg_failure().target == "group:socal-conduit"


class TestRegionalOutage:
    def event(self, at=2.0, duration=2.0, region="socal"):
        return FaultEvent(
            "regional_outage", at=at, duration=duration, params={"region": region}
        )

    def test_links_and_sessions_fail_together(self):
        d = deployment()
        region = d.srlg.region("socal")
        member = d.srlg.link_members(region.groups[0])[0]
        link = d.net.links[member]
        router = region.routers[0]
        neighbor = sorted(d.bgp.router(router).neighbors)[0]
        FaultInjector(d, plan_of(self.event(at=2.0, duration=2.0))).arm()

        d.net.run(until=2.5)
        assert link.loss.loss_probability(2.5) == 1.0
        with pytest.raises(KeyError):
            d.bgp.session_config(router, neighbor)
        assert d.srlg.state(region.groups[0]) == "down"

        d.net.run(until=5.0)
        assert d.bgp.session_config(router, neighbor) is not None
        assert d.srlg.state(region.groups[0]) == "up"

    def test_unknown_region_rejected_at_arm(self):
        d = deployment()
        with pytest.raises(LookupError, match="mars"):
            FaultInjector(d, plan_of(self.event(region="mars"))).arm()


class TestMaintenanceWindow:
    def event(self, at=2.0, duration=2.0, drain_s=0.5, group="socal-conduit"):
        return FaultEvent(
            "maintenance_window",
            at=at,
            duration=duration,
            params={"group": group, "drain_s": drain_s},
        )

    def test_drain_then_fail(self):
        d = deployment()
        member = d.srlg.link_members("socal-conduit")[0]
        link = d.net.links[member]
        FaultInjector(d, plan_of(self.event(at=2.0, duration=2.0, drain_s=0.5))).arm()

        d.net.run(until=2.2)  # inside the drain: advertised, not failed
        assert d.srlg.state("socal-conduit") == "draining"
        assert link.loss.loss_probability(2.2) != 1.0

        d.net.run(until=3.0)  # drain elapsed: hard down
        assert d.srlg.state("socal-conduit") == "down"
        assert link.loss.loss_probability(3.0) == 1.0

        d.net.run(until=4.5)
        assert d.srlg.state("socal-conduit") == "up"

    def test_default_drain_derived_from_duration(self):
        short = FaultEvent(
            "maintenance_window", at=1.0, duration=0.6,
            params={"group": "g"},
        )
        assert maintenance_drain_s(short) == pytest.approx(0.3)
        long = FaultEvent(
            "maintenance_window", at=1.0, duration=4.0,
            params={"group": "g"},
        )
        assert maintenance_drain_s(long) == pytest.approx(0.5)

    def test_drain_must_fit_inside_the_window(self):
        d = deployment()
        with pytest.raises(ValueError, match="drain"):
            FaultInjector(
                d, plan_of(self.event(duration=1.0, drain_s=1.5))
            ).arm()


class TestGroupRecovery:
    def test_group_records_attribute_per_affected_tunnel(self):
        from repro.core.controller import QuarantinePolicy, TangoController

        d = deployment()
        d.start_path_probes("ny", interval_s=0.05)
        controller = TangoController(
            d.gateway("ny"),
            d.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
        )
        d.attach_controller("ny", controller)
        controller.start()
        plan = plan_of(srlg_failure(at=2.0, duration=3.0))
        FaultInjector(d, plan).arm()
        d.net.run(until=8.0)

        log = RecoveryLog.build(plan, {"ny": controller})
        targets = sorted(r.target for r in log.records)
        # Telia and GTT share the conduit; one attributed record each.
        assert targets == [
            "group:socal-conduit/ny:GTT",
            "group:socal-conduit/ny:Telia",
        ]
        assert all(r.detected_at is not None for r in log.records)
        assert log.path_fault_count == 2
        # Replaying the identical plan renders identical bytes.
        assert log.format() == RecoveryLog.build(plan, {"ny": controller}).format()

    def test_untagged_controllers_fall_back_to_untimed_record(self):
        plan = plan_of(srlg_failure())
        log = RecoveryLog.build(plan, {})
        assert len(log.records) == 1
        assert log.records[0].target == "group:socal-conduit"
        assert log.records[0].detected_at is None
