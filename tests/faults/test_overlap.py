"""Overlapping fault windows on one target must not double-revert.

Control-plane faults save-and-restore live state, so two windows
covering the same target used to race: the first window to end restored
the saved state while the second was still supposed to hold it down.
The injector now refcounts holds per target — state is saved once when
the first window opens and restored once when the *last* window closes.
"""

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.scenarios.vultr import VultrDeployment


def deployment():
    d = VultrDeployment(include_events=False)
    d.establish()
    return d


def plan_of(*events, seed=0):
    return FaultPlan(name="overlap", events=tuple(events), seed=seed)


class TestBgpSessionOverlap:
    def session_down(self, at, duration, a, b):
        return FaultEvent(
            "bgp_session_down", at=at, duration=duration, params={"a": a, "b": b}
        )

    def test_session_restored_only_after_last_window(self):
        d = deployment()
        tenant = d.pairing.edge("la").tenant_router
        provider = d.pairing.edge("la").provider_router
        config = d.bgp.session_config(tenant, provider)
        FaultInjector(
            d,
            plan_of(
                self.session_down(1.0, 3.0, tenant, provider),
                self.session_down(2.0, 1.0, tenant, provider),
            ),
        ).arm()

        # Inner window ended at 3.0, but the outer one holds until 4.0.
        d.net.run(until=3.5)
        with pytest.raises(KeyError):
            d.bgp.session_config(tenant, provider)

        d.net.run(until=4.5)
        assert d.bgp.session_config(tenant, provider) == config

    def test_overlap_is_order_independent(self):
        d = deployment()
        tenant = d.pairing.edge("la").tenant_router
        provider = d.pairing.edge("la").provider_router
        config = d.bgp.session_config(tenant, provider)
        # Same windows, listed inner-first.
        FaultInjector(
            d,
            plan_of(
                self.session_down(2.0, 1.0, tenant, provider),
                self.session_down(1.0, 3.0, tenant, provider),
            ),
        ).arm()
        d.net.run(until=3.5)
        with pytest.raises(KeyError):
            d.bgp.session_config(tenant, provider)
        d.net.run(until=4.5)
        assert d.bgp.session_config(tenant, provider) == config


class TestTelemetryDropOverlap:
    def drop(self, at, duration):
        return FaultEvent(
            "telemetry_drop", at=at, duration=duration, params={"edge": "la"}
        )

    def test_mirror_resumes_only_after_last_window(self):
        d = deployment()
        d.start_path_probes("la")
        FaultInjector(d, plan_of(self.drop(1.0, 3.0), self.drop(2.0, 1.0))).arm()
        _, task = d.session.mirror_to("la")

        d.net.run(until=3.5)  # inner window over, outer still holding
        assert task.paused
        d.net.run(until=4.5)
        assert not task.paused


class TestPrefixWithdrawOverlap:
    def withdraw(self, at, duration, index=0):
        return FaultEvent(
            "prefix_withdraw",
            at=at,
            duration=duration,
            params={"edge": "la", "prefix_index": index},
        )

    def test_reannounced_only_after_last_window(self):
        d = deployment()
        prefix = list(d.pairing.edge("la").route_prefixes)[0]
        tenant = d.pairing.edge("ny").tenant_router
        FaultInjector(
            d, plan_of(self.withdraw(1.0, 3.0), self.withdraw(2.0, 1.0))
        ).arm()

        d.net.run(until=3.5)
        assert not d.bgp.reachable(tenant, str(prefix))
        d.net.run(until=4.5)
        assert d.bgp.reachable(tenant, str(prefix))


class TestSrlgOverlap:
    def test_group_stays_down_until_last_window_clears(self):
        d = deployment()
        FaultInjector(
            d,
            plan_of(
                FaultEvent(
                    "srlg_failure", at=1.0, duration=3.0,
                    params={"group": "socal-conduit"},
                ),
                FaultEvent(
                    "srlg_failure", at=2.0, duration=1.0,
                    params={"group": "socal-conduit"},
                ),
            ),
        ).arm()
        d.net.run(until=3.5)
        assert d.srlg.state("socal-conduit") == "down"
        d.net.run(until=4.5)
        assert d.srlg.state("socal-conduit") == "up"
