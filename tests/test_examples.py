"""Smoke tests: every shipped example runs to completion and prints its
headline output.  Examples are documentation that executes; these tests
keep them from rotting."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "discovered paths" in out
        assert "NTT Cogent" in out
        assert "clock-offset" in out

    def test_adaptive_failover(self, capsys):
        out = run_example("adaptive_failover.py", capsys)
        assert "Telia" in out  # the detour
        assert "path switches" in out

    def test_tango_of_n(self, capsys):
        out = run_example("tango_of_n.py", capsys)
        assert "Tango of N" in out
        assert "edge0->edge3" in out

    @pytest.mark.slow
    def test_drone_analytics(self, capsys):
        out = run_example("drone_analytics.py", capsys)
        assert "deadline performance" in out
        assert "tango" in out

    @pytest.mark.slow
    def test_secure_telemetry(self, capsys):
        out = run_example("secure_telemetry.py", capsys)
        assert "forgery" in out
        assert "rejected_forgeries" in out

    @pytest.mark.slow
    def test_network_slicing(self, capsys):
        out = run_example("network_slicing.py", capsys)
        assert "per-slice outcome" in out
        assert "bulk" in out


def test_examples_dir_is_complete():
    """Every example on disk has a smoke test above."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {
        "quickstart.py",
        "adaptive_failover.py",
        "tango_of_n.py",
        "drone_analytics.py",
        "secure_telemetry.py",
        "network_slicing.py",
    }
    assert on_disk == tested
