"""Tests for pairing establishment and telemetry mirroring.

Uses the Vultr deployment as the canonical pairing (it is the paper's own
setup and exercises every establishment step).
"""

import numpy as np
import pytest

from repro.core.session import TelemetryMirror
from repro.scenarios.vultr import VultrDeployment
from repro.telemetry.store import MeasurementStore


@pytest.fixture(scope="module")
def deployment():
    d = VultrDeployment(include_events=False)
    d.establish()
    return d


class TestEstablishment:
    def test_four_tunnels_per_direction(self, deployment):
        state = deployment.state
        assert state.path_counts == (4, 4)

    def test_route_prefixes_pinned_after_establishment(self, deployment):
        """Each remote route prefix is reachable over its own path."""
        bgp = deployment.bgp
        la = deployment.pairing.b
        observed = []
        for prefix in la.route_prefixes:
            path = bgp.best_path("tango-ny", prefix)
            assert path is not None
            observed.append(path.without(20473).strip_private().asns)
        assert len(set(observed)) == 4  # four distinct transit views

    def test_host_prefixes_reachable_via_default(self, deployment):
        bgp = deployment.bgp
        assert bgp.reachable("tango-ny", deployment.pairing.b.host_prefix)
        assert bgp.reachable("tango-la", deployment.pairing.a.host_prefix)

    def test_tunnels_installed_in_gateways(self, deployment):
        assert len(deployment.gateway_ny.tunnel_table) == 4
        assert len(deployment.gateway_la.tunnel_table) == 4

    def test_direction_bases_disjoint(self, deployment):
        ids_ab = {t.path_id for t in deployment.state.tunnels_a_to_b}
        ids_ba = {t.path_id for t in deployment.state.tunnels_b_to_a}
        assert ids_ab.isdisjoint(ids_ba)

    def test_gateway_mismatch_rejected(self, deployment):
        from repro.core.session import TangoSession

        with pytest.raises(ValueError, match="gateway_a"):
            TangoSession(
                deployment.pairing,
                deployment.bgp,
                deployment.gateway_la,  # swapped
                deployment.gateway_ny,
                deployment.sim,
            )


class TestTelemetryMirror:
    def test_copies_new_samples(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.extend(1, np.asarray([0.0, 1.0]), np.asarray([0.03, 0.031]))
        mirror = TelemetryMirror(source, sink, latency_s=0.0)
        assert mirror.sync(now=2.0) == 2
        np.testing.assert_array_equal(sink.series(1).values, [0.03, 0.031])

    def test_incremental_no_duplicates(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.record(1, 0.0, 0.03)
        mirror = TelemetryMirror(source, sink)
        mirror.sync(1.0)
        source.record(1, 1.5, 0.031)
        mirror.sync(2.0)
        assert len(sink.series(1)) == 2
        assert mirror.samples_mirrored == 2

    def test_latency_horizon_respected(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.record(1, 0.0, 0.03)
        source.record(1, 0.95, 0.031)
        mirror = TelemetryMirror(source, sink, latency_s=0.1)
        mirror.sync(now=1.0)  # horizon = 0.9: second sample too fresh
        assert len(sink.series(1)) == 1
        mirror.sync(now=1.1)
        assert len(sink.series(1)) == 2

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TelemetryMirror(MeasurementStore(), MeasurementStore(), latency_s=-1.0)

    def test_multiple_paths_mirrored(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.record(1, 0.0, 0.03)
        source.record(2, 0.0, 0.04)
        TelemetryMirror(source, sink).sync(1.0)
        assert sink.path_ids() == [1, 2]


class TestLiveMirroring:
    def test_outbound_stores_fed_from_peer(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()
        deployment.start_path_probes("ny", interval_s=0.02)
        deployment.net.run(until=1.0)
        outbound = deployment.gateway_ny.outbound
        assert len(outbound.path_ids()) == 4
        # Mirrored values equal what LA measured.
        inbound = deployment.gateway_la.inbound
        for path_id in outbound.path_ids():
            mirrored = outbound.series(path_id).values
            measured = inbound.series(path_id).values[: mirrored.size]
            np.testing.assert_array_equal(mirrored, measured)


class TestDiscardBefore:
    def test_pending_samples_dropped(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.extend(1, np.asarray([0.0, 1.0, 2.0]), np.full(3, 0.03))
        mirror = TelemetryMirror(source, sink, latency_s=0.0)
        assert mirror.discard_before(1.5) == 2
        assert mirror.samples_discarded == 2
        mirror.sync(now=3.0)
        np.testing.assert_array_equal(sink.series(1).times, [2.0])

    def test_already_copied_samples_unaffected(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.record(1, 0.0, 0.03)
        mirror = TelemetryMirror(source, sink, latency_s=0.0)
        mirror.sync(now=1.0)
        assert mirror.discard_before(0.5) == 0
        assert len(sink.series(1)) == 1

    def test_never_rewinds(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.extend(1, np.asarray([0.0, 1.0]), np.full(2, 0.03))
        mirror = TelemetryMirror(source, sink, latency_s=0.0)
        mirror.discard_before(5.0)
        assert mirror.discard_before(0.1) == 0  # cursor stays put
        mirror.sync(now=10.0)
        assert len(sink.series(1)) == 0

    def test_empty_mirror_discards_nothing(self):
        mirror = TelemetryMirror(MeasurementStore(), MeasurementStore())
        assert mirror.discard_before(100.0) == 0
        assert mirror.samples_discarded == 0

    def test_discard_all_pending(self):
        source, sink = MeasurementStore(), MeasurementStore()
        source.extend(1, np.asarray([0.0, 1.0, 2.0]), np.full(3, 0.03))
        source.extend(2, np.asarray([0.5, 1.5]), np.full(2, 0.04))
        mirror = TelemetryMirror(source, sink, latency_s=0.0)
        assert mirror.discard_before(10.0) == 5
        mirror.sync(now=20.0)
        assert sink.path_ids() == []

    def test_exact_boundary_timestamp_survives(self):
        """discard_before(t) is half-open: a sample at exactly t stays."""
        source, sink = MeasurementStore(), MeasurementStore()
        source.extend(1, np.asarray([0.0, 1.0, 2.0]), np.full(3, 0.03))
        mirror = TelemetryMirror(source, sink, latency_s=0.0)
        assert mirror.discard_before(1.0) == 1  # only the t=0 sample
        mirror.sync(now=3.0)
        np.testing.assert_array_equal(sink.series(1).times, [1.0, 2.0])


class TestMirrorRegistry:
    def test_mirror_to_returns_feeding_mirror(self, deployment):
        mirror, task = deployment.session.mirror_to("ny")
        assert mirror.sink is deployment.gateway("ny").outbound
        assert not task.paused

    def test_unknown_edge_raises(self, deployment):
        with pytest.raises(KeyError, match="no mirror"):
            deployment.session.mirror_to("chicago")

    def test_stop_clears_registry(self):
        d = VultrDeployment(include_events=False)
        d.establish()
        d.session.stop()
        with pytest.raises(KeyError):
            d.session.mirror_to("ny")

    def test_stop_is_idempotent(self):
        """Registry teardown stops sessions defensively: repeat stops
        (and stops on a never-started session) must be no-ops."""
        d = VultrDeployment(include_events=False)
        d.establish()
        d.session.start_telemetry_mirrors()
        d.session.stop()
        d.session.stop()  # second stop: nothing left, must not raise
        fresh = VultrDeployment(include_events=False)
        fresh.establish()
        fresh.session.stop()  # never started mirrors: also a no-op
