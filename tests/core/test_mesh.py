"""Tests for Tango-of-N meshes."""

import pytest

from repro.core.mesh import MeshPath, MeshRoute, TangoMesh


def triangle(relay_overhead=0.0002):
    """a--b, b--c, a--c mesh where relaying a->b->c beats direct a->c."""
    mesh = TangoMesh(relay_overhead_s=relay_overhead)
    for name in ("a", "b", "c"):
        mesh.add_member(name)
    mesh.add_paths("a", "c", [("slow", 0.080), ("slower", 0.090)])
    mesh.add_paths("a", "b", [("fast", 0.020)])
    mesh.add_paths("b", "c", [("fast", 0.020)])
    return mesh


class TestConstruction:
    def test_members_sorted(self):
        mesh = triangle()
        assert mesh.members() == ["a", "b", "c"]

    def test_unknown_member_rejected(self):
        mesh = TangoMesh()
        mesh.add_member("a")
        with pytest.raises(KeyError):
            mesh.add_paths("a", "ghost", [("x", 0.01)])

    def test_self_pair_rejected(self):
        mesh = TangoMesh()
        mesh.add_member("a")
        with pytest.raises(ValueError):
            mesh.add_paths("a", "a", [("x", 0.01)])

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            MeshPath(src="a", dst="b", label="x", delay_s=-1.0)


class TestRoutes:
    def test_direct_only_without_relays(self):
        mesh = triangle()
        routes = mesh.routes("a", "c", max_relays=0)
        assert len(routes) == 2
        assert all(len(r.hops) == 1 for r in routes)

    def test_relay_route_found_and_wins(self):
        mesh = triangle()
        best = mesh.best_route("a", "c", max_relays=1)
        assert best.relays == ("b",)
        assert best.total_delay_s == pytest.approx(0.020 + 0.020 + 0.0002)

    def test_relay_overhead_charged_per_relay(self):
        cheap = triangle(relay_overhead=0.0)
        costly = triangle(relay_overhead=0.050)
        assert cheap.best_route("a", "c").relays == ("b",)
        # 50 ms per relay makes the direct path win again.
        assert costly.best_route("a", "c").relays == ()

    def test_routes_sorted_best_first(self):
        mesh = triangle()
        routes = mesh.routes("a", "c", max_relays=1)
        delays = [r.total_delay_s for r in routes]
        assert delays == sorted(delays)

    def test_diversity_counts_combinations(self):
        mesh = triangle()
        assert mesh.diversity("a", "c", max_relays=0) == 2
        assert mesh.diversity("a", "c", max_relays=1) == 3

    def test_unreachable_pair(self):
        mesh = TangoMesh()
        mesh.add_member("a")
        mesh.add_member("b")
        assert mesh.best_route("a", "b") is None
        assert mesh.routes("a", "b") == []

    def test_missing_leg_skips_relay(self):
        """A relay without a session to the destination is not used."""
        mesh = TangoMesh()
        for name in ("a", "b", "c"):
            mesh.add_member(name)
        mesh.add_paths("a", "b", [("x", 0.01)])
        mesh.add_paths("a", "c", [("y", 0.05)])
        # no b->c paths
        routes = mesh.routes("a", "c", max_relays=1)
        assert all(r.relays == () for r in routes)


class TestDiversityGain:
    def test_gain_vs_bgp_default(self):
        mesh = triangle()
        # direct default = 0.080; best relayed = 0.0402
        assert mesh.diversity_gain("a", "c", max_relays=1) == pytest.approx(
            0.080 - 0.0402
        )

    def test_gain_zero_when_default_optimal(self):
        mesh = TangoMesh()
        mesh.add_member("a")
        mesh.add_member("b")
        mesh.add_paths("a", "b", [("best", 0.010), ("worse", 0.020)])
        assert mesh.diversity_gain("a", "b") == 0.0

    def test_gain_zero_when_unreachable(self):
        mesh = TangoMesh()
        mesh.add_member("a")
        mesh.add_member("b")
        assert mesh.diversity_gain("a", "b") == 0.0


class TestMeshRoute:
    def test_label_renders_hops(self):
        route = MeshRoute(
            hops=(
                MeshPath("a", "b", "NTT", 0.02),
                MeshPath("b", "c", "GTT", 0.02),
            ),
            relay_overhead_s=0.0,
        )
        assert route.label == "a->b:NTT | b->c:GTT"
        assert route.src == "a"
        assert route.dst == "c"
