"""Tests for forwarding policies (path selectors)."""

import ipaddress

import pytest

from repro.core.policy import (
    ApplicationSelector,
    GuardedSelector,
    HysteresisSelector,
    JitterAwareSelector,
    LossAwareSelector,
    LowestDelaySelector,
    StaticSelector,
)
from repro.core.tunnels import TangoTunnel
from repro.dataplane.seqnum import SequenceTracker
from repro.netsim.packet import Ipv6Header, Packet
from repro.telemetry.loss import LossMonitor
from repro.telemetry.store import MeasurementStore


def tunnel(path_id):
    return TangoTunnel(
        path_id=path_id,
        label=f"p{path_id}",
        local_endpoint=ipaddress.IPv6Address(f"2001:db8:a{path_id}::1"),
        remote_endpoint=ipaddress.IPv6Address(f"2001:db8:b{path_id}::1"),
        remote_prefix=ipaddress.IPv6Network(f"2001:db8:b{path_id}::/48"),
    )


TUNNELS = [tunnel(i) for i in range(3)]


def packet(flow=0):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::1"),
                dst=ipaddress.IPv6Address("2001:db8:20::1"),
            )
        ],
        flow_label=flow,
    )


def store_with(means: dict[int, float], now=10.0, n=50, spread=0.0, seed=0):
    """Samples in the last second before `now` with given means."""
    import numpy as np

    store = MeasurementStore()
    times = now - 1.0 + np.arange(n) / n
    rng = np.random.default_rng(seed)
    for path_id, mean in means.items():
        noise = rng.normal(0.0, spread, n) if spread else np.zeros(n)
        store.extend(path_id, times, np.full(n, mean) + noise)
    return store


class TestStaticSelector:
    def test_always_same_tunnel(self):
        selector = StaticSelector(1)
        for _ in range(5):
            assert selector.select(TUNNELS, packet(), 0.0).path_id == 1

    def test_out_of_range_loud(self):
        with pytest.raises(IndexError):
            StaticSelector(9).select(TUNNELS, packet(), 0.0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            StaticSelector(-1)


class TestLowestDelaySelector:
    def test_picks_lowest_mean(self):
        store = store_with({0: 0.036, 1: 0.033, 2: 0.028})
        selector = LowestDelaySelector(store, window_s=1.0)
        assert selector.select(TUNNELS, packet(), 10.0).path_id == 2

    def test_fallback_when_no_measurements(self):
        selector = LowestDelaySelector(MeasurementStore(), window_s=1.0)
        assert selector.select(TUNNELS, packet(), 10.0).path_id == 0

    def test_partial_measurements_considered(self):
        store = store_with({1: 0.033})
        selector = LowestDelaySelector(store, window_s=1.0)
        assert selector.select(TUNNELS, packet(), 10.0).path_id == 1

    def test_tracks_decision_and_switch_counts(self):
        store = store_with({0: 0.030, 1: 0.040})
        selector = LowestDelaySelector(store, window_s=1.0)
        selector.select(TUNNELS, packet(), 10.0)
        # Path 1 becomes better later.
        store.extend(0, [20.0], [0.050])
        store.extend(1, [20.0], [0.020])
        selector.select(TUNNELS, packet(), 20.5)
        assert selector.decisions == 2
        assert selector.switches == 1

    def test_stale_measurements_ignored(self):
        store = store_with({2: 0.001}, now=10.0)
        selector = LowestDelaySelector(store, window_s=1.0)
        # At t=100 the t~10 samples are far outside the window.
        assert selector.select(TUNNELS, packet(), 100.0).path_id == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LowestDelaySelector(MeasurementStore(), window_s=0.0)


class TestHysteresisSelector:
    def test_small_improvement_does_not_switch(self):
        store = store_with({0: 0.0300, 1: 0.0295})
        selector = HysteresisSelector(store, margin_s=0.002, dwell_s=0.0)
        first = selector.select(TUNNELS, packet(), 10.0)
        assert first.path_id == 0  # 0.5 ms < 2 ms margin

    def test_large_improvement_switches(self):
        store = store_with({0: 0.036, 2: 0.028})
        selector = HysteresisSelector(store, margin_s=0.002, dwell_s=0.0)
        assert selector.select(TUNNELS, packet(), 10.0).path_id == 2

    def test_dwell_blocks_rapid_flapping(self):
        store = store_with({0: 0.036, 2: 0.028})
        selector = HysteresisSelector(store, margin_s=0.002, dwell_s=5.0)
        assert selector.select(TUNNELS, packet(), 10.0).path_id == 2
        # Path 0 becomes much better right away...
        store.extend(0, [10.5], [0.010])
        store.extend(2, [10.5], [0.030])
        # ...but we switched at t=10, dwell until t=15.
        assert selector.select(TUNNELS, packet(), 11.0).path_id == 2
        # Once the dwell expires (and fresh data is in the window), the
        # better path is taken.
        store.extend(0, [15.0], [0.010])
        store.extend(2, [15.0], [0.030])
        assert selector.select(TUNNELS, packet(), 15.5).path_id == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HysteresisSelector(MeasurementStore(), margin_s=-1.0)
        with pytest.raises(ValueError):
            HysteresisSelector(MeasurementStore(), dwell_s=-1.0)


class TestJitterAwareSelector:
    def test_prefers_stable_path_at_equal_mean(self):
        """The GTT-vs-Telia choice: same mean, different jitter."""
        store = store_with({0: 0.030}, spread=0.0005, seed=1)
        quiet = store_with({1: 0.030}, spread=0.000005, seed=2)
        for t, v in zip(quiet.series(1).times, quiet.series(1).values):
            store.record(1, t, v)
        selector = JitterAwareSelector(store, jitter_weight=10.0)
        assert selector.select(TUNNELS[:2], packet(), 10.0).path_id == 1

    def test_zero_weight_reduces_to_mean(self):
        store = store_with({0: 0.028, 1: 0.030}, spread=0.0001, seed=3)
        selector = JitterAwareSelector(store, jitter_weight=0.0)
        assert selector.select(TUNNELS[:2], packet(), 10.0).path_id == 0

    def test_fallback_without_data(self):
        selector = JitterAwareSelector(MeasurementStore())
        assert selector.select(TUNNELS, packet(), 0.0).path_id == 0


class TestLossAwareSelector:
    def make(self, means, losses):
        store = store_with(means)
        tracker = SequenceTracker()
        monitor = LossMonitor(tracker)
        for path_id, (received, lost) in losses.items():
            seq = 0
            for _ in range(received):
                tracker.observe(path_id, seq)
                seq += 1
            seq += lost  # skip -> presumed loss
            tracker.observe(path_id, seq)
        monitor.sample(10.0)
        return LossAwareSelector(store, monitor, loss_penalty_s=1.0)

    def test_lossy_fast_path_penalized(self):
        """1% loss at penalty 1.0 ~ 10 ms extra: the 28 ms lossy path
        loses to the clean 33 ms path."""
        selector = self.make(
            means={0: 0.033, 1: 0.028},
            losses={0: (99, 0), 1: (89, 10)},
        )
        assert selector.select(TUNNELS[:2], packet(), 10.0).path_id == 0

    def test_clean_fast_path_wins(self):
        selector = self.make(
            means={0: 0.033, 1: 0.028},
            losses={0: (99, 0), 1: (99, 0)},
        )
        assert selector.select(TUNNELS[:2], packet(), 10.0).path_id == 1


class TestApplicationSelector:
    def test_flow_classes_routed_separately(self):
        selector = ApplicationSelector(
            default=StaticSelector(0), classes={7: StaticSelector(2)}
        )
        assert selector.select(TUNNELS, packet(flow=7), 0.0).path_id == 2
        assert selector.select(TUNNELS, packet(flow=1), 0.0).path_id == 0

    def test_assign_binds_new_class(self):
        selector = ApplicationSelector(default=StaticSelector(0))
        selector.assign(9, StaticSelector(1))
        assert selector.select(TUNNELS, packet(flow=9), 0.0).path_id == 1

    def test_nested_measured_selector(self):
        store = store_with({0: 0.036, 2: 0.028})
        selector = ApplicationSelector(
            default=LowestDelaySelector(store, window_s=1.0),
            classes={5: StaticSelector(0)},
        )
        assert selector.select(TUNNELS, packet(flow=5), 10.0).path_id == 0
        assert selector.select(TUNNELS, packet(flow=1), 10.0).path_id == 2


class TestLastChoice:
    def test_static_selector_reports_its_index(self):
        selector = StaticSelector(1)
        assert selector.last_choice == 1
        selector.select(TUNNELS, packet(), 0.0)
        assert selector.last_choice == 1

    def test_measured_selector_starts_unset(self):
        store = store_with({0: 0.036, 2: 0.028})
        selector = LowestDelaySelector(store, window_s=1.0)
        assert selector.last_choice is None
        selector.select(TUNNELS, packet(), 10.0)
        assert selector.last_choice == 2

    def test_application_selector_mirrors_default(self):
        store = store_with({0: 0.036, 2: 0.028})
        selector = ApplicationSelector(
            default=LowestDelaySelector(store, window_s=1.0),
            classes={5: StaticSelector(0)},
        )
        assert selector.last_choice is None
        # Pinned-class traffic does not disturb the data-plane record.
        selector.select(TUNNELS, packet(flow=5), 10.0)
        assert selector.last_choice is None
        selector.select(TUNNELS, packet(flow=1), 10.0)
        assert selector.last_choice == 2


class TestGuardedSelector:
    def test_transparent_with_no_quarantine(self):
        store = store_with({0: 0.036, 1: 0.033, 2: 0.028})
        guard = GuardedSelector(LowestDelaySelector(store, window_s=1.0))
        assert guard.select(TUNNELS, packet(), 10.0).path_id == 2
        assert guard.last_choice == 2
        assert guard.fallbacks == 0

    def test_quarantined_path_excluded(self):
        store = store_with({0: 0.036, 1: 0.033, 2: 0.028})
        guard = GuardedSelector(
            LowestDelaySelector(store, window_s=1.0), quarantined={2}
        )
        assert guard.select(TUNNELS, packet(), 10.0).path_id == 1
        assert guard.fallbacks == 0

    def test_shared_set_mutations_apply_immediately(self):
        store = store_with({0: 0.036, 1: 0.033, 2: 0.028})
        quarantined = set()
        guard = GuardedSelector(
            LowestDelaySelector(store, window_s=1.0), quarantined=quarantined
        )
        assert guard.select(TUNNELS, packet(), 10.0).path_id == 2
        quarantined.add(2)
        assert guard.select(TUNNELS, packet(), 10.0).path_id == 1
        quarantined.discard(2)
        assert guard.select(TUNNELS, packet(), 10.0).path_id == 2

    def test_all_quarantined_degrades_to_bgp_best(self):
        store = store_with({0: 0.036, 1: 0.033, 2: 0.028})
        guard = GuardedSelector(
            LowestDelaySelector(store, window_s=1.0), quarantined={0, 1, 2}
        )
        assert guard.select(TUNNELS, packet(), 10.0).path_id == 0
        assert guard.fallbacks == 1
        assert guard.last_choice == 0

    def test_static_index_pushed_out_of_range_degrades(self):
        # StaticSelector(2) over a filtered two-candidate list raises
        # IndexError; the guard degrades to BGP-best instead of crashing.
        guard = GuardedSelector(StaticSelector(2), quarantined={0})
        assert guard.select(TUNNELS, packet(), 0.0).path_id == 1
