"""Tests for the tunnel table and tunnel construction."""

import ipaddress

import pytest

from repro.core.discovery import DiscoveredPath
from repro.core.tunnels import TangoTunnel, TunnelTable, bgp_best, build_tunnels
from repro.bgp.attributes import AsPath


def prefixes(hexes):
    return tuple(ipaddress.IPv6Network(f"2001:db8:{h}::/48") for h in hexes)


LOCAL = prefixes(["a0", "a1", "a2", "a3"])
REMOTE = prefixes(["b0", "b1", "b2", "b3"])
HOST = ipaddress.IPv6Network("2001:db8:20::/48")


def paths(n=4):
    labels = [(2914,), (1299,), (3257,), (2914, 174)]
    return tuple(
        DiscoveredPath(
            index=i,
            full_path=AsPath(labels[i]),
            transit_asns=labels[i],
            communities=frozenset(),
        )
        for i in range(n)
    )


class TestBuildTunnels:
    def test_one_tunnel_per_path(self):
        tunnels = build_tunnels(paths(), LOCAL, REMOTE, direction_base=0)
        assert len(tunnels) == 4
        assert [t.path_id for t in tunnels] == [0, 1, 2, 3]

    def test_endpoints_follow_prefix_convention(self):
        tunnels = build_tunnels(paths(), LOCAL, REMOTE, direction_base=0)
        assert str(tunnels[2].local_endpoint) == "2001:db8:a2::1"
        assert str(tunnels[2].remote_endpoint) == "2001:db8:b2::1"
        assert tunnels[2].remote_prefix == REMOTE[2]

    def test_direction_base_offsets_ids(self):
        tunnels = build_tunnels(paths(), LOCAL, REMOTE, direction_base=64)
        assert [t.path_id for t in tunnels] == [64, 65, 66, 67]

    def test_direction_base_must_align(self):
        with pytest.raises(ValueError, match="multiple"):
            build_tunnels(paths(), LOCAL, REMOTE, direction_base=10)

    def test_unique_sports_per_tunnel(self):
        tunnels = build_tunnels(paths(), LOCAL, REMOTE, direction_base=0)
        assert len({t.sport for t in tunnels}) == 4

    def test_insufficient_remote_prefixes_loud_error(self):
        with pytest.raises(ValueError, match="remote route prefixes"):
            build_tunnels(paths(4), LOCAL, REMOTE[:2], direction_base=0)

    def test_insufficient_local_prefixes_loud_error(self):
        with pytest.raises(ValueError, match="local route prefixes"):
            build_tunnels(paths(4), LOCAL[:2], REMOTE, direction_base=0)

    def test_default_path_flag(self):
        tunnels = build_tunnels(paths(), LOCAL, REMOTE, direction_base=64)
        assert tunnels[0].is_default_path
        assert not tunnels[1].is_default_path

    def test_labels_carried(self):
        tunnels = build_tunnels(paths(), LOCAL, REMOTE, direction_base=0)
        assert tunnels[3].label == "NTT Cogent"
        assert tunnels[3].short_label == "Cogent"


class TestTunnelTable:
    def make_table(self):
        table = TunnelTable()
        for tunnel in build_tunnels(paths(), LOCAL, REMOTE, direction_base=0):
            table.add(HOST, tunnel)
        return table

    def test_lookup_by_host_address(self):
        table = self.make_table()
        tunnels = table.tunnels_for(ipaddress.IPv6Address("2001:db8:20::9"))
        assert len(tunnels) == 4

    def test_non_tango_destination_empty(self):
        table = self.make_table()
        assert table.tunnels_for(ipaddress.IPv6Address("2001:db8:99::9")) == []

    def test_by_id(self):
        table = self.make_table()
        assert table.by_id(2).label == "GTT"
        assert table.by_id(99) is None

    def test_duplicate_path_id_rejected(self):
        table = self.make_table()
        tunnel = TangoTunnel(
            path_id=0,
            label="dup",
            local_endpoint=ipaddress.IPv6Address("::1"),
            remote_endpoint=ipaddress.IPv6Address("::2"),
            remote_prefix=REMOTE[0],
        )
        with pytest.raises(ValueError, match="duplicate"):
            table.add(HOST, tunnel)

    def test_all_tunnels_sorted_by_id(self):
        table = self.make_table()
        assert [t.path_id for t in table.all_tunnels()] == [0, 1, 2, 3]

    def test_len_and_prefixes(self):
        table = self.make_table()
        assert len(table) == 4
        assert table.prefixes() == [HOST]


class TestBgpBest:
    def make_tunnels(self, ids):
        return [
            TangoTunnel(
                path_id=i,
                label=f"p{i}",
                local_endpoint=ipaddress.IPv6Address(f"2001:db8:a0::{i + 1}"),
                remote_endpoint=ipaddress.IPv6Address(f"2001:db8:b0::{i + 1}"),
                remote_prefix=REMOTE[0],
            )
            for i in ids
        ]

    def test_prefers_default_path(self):
        tunnels = self.make_tunnels([2, 0, 1])
        assert bgp_best(tunnels).path_id == 0

    def test_lowest_id_when_no_default_in_set(self):
        tunnels = self.make_tunnels([3, 1, 2])  # id 0 filtered out
        assert bgp_best(tunnels).path_id == 1

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="no tunnels"):
            bgp_best([])
