"""Tests for multi-PoP clock calibration (paper footnote 1)."""

import numpy as np
import pytest

from repro.core.multipop import (
    MultiPopStore,
    PopOffsetCalibrator,
    lan_offset_estimate,
)


class TestLanOffset:
    def test_recovers_offset_on_clean_lan(self):
        # True offset +2 ms, LAN delay 0.1 ms each way.
        rtts = np.full(10, 0.0002)
        deltas = np.full(10, 0.002 + 0.0001)
        assert lan_offset_estimate(rtts, deltas) == pytest.approx(0.002)

    def test_min_rtt_filters_queueing(self):
        # One clean sample among congested ones dominates the estimate.
        rtts = np.asarray([0.0050, 0.0002, 0.0080])
        deltas = np.asarray([0.002 + 0.004, 0.002 + 0.0001, 0.002 + 0.007])
        assert lan_offset_estimate(rtts, deltas) == pytest.approx(0.002)

    def test_validation(self):
        with pytest.raises(ValueError):
            lan_offset_estimate(np.asarray([]), np.asarray([]))
        with pytest.raises(ValueError):
            lan_offset_estimate(np.asarray([1.0]), np.asarray([1.0, 2.0]))


class TestPopOffsetCalibrator:
    def test_shared_path_offset_recovered(self):
        """Two PoPs measuring the same path differ exactly by their
        clock-offset difference (at the floor)."""
        calibrator = PopOffsetCalibrator()
        rng = np.random.default_rng(0)
        true_delays = 0.028 + np.abs(rng.normal(0, 0.0005, 500))
        offset_p, offset_q = 0.0030, -0.0010
        for d in true_delays:
            calibrator.observe("P", 7, d + offset_p)
            calibrator.observe("Q", 7, d + offset_q)
        estimate = calibrator.relative_offset("P", "Q", 7)
        assert estimate == pytest.approx(offset_p - offset_q, abs=1e-4)

    def test_known_gap_between_distinct_paths(self):
        calibrator = PopOffsetCalibrator()
        # P's copy of the path is 2 ms longer than Q's (different spans).
        for _ in range(10):
            calibrator.observe("P", 7, 0.030 + 0.003)  # +3 ms offset
            calibrator.observe("Q", 7, 0.028 - 0.001)  # -1 ms offset
        estimate = calibrator.relative_offset("P", "Q", 7, known_gap_s=0.002)
        assert estimate == pytest.approx(0.004, abs=1e-9)

    def test_missing_floor_returns_none(self):
        calibrator = PopOffsetCalibrator()
        calibrator.observe("P", 7, 0.030)
        assert calibrator.relative_offset("P", "Q", 7) is None
        assert calibrator.floor("Q", 7) is None


class TestMultiPopStore:
    def test_normalization_makes_pops_comparable(self):
        """The footnote's requirement, executed: without calibration the
        faster path measured at the skewed PoP looks slower; with it the
        comparison is correct."""
        store = MultiPopStore(reference_pop="pop-a")
        store.set_offset("pop-b", 0.005)  # pop-b clock ahead by 5 ms
        # Path 1 (28 ms true) lands at pop-b; path 2 (30 ms true) at pop-a.
        for i in range(100):
            t = i * 0.01
            store.record("pop-b", 1, t, 0.028 + 0.005)
            store.record("pop-a", 2, t, 0.030)
        means = store.comparable_means(window_s=2.0, now=1.0)
        assert means[1] == pytest.approx(0.028)
        assert means[2] == pytest.approx(0.030)
        assert means[1] < means[2]  # the true ordering, restored

    def test_uncalibrated_pop_is_loud(self):
        store = MultiPopStore(reference_pop="pop-a")
        with pytest.raises(KeyError, match="not calibrated"):
            store.record("pop-z", 1, 0.0, 0.030)

    def test_reference_pop_needs_no_calibration(self):
        store = MultiPopStore(reference_pop="pop-a")
        store.record("pop-a", 1, 0.0, 0.030)
        assert store.offset("pop-a") == 0.0

    def test_end_to_end_with_calibrator(self):
        """Calibrate from shared-sender floors, then normalize."""
        calibrator = PopOffsetCalibrator()
        rng = np.random.default_rng(1)
        offsets = {"pop-a": 0.0, "pop-b": 0.0042}
        for _ in range(300):
            true = 0.028 + abs(rng.normal(0, 0.0003))
            for pop, offset in offsets.items():
                calibrator.observe(pop, 9, true + offset)
        store = MultiPopStore(reference_pop="pop-a")
        store.set_offset(
            "pop-b", calibrator.relative_offset("pop-b", "pop-a", 9)
        )
        store.record("pop-b", 3, 0.0, 0.031 + offsets["pop-b"])
        store.record("pop-a", 4, 0.0, 0.033)
        means = store.comparable_means(window_s=1.0, now=0.5)
        assert means[3] == pytest.approx(0.031, abs=2e-4)
        assert means[3] < means[4]
