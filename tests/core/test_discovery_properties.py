"""Property-based tests for the discovery algorithm on random topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.network import BgpNetwork
from repro.bgp.router import BgpRouter
from repro.core.discovery import PathDiscovery

PROBE = "2001:db8:aa::/48"
TRANSITS = (2914, 1299, 3257, 174, 3356)


def build(observer_links, announcer_links, peer_pairs):
    """Two single-homed edges behind two provider ASes, each provider
    buying transit from a hypothesis-chosen subset of five transits,
    with a hypothesis-chosen transit peering mesh."""
    net = BgpNetwork()
    for asn in TRANSITS:
        net.add_router(BgpRouter(f"t{asn}", asn))
    for i, a in enumerate(TRANSITS):
        for j, b in enumerate(TRANSITS):
            if i < j and ((i * 5 + j) % len(TRANSITS)) in peer_pairs:
                net.add_peering(f"t{a}", f"t{b}")
    net.add_router(BgpRouter("prov-obs", 64700, allowas_in=True))
    net.add_router(BgpRouter("prov-ann", 64701, allowas_in=True))
    net.add_router(BgpRouter("edge-obs", 65100))
    net.add_router(BgpRouter("edge-ann", 65101))
    net.add_provider("edge-obs", "prov-obs")
    net.add_provider("edge-ann", "prov-ann")
    for rank, idx in enumerate(sorted({i % 5 for i in observer_links}), 1):
        net.add_provider(
            "prov-obs", f"t{TRANSITS[idx]}", customer_preference=rank
        )
    for rank, idx in enumerate(sorted({i % 5 for i in announcer_links}), 1):
        net.add_provider(
            "prov-ann", f"t{TRANSITS[idx]}", customer_preference=rank
        )
    return net


topology = st.tuples(
    st.lists(st.integers(0, 9), min_size=1, max_size=4),
    st.lists(st.integers(0, 9), min_size=1, max_size=4),
    st.sets(st.integers(0, 4), min_size=1, max_size=5),
)


class TestDiscoveryProperties:
    @given(topology)
    @settings(max_examples=40, deadline=None)
    def test_paths_are_distinct(self, topo):
        """No two discovered paths share a transit view — suppression
        guarantees progress."""
        observer_links, announcer_links, peer_pairs = topo
        net = build(observer_links, announcer_links, peer_pairs)
        result = PathDiscovery(net, 64701).discover(
            announcer="edge-ann", observer="edge-obs", probe_prefix=PROBE
        )
        views = [p.transit_asns for p in result.paths]
        assert len(set(views)) == len(views)

    @given(topology)
    @settings(max_examples=40, deadline=None)
    def test_path_count_bounded_by_announcer_providers(self, topo):
        """Each round suppresses one export of the announcer's provider,
        so the count never exceeds its transit degree."""
        observer_links, announcer_links, peer_pairs = topo
        net = build(observer_links, announcer_links, peer_pairs)
        degree = len(net.router("prov-ann").neighbors) - 1  # minus the edge
        result = PathDiscovery(net, 64701).discover(
            announcer="edge-ann", observer="edge-obs", probe_prefix=PROBE
        )
        assert result.path_count <= degree

    @given(topology)
    @settings(max_examples=30, deadline=None)
    def test_discovery_restores_control_plane(self, topo):
        """After discovery the probe prefix is fully withdrawn and a
        second run reproduces the identical result."""
        observer_links, announcer_links, peer_pairs = topo
        net = build(observer_links, announcer_links, peer_pairs)
        discovery = PathDiscovery(net, 64701)
        first = discovery.discover(
            announcer="edge-ann", observer="edge-obs", probe_prefix=PROBE
        )
        assert not net.reachable("edge-obs", PROBE)
        second = discovery.discover(
            announcer="edge-ann", observer="edge-obs", probe_prefix=PROBE
        )
        assert [p.transit_asns for p in first.paths] == [
            p.transit_asns for p in second.paths
        ]

    @given(topology)
    @settings(max_examples=30, deadline=None)
    def test_communities_pin_each_path(self, topo):
        """Re-announcing with path i's communities reproduces path i —
        for every discovered path, on every random topology."""
        from repro.bgp.attributes import RouteAttributes

        observer_links, announcer_links, peer_pairs = topo
        net = build(observer_links, announcer_links, peer_pairs)
        result = PathDiscovery(net, 64701).discover(
            announcer="edge-ann", observer="edge-obs", probe_prefix=PROBE
        )
        announcer = net.router("edge-ann")
        for path in result.paths:
            announcer.originate(
                PROBE, RouteAttributes().add_communities(large=path.communities)
            )
            net.converge()
            best = net.router("edge-obs").best_path(PROBE)
            view = best.without(64700).without(64701).strip_private()
            assert view.asns == path.transit_asns
        announcer.withdraw_origination(PROBE)
        net.converge()
