"""Tests for wide-area slicing (token buckets, per-slice routing)."""

import pytest

from repro.core.policy import StaticSelector
from repro.core.slicing import NetworkSlice, SliceManager, TokenBucket
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment


class TestTokenBucket:
    def test_burst_admitted_then_blocked(self):
        bucket = TokenBucket(rate_bps=8000.0, burst_bytes=1000)
        assert bucket.allow(0.0, 600)
        assert bucket.allow(0.0, 400)
        assert not bucket.allow(0.0, 1)

    def test_refill_at_rate(self):
        bucket = TokenBucket(rate_bps=8000.0, burst_bytes=1000)  # 1000 B/s
        bucket.allow(0.0, 1000)
        assert not bucket.allow(0.5, 600)  # only ~500 B refilled
        assert bucket.allow(1.5, 600)

    def test_tokens_capped_at_burst(self):
        bucket = TokenBucket(rate_bps=8_000_000.0, burst_bytes=100)
        bucket.allow(0.0, 0)
        bucket.allow(100.0, 0)  # long idle: still only 100 B available
        assert bucket.allow(100.0, 100)
        assert not bucket.allow(100.0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0.0, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=100.0, burst_bytes=0)


class TestSliceManager:
    def make_manager(self):
        control = NetworkSlice(
            name="control",
            flow_labels=frozenset({1}),
            selector=StaticSelector(2),
        )
        bulk = NetworkSlice(
            name="bulk",
            flow_labels=frozenset({2}),
            selector=StaticSelector(0),
            bucket=TokenBucket(rate_bps=8_000.0, burst_bytes=500),
        )
        default = NetworkSlice(
            name="best-effort",
            flow_labels=frozenset(),
            selector=StaticSelector(0),
        )
        return SliceManager([control, bulk], default), control, bulk, default

    def test_classification(self):
        manager, control, bulk, default = self.make_manager()
        factory = PacketFactory(
            src="2001:db8:10::1", dst="2001:db8:20::1", flow_label=1
        )
        assert manager.slice_for(factory.build()) is control
        factory2 = PacketFactory(
            src="2001:db8:10::1", dst="2001:db8:20::1", flow_label=99
        )
        assert manager.slice_for(factory2.build()) is default

    def test_overlapping_labels_rejected(self):
        a = NetworkSlice("a", frozenset({1}), StaticSelector(0))
        b = NetworkSlice("b", frozenset({1}), StaticSelector(0))
        default = NetworkSlice("d", frozenset(), StaticSelector(0))
        with pytest.raises(ValueError, match="two slices"):
            SliceManager([a, b], default)

    def test_report_rows(self):
        manager, *_ = self.make_manager()
        rows = manager.report()
        assert [r["slice"] for r in rows] == ["control", "bulk", "best-effort"]


class TestSlicedDeployment:
    """End to end on the Vultr deployment: a guaranteed control slice
    pinned to GTT, a metered bulk slice, contention between them."""

    def test_bulk_metered_control_untouched(self):
        deployment = VultrDeployment(include_events=False)
        deployment.establish()

        control = NetworkSlice(
            "control", frozenset({1}), StaticSelector(2)  # pin GTT
        )
        bulk = NetworkSlice(
            "bulk",
            frozenset({2}),
            StaticSelector(0),
            # 128 B packets at 100 pps = ~102 kbit/s offered; cap at half.
            bucket=TokenBucket(rate_bps=51_200.0, burst_bytes=1024),
        )
        default = NetworkSlice("be", frozenset(), StaticSelector(0))
        manager = SliceManager([control, bulk], default)
        gateway = deployment.gateway("ny")
        # Admission must run before the Tango sender program.
        deployment.gw_ny_switch.egress_programs.insert(
            0, manager.admission_program
        )
        gateway.set_selector(manager)

        send = deployment.sender_for("ny")
        for flow in (1, 2):
            factory = PacketFactory(
                src=str(deployment.pairing.a.host_address(flow)),
                dst=str(deployment.pairing.b.host_address(flow)),
                flow_label=flow,
                payload_bytes=80,  # 128 wire bytes
            )
            for i in range(300):
                deployment.sim.schedule_at(
                    i * 0.01, lambda f=factory: send(f.build())
                )
        deployment.net.run(until=4.0)

        delivered = deployment.host_la.received_packets
        control_packets = [p for p in delivered if p.flow_label == 1]
        bulk_packets = [p for p in delivered if p.flow_label == 2]

        # Control: everything delivered, all on GTT.
        assert len(control_packets) == 300
        assert {p.meta["tango_path_id"] for p in control_packets} == {2}
        # Bulk: metered to roughly half its offered load.
        assert len(bulk_packets) < 220
        assert bulk.dropped > 80
        assert control.dropped == 0
        report = {r["slice"]: r for r in manager.report()}
        assert report["bulk"]["drop_fraction"] > 0.25
        assert report["control"]["drop_fraction"] == 0.0
