"""Tests for iterative suppression-based path discovery.

These run on the real Vultr control-plane topology, so they double as the
Figure 3 reproduction at unit granularity.
"""

import pytest

from repro.bgp.communities import no_export_to
from repro.core.discovery import PathDiscovery, asn_label
from repro.scenarios.vultr import VULTR_ASN, build_bgp_network

PROBE = "2001:db8:f0::/48"


@pytest.fixture()
def network():
    return build_bgp_network()


def discover(network, announcer, observer, **kwargs):
    return PathDiscovery(network, VULTR_ASN).discover(
        announcer=announcer, observer=observer, probe_prefix=PROBE, **kwargs
    )


class TestVultrDiscovery:
    def test_ny_to_la_paths_match_paper(self, network):
        """Fig. 3 / Section 4.1: NY→LA rides NTT, Telia, GTT, Level3."""
        result = discover(network, announcer="tango-la", observer="tango-ny")
        assert [p.short_label for p in result.paths] == [
            "NTT",
            "Telia",
            "GTT",
            "Level3",
        ]

    def test_la_to_ny_paths_match_paper(self, network):
        """LA→NY rides NTT, Telia, GTT, then NTT+Cogent."""
        result = discover(network, announcer="tango-ny", observer="tango-la")
        assert [p.label for p in result.paths] == [
            "NTT",
            "Telia",
            "GTT",
            "NTT Cogent",
        ]

    def test_default_path_is_ntt(self, network):
        result = discover(network, announcer="tango-la", observer="tango-ny")
        assert result.default_path.short_label == "NTT"
        assert result.default_path.is_default

    def test_discovery_order_matches_provider_preference(self, network):
        """Paths appear in the provider's preference order, because each
        round suppresses the currently most-preferred export."""
        result = discover(network, announcer="tango-la", observer="tango-ny")
        assert [p.index for p in result.paths] == [0, 1, 2, 3]

    def test_community_sets_grow_monotonically(self, network):
        result = discover(network, announcer="tango-la", observer="tango-ny")
        sizes = [len(p.communities) for p in result.paths]
        assert sizes == [0, 1, 2, 3]
        for earlier, later in zip(result.paths, result.paths[1:]):
            assert earlier.communities < later.communities

    def test_recorded_communities_pin_the_path(self, network):
        """Announcing the probe with path i's recorded communities makes
        the observer's best route exactly path i — the property tunnels
        rely on."""
        from repro.bgp.attributes import RouteAttributes

        result = discover(network, announcer="tango-la", observer="tango-ny")
        third = result.paths[2]  # GTT
        network.router("tango-la").originate(
            PROBE, RouteAttributes().add_communities(large=third.communities)
        )
        network.converge()
        best = network.router("tango-ny").best_path(PROBE)
        view = best.without(VULTR_ASN).strip_private()
        assert view.asns == third.transit_asns

    def test_probe_prefix_withdrawn_after_discovery(self, network):
        discover(network, announcer="tango-la", observer="tango-ny")
        assert not network.reachable("tango-ny", PROBE)

    def test_keep_announced_leaves_origination(self, network):
        discover(
            network,
            announcer="tango-la",
            observer="tango-ny",
            keep_announced=True,
        )
        assert PROBE in [
            str(p) for p in network.router("tango-la").originated
        ]

    def test_max_paths_truncates(self, network):
        result = discover(
            network, announcer="tango-la", observer="tango-ny", max_paths=2
        )
        assert result.path_count == 2

    def test_expected_suppression_targets(self, network):
        """Each round suppressed the transit adjacent to the announcer."""
        result = discover(network, announcer="tango-la", observer="tango-ny")
        last = result.paths[-1]
        expected = {
            no_export_to(VULTR_ASN, 2914),
            no_export_to(VULTR_ASN, 1299),
            no_export_to(VULTR_ASN, 3257),
        }
        assert set(last.communities) == expected

    def test_convergence_waves_counted(self, network):
        result = discover(network, announcer="tango-la", observer="tango-ny")
        assert result.convergence_waves > 0

    def test_discovery_is_repeatable(self, network):
        first = discover(network, announcer="tango-la", observer="tango-ny")
        second = discover(network, announcer="tango-la", observer="tango-ny")
        assert [p.label for p in first.paths] == [p.label for p in second.paths]

    def test_both_directions_independent(self, network):
        """Running one direction leaves the other's results unchanged."""
        ab = discover(network, announcer="tango-la", observer="tango-ny")
        ba = discover(network, announcer="tango-ny", observer="tango-la")
        assert ab.path_count == 4
        assert ba.path_count == 4
        assert ab.labels() != ba.labels()  # 4th hop differs per direction


class TestLabels:
    def test_known_asns_named(self):
        assert asn_label(2914) == "NTT"
        assert asn_label(3356) == "Level3"

    def test_unknown_asn_rendered_numeric(self):
        assert asn_label(65000) == "AS65000"

    def test_result_labels_helper(self, network):
        result = discover(network, announcer="tango-la", observer="tango-ny")
        assert result.labels()[0] == "NTT"


class TestPoisoningMethod:
    def test_poisoning_finds_fewer_paths(self, network):
        """Section 6's AS-path-poisoning knob works without provider
        support but kills the target everywhere: the fourth path
        (NTT+Level3 / NTT+Cogent) re-traverses poisoned NTT and is
        lost — a structural limitation communities do not have."""
        discovery = PathDiscovery(network, VULTR_ASN)
        communities = discovery.discover(
            announcer="tango-la", observer="tango-ny", probe_prefix=PROBE
        )
        poisoning = discovery.discover(
            announcer="tango-la",
            observer="tango-ny",
            probe_prefix=PROBE,
            method="poisoning",
        )
        assert [p.short_label for p in poisoning.paths] == [
            "NTT",
            "Telia",
            "GTT",
        ]
        assert poisoning.path_count < communities.path_count

    def test_poisoned_asns_recorded_per_path(self, network):
        result = PathDiscovery(network, VULTR_ASN).discover(
            announcer="tango-la",
            observer="tango-ny",
            probe_prefix=PROBE,
            method="poisoning",
        )
        assert [p.poisoned_asns for p in result.paths] == [
            (),
            (2914,),
            (2914, 1299),
        ]
        assert all(not p.communities for p in result.paths)

    def test_unknown_method_rejected(self, network):
        with pytest.raises(ValueError, match="method"):
            PathDiscovery(network, VULTR_ASN).discover(
                announcer="tango-la",
                observer="tango-ny",
                probe_prefix=PROBE,
                method="magic",
            )
