"""Tests for the slow-path controller."""

import ipaddress

import pytest

from repro.core.config import EdgeConfig
from repro.core.controller import TangoController
from repro.core.gateway import TangoGateway
from repro.core.policy import StaticSelector
from repro.core.tunnels import TangoTunnel
from repro.netsim.topology import Network


def make_setup():
    net = Network()
    switch = net.add_switch("gw")
    config = EdgeConfig(
        name="ny",
        tenant_router="tango-ny",
        tenant_asn=64512,
        provider_router="vultr-ny",
        provider_asn=20473,
        host_prefix=ipaddress.IPv6Network("2001:db8:20::/48"),
        route_prefixes=(ipaddress.IPv6Network("2001:db8:b0::/48"),),
    )
    gateway = TangoGateway(switch, config)
    gateway.install_tunnels(
        ipaddress.IPv6Network("2001:db8:30::/48"),
        [
            TangoTunnel(
                path_id=0,
                label="NTT",
                local_endpoint=ipaddress.IPv6Address("2001:db8:b0::1"),
                remote_endpoint=ipaddress.IPv6Address("2001:db8:c0::1"),
                remote_prefix=ipaddress.IPv6Network("2001:db8:c0::/48"),
            )
        ],
    )
    return net, gateway


class TestControlLoop:
    def test_ticks_at_interval(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=1.0)
        assert controller.ticks == 11

    def test_stop_halts_loop(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.5)
        controller.stop()
        net.run(until=2.0)
        assert controller.ticks == 6

    def test_double_start_rejected(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()

    def test_choice_trace_records_static_selector(self):
        net, gateway = make_setup()
        gateway.set_selector(StaticSelector(0))
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.5)
        assert len(controller.choice_trace) == 6
        assert set(controller.choice_trace.values.tolist()) == {0.0}

    def test_loss_monitor_sampled_each_tick(self):
        net, gateway = make_setup()
        gateway.tracker.observe(0, 0)
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.35)
        assert len(gateway.loss_monitor.series[0]) == 4

    def test_invalid_interval(self):
        net, gateway = make_setup()
        with pytest.raises(ValueError):
            TangoController(gateway, net.sim, interval_s=0.0)


class TestHealth:
    def test_tunnel_without_measurements_is_stale(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, staleness_s=1.0)
        health = controller.health()
        assert len(health) == 1
        assert not health[0].fresh
        assert health[0].last_measurement_age_s is None
        assert controller.stale_tunnels() == health

    def test_fresh_measurement_marks_healthy(self):
        net, gateway = make_setup()
        gateway.outbound.record(0, 0.0, 0.030)
        controller = TangoController(gateway, net.sim, staleness_s=1.0)
        health = controller.health()
        assert health[0].fresh
        assert controller.stale_tunnels() == []

    def test_measurement_goes_stale_with_time(self):
        net, gateway = make_setup()
        gateway.outbound.record(0, 0.0, 0.030)
        controller = TangoController(gateway, net.sim, staleness_s=1.0)
        net.sim.clock.advance_to(5.0)
        assert not controller.health()[0].fresh
        assert controller.health()[0].last_measurement_age_s == pytest.approx(5.0)


class TestStaleCallback:
    def test_on_stale_fires_once_per_transition(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            on_stale=fired.append,
        )
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=2.0)  # goes stale at ~0.5, fires once
        assert len(fired) == 1
        assert fired[0].path_id == 0

    def test_recovery_rearms_the_callback(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            on_stale=fired.append,
        )
        gateway.outbound.record(0, 0.0, 0.030)
        # Fresh measurement arrives at t=2, then silence again.
        net.sim.schedule_at(2.0, lambda: gateway.outbound.record(0, 2.0, 0.030))
        controller.start()
        net.run(until=5.0)
        assert len(fired) == 2

    def test_never_measured_tunnel_does_not_fire(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway, net.sim, interval_s=0.1, staleness_s=0.5,
            on_stale=fired.append,
        )
        controller.start()
        net.run(until=2.0)
        assert fired == []
