"""Tests for the slow-path controller."""

import ipaddress

import pytest

from repro.core.config import EdgeConfig
from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.gateway import TangoGateway
from repro.core.policy import StaticSelector
from repro.core.tunnels import TangoTunnel
from repro.netsim.topology import Network


def make_setup():
    net = Network()
    switch = net.add_switch("gw")
    config = EdgeConfig(
        name="ny",
        tenant_router="tango-ny",
        tenant_asn=64512,
        provider_router="vultr-ny",
        provider_asn=20473,
        host_prefix=ipaddress.IPv6Network("2001:db8:20::/48"),
        route_prefixes=(ipaddress.IPv6Network("2001:db8:b0::/48"),),
    )
    gateway = TangoGateway(switch, config)
    gateway.install_tunnels(
        ipaddress.IPv6Network("2001:db8:30::/48"),
        [
            TangoTunnel(
                path_id=0,
                label="NTT",
                local_endpoint=ipaddress.IPv6Address("2001:db8:b0::1"),
                remote_endpoint=ipaddress.IPv6Address("2001:db8:c0::1"),
                remote_prefix=ipaddress.IPv6Network("2001:db8:c0::/48"),
            )
        ],
    )
    return net, gateway


class TestControlLoop:
    def test_ticks_at_interval(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=1.0)
        assert controller.ticks == 11

    def test_stop_halts_loop(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.5)
        controller.stop()
        net.run(until=2.0)
        assert controller.ticks == 6

    def test_double_start_rejected(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()

    def test_choice_trace_records_static_selector(self):
        net, gateway = make_setup()
        gateway.set_selector(StaticSelector(0))
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.5)
        assert len(controller.choice_trace) == 6
        assert set(controller.choice_trace.values.tolist()) == {0.0}

    def test_loss_monitor_sampled_each_tick(self):
        net, gateway = make_setup()
        gateway.tracker.observe(0, 0)
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.35)
        assert len(gateway.loss_monitor.series[0]) == 4

    def test_invalid_interval(self):
        net, gateway = make_setup()
        with pytest.raises(ValueError):
            TangoController(gateway, net.sim, interval_s=0.0)


class TestHealth:
    def test_tunnel_without_measurements_is_stale(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, staleness_s=1.0)
        health = controller.health()
        assert len(health) == 1
        assert not health[0].fresh
        assert health[0].last_measurement_age_s is None
        assert controller.stale_tunnels() == health

    def test_fresh_measurement_marks_healthy(self):
        net, gateway = make_setup()
        gateway.outbound.record(0, 0.0, 0.030)
        controller = TangoController(gateway, net.sim, staleness_s=1.0)
        health = controller.health()
        assert health[0].fresh
        assert controller.stale_tunnels() == []

    def test_measurement_goes_stale_with_time(self):
        net, gateway = make_setup()
        gateway.outbound.record(0, 0.0, 0.030)
        controller = TangoController(gateway, net.sim, staleness_s=1.0)
        net.sim.clock.advance_to(5.0)
        assert not controller.health()[0].fresh
        assert controller.health()[0].last_measurement_age_s == pytest.approx(5.0)


class TestStaleCallback:
    def test_on_stale_fires_once_per_transition(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            on_stale=fired.append,
        )
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=2.0)  # goes stale at ~0.5, fires once
        assert len(fired) == 1
        assert fired[0].path_id == 0

    def test_recovery_rearms_the_callback(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            on_stale=fired.append,
        )
        gateway.outbound.record(0, 0.0, 0.030)
        # Fresh measurement arrives at t=2, then silence again.
        net.sim.schedule_at(2.0, lambda: gateway.outbound.record(0, 2.0, 0.030))
        controller.start()
        net.run(until=5.0)
        assert len(fired) == 2

    def test_never_measured_tunnel_does_not_fire(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway, net.sim, interval_s=0.1, staleness_s=0.5,
            on_stale=fired.append,
        )
        controller.start()
        net.run(until=2.0)
        assert fired == []


class TestRestartContract:
    def test_restart_after_stop_resumes_ticking(self):
        net, gateway = make_setup()
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.5)
        controller.stop()
        controller.start()
        net.run(until=1.0)
        # 6 ticks before the stop, then the restarted loop ticks
        # immediately at t=0.5 and every 0.1 s after: 6 more.
        assert controller.ticks == 12

    def test_restart_rearms_edge_triggered_staleness(self):
        net, gateway = make_setup()
        fired = []
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            on_stale=fired.append,
        )
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=2.0)
        assert len(fired) == 1
        controller.stop()
        # A restarted controller reports existing conditions afresh: the
        # tunnel is still stale, so the callback fires again.
        controller.start()
        net.run(until=3.0)
        assert len(fired) == 2

    def test_restart_clears_quarantine_runtime_but_keeps_log(self):
        net, gateway = make_setup()
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
        )
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=2.0)
        assert 0 in controller.quarantined
        events_before = len(controller.quarantine_log)
        assert events_before > 0
        controller.stop()
        controller.start()
        assert controller.quarantined == set()
        assert controller.quarantine_state(0) == "healthy"
        assert len(controller.quarantine_log) == events_before  # cumulative


class TestQuarantinePolicy:
    def test_defaults_valid(self):
        policy = QuarantinePolicy()
        assert policy.unhealthy_ticks == 2
        assert policy.backoff_factor == 2.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(unhealthy_ticks=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(probation_delay_s=0.0)
        with pytest.raises(ValueError):
            QuarantinePolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            QuarantinePolicy(loss_threshold=1.5)


class TestQuarantineMachine:
    def make_controller(self, net, gateway, **overrides):
        return TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(**overrides),
        )

    def test_stale_path_quarantined_after_hysteresis(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=1.0)
        assert controller.quarantine_state(0) == "quarantined"
        first = controller.quarantine_log[0]
        assert first.action == "quarantine"
        assert first.cause == "stale"
        # Stale from t=0.6; second consecutive unhealthy tick at t=0.7.
        assert first.t == pytest.approx(0.7)

    def test_never_measured_tunnel_not_quarantined(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        controller.start()
        net.run(until=3.0)
        assert controller.quarantine_state(0) == "healthy"
        assert controller.quarantine_log == []

    def test_single_path_quarantine_engages_fallback(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=1.0)
        assert controller.fallback_active
        assert any(
            q.action == "fallback-on" and q.path_id == -1
            for q in controller.quarantine_log
        )

    def test_probation_after_backoff_then_requarantine_while_still_bad(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=4.0)
        actions = [q.action for q in controller.quarantine_log if q.path_id == 0]
        assert actions[:3] == ["quarantine", "probation", "quarantine"]
        backoffs = [
            q.backoff_s
            for q in controller.quarantine_log
            if q.action == "quarantine" and q.path_id == 0
        ]
        assert backoffs[0] == pytest.approx(1.0)
        assert backoffs[1] == pytest.approx(2.0)

    def test_recovered_path_restored_after_probation(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        gateway.outbound.record(0, 0.0, 0.030)
        # Measurements resume at t=2 and keep flowing.
        net.sim.call_every(
            0.05, lambda: gateway.outbound.record(0, net.sim.now, 0.030), start=2.0
        )
        controller.start()
        net.run(until=5.0)
        assert controller.quarantine_state(0) == "healthy"
        assert 0 not in controller.quarantined
        actions = [q.action for q in controller.quarantine_log if q.path_id == 0]
        assert actions[-1] == "restore"
        assert not controller.fallback_active

    def test_probation_begins_exactly_at_backoff_expiry(self):
        """now >= probation_at is inclusive: the tick that lands exactly
        on the expiry releases the tunnel, not the one after."""
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=2.5)
        events = {}
        for q in controller.quarantine_log:
            if q.path_id == 0:
                events.setdefault(q.action, q.t)
        # Quarantined at 0.7 with 1.0 s backoff; ticks land on multiples
        # of 0.1, so the expiry at 1.7 coincides with a tick exactly.
        assert events["quarantine"] == pytest.approx(0.7)
        assert events["probation"] == pytest.approx(1.7)

    def test_restore_on_exactly_probation_ticks_healthy_ticks(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway, probation_ticks=3)
        gateway.outbound.record(0, 0.0, 0.030)
        # Feed heals at t=1.0, well before probation starts at 1.7.
        net.sim.call_every(
            0.05, lambda: gateway.outbound.record(0, net.sim.now, 0.030), start=1.0
        )
        controller.start()
        net.run(until=3.0)
        events = {
            q.action: q.t for q in controller.quarantine_log if q.path_id == 0
        }
        # Probation at 1.7; healthy ticks at 1.8, 1.9, 2.0 -> restored on
        # the third, not one tick earlier or later.
        assert events["probation"] == pytest.approx(1.7)
        assert events["restore"] == pytest.approx(2.0)
        assert controller.quarantine_state(0) == "healthy"

    def test_restore_resets_backoff_to_base(self):
        net, gateway = make_setup()
        controller = self.make_controller(net, gateway)
        gateway.outbound.record(0, 0.0, 0.030)
        # Heal before probation, then go silent again after the restore.
        healing = net.sim.call_every(
            0.05, lambda: gateway.outbound.record(0, net.sim.now, 0.030), start=1.0
        )
        net.sim.schedule_at(2.1, healing.stop)
        controller.start()
        net.run(until=5.0)
        backoffs = [
            q.backoff_s
            for q in controller.quarantine_log
            if q.action == "quarantine" and q.path_id == 0
        ]
        # The post-restore quarantine starts from the base delay again,
        # not from the doubled value the first quarantine advanced to.
        assert len(backoffs) >= 2
        assert backoffs[0] == pytest.approx(1.0)
        assert backoffs[1] == pytest.approx(1.0)

    def test_backoff_capped(self):
        net, gateway = make_setup()
        controller = self.make_controller(
            net, gateway, probation_delay_s=1.0, max_probation_delay_s=2.0
        )
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=12.0)
        backoffs = [
            q.backoff_s
            for q in controller.quarantine_log
            if q.action == "quarantine" and q.path_id == 0
        ]
        assert len(backoffs) >= 3
        assert max(backoffs) == pytest.approx(2.0)


class TestChoiceTraceLastChoice:
    def test_unexercised_selector_traces_minus_one(self):
        from repro.core.policy import LowestDelaySelector

        net, gateway = make_setup()
        gateway.set_selector(LowestDelaySelector(gateway.outbound, window_s=1.0))
        controller = TangoController(gateway, net.sim, interval_s=0.1)
        controller.start()
        net.run(until=0.5)
        # The selector has made no selection yet: nothing to record.
        assert set(controller.choice_trace.values.tolist()) == {-1.0}
