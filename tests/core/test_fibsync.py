"""Tests for control-plane → data-plane FIB synchronization."""

import ipaddress

import pytest

from repro.bgp.network import BgpNetwork
from repro.bgp.router import BgpRouter
from repro.core.fibsync import FibSyncError, sync_fibs
from repro.netsim.packet import Ipv6Header, Packet
from repro.netsim.topology import Network

PREFIX = "2001:db8:50::/48"


def build():
    """Control plane: origin --(p1|p2)-- sink.  Data plane mirrors it."""
    bgp = BgpNetwork()
    for name, asn in (
        ("origin", 65001),
        ("p1", 100),
        ("p2", 200),
        ("sink", 65002),
    ):
        bgp.add_router(BgpRouter(name, asn))
    bgp.add_provider("origin", "p1", customer_preference=1)
    bgp.add_provider("origin", "p2", customer_preference=2)
    bgp.add_provider("sink", "p1", customer_preference=1)
    bgp.add_provider("sink", "p2", customer_preference=2)
    bgp.router("origin").originate(PREFIX)
    bgp.converge()

    net = Network()
    nodes = {name: net.add_router(name) for name in ("origin", "p1", "p2", "sink")}
    links = {}
    for a, b in (
        ("origin", "p1"),
        ("origin", "p2"),
        ("sink", "p1"),
        ("sink", "p2"),
    ):
        fwd, rev = net.add_duplex_link(f"{a}-{b}", a, b, delay_s=0.001)
        links[(a, b)] = fwd
        links[(b, a)] = rev
    nodes["origin"].add_local_network(PREFIX)
    return bgp, net, nodes, links


class TestSyncFibs:
    def test_installs_best_routes(self):
        bgp, net, nodes, links = build()
        installed = sync_fibs(bgp, nodes, links)
        assert installed == 3  # p1, p2, sink (origin originates)
        entry = nodes["sink"].fib.lookup(
            ipaddress.IPv6Address("2001:db8:50::1")
        )
        assert entry.links == [links[("sink", "p1")]]

    def test_data_follows_control_plane_path(self):
        """A packet's hop sequence equals BGP's chosen AS path."""
        bgp, net, nodes, links = build()
        sync_fibs(bgp, nodes, links)
        packet = Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("2001:db8:60::1"),
                    dst=ipaddress.IPv6Address("2001:db8:50::1"),
                )
            ]
        )
        net.inject(nodes["sink"], packet)
        net.run()
        # Best path at sink: via p1 (preference 1).
        assert links[("sink", "p1")].stats.delivered == 1
        assert links[("sink", "p2")].stats.transmitted == 0
        assert nodes["origin"].stats.delivered_local == 1

    def test_resync_after_reconvergence(self):
        """A control-plane change re-syncs into new forwarding."""
        bgp, net, nodes, links = build()
        sync_fibs(bgp, nodes, links)
        # p1 loses its session to origin -> best shifts to p2.
        bgp.disconnect("origin", "p1")
        bgp.converge()
        sync_fibs(bgp, nodes, links)
        entry = nodes["sink"].fib.lookup(
            ipaddress.IPv6Address("2001:db8:50::1")
        )
        assert entry.links == [links[("sink", "p2")]]

    def test_missing_node_skipped(self):
        bgp, net, nodes, links = build()
        partial = {k: v for k, v in nodes.items() if k != "p2"}
        installed = sync_fibs(bgp, partial, links)
        assert installed == 2

    def test_missing_link_strict_raises(self):
        bgp, net, nodes, links = build()
        broken = {k: v for k, v in links.items() if k != ("sink", "p1")}
        with pytest.raises(FibSyncError, match="sink"):
            sync_fibs(bgp, nodes, broken)

    def test_missing_link_lenient_skips(self):
        bgp, net, nodes, links = build()
        broken = {k: v for k, v in links.items() if k != ("sink", "p1")}
        installed = sync_fibs(bgp, nodes, broken, strict=False)
        assert installed == 2
