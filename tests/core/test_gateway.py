"""Tests for the Tango gateway wiring."""

import ipaddress

import pytest

from repro.core.config import EdgeConfig
from repro.core.gateway import TangoGateway
from repro.core.policy import StaticSelector
from repro.core.tunnels import TangoTunnel
from repro.netsim.topology import Network
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.dataplane.encap import is_tango_encapsulated


def make_edge(name="ny", offset=0.0):
    return EdgeConfig(
        name=name,
        tenant_router=f"tango-{name}",
        tenant_asn=64512,
        provider_router=f"vultr-{name}",
        provider_asn=20473,
        host_prefix=ipaddress.IPv6Network("2001:db8:20::/48"),
        route_prefixes=(
            ipaddress.IPv6Network("2001:db8:b0::/48"),
            ipaddress.IPv6Network("2001:db8:b1::/48"),
        ),
        clock_offset_s=offset,
    )


def make_gateway(auth_key=b""):
    net = Network()
    switch = net.add_switch("gw")
    gateway = TangoGateway(switch, make_edge(), auth_key=auth_key)
    return net, switch, gateway


def make_tunnel(path_id=0):
    return TangoTunnel(
        path_id=path_id,
        label="NTT",
        local_endpoint=ipaddress.IPv6Address("2001:db8:b0::1"),
        remote_endpoint=ipaddress.IPv6Address("2001:db8:c0::1"),
        remote_prefix=ipaddress.IPv6Network("2001:db8:c0::/48"),
    )


class TestWiring:
    def test_programs_attached_to_switch(self):
        net, switch, gateway = make_gateway()
        assert gateway.receiver in switch.ingress_programs
        assert gateway.sender in switch.egress_programs

    def test_local_endpoints_registered_from_config(self):
        net, switch, gateway = make_gateway()
        assert (
            ipaddress.IPv6Address("2001:db8:b0::1") in gateway.receiver.local_endpoints
        )
        assert (
            ipaddress.IPv6Address("2001:db8:b1::1") in gateway.receiver.local_endpoints
        )

    def test_install_tunnels_populates_table(self):
        net, switch, gateway = make_gateway()
        remote_host = ipaddress.IPv6Network("2001:db8:30::/48")
        gateway.install_tunnels(remote_host, [make_tunnel()])
        assert len(gateway.tunnel_table) == 1
        hits = gateway.tunnel_table.tunnels_for(
            ipaddress.IPv6Address("2001:db8:30::7")
        )
        assert len(hits) == 1

    def test_set_selector_swaps_policy(self):
        net, switch, gateway = make_gateway()
        selector = StaticSelector(0)
        gateway.set_selector(selector)
        assert gateway.selector is selector

    def test_auth_key_builds_authenticators(self):
        net, switch, gateway = make_gateway(auth_key=b"k" * 16)
        assert gateway.authenticator is not None
        assert gateway.receiver.authenticator is gateway.authenticator
        assert gateway.sender.authenticator is gateway.authenticator


class TestDataPath:
    def test_outbound_traffic_encapsulated_and_forwarded(self):
        net, switch, gateway = make_gateway()
        remote_host = ipaddress.IPv6Network("2001:db8:30::/48")
        gateway.install_tunnels(remote_host, [make_tunnel()])
        sink = net.add_host("sink")
        wan = net.add_link("wan", switch, sink, delay_s=0.010)
        switch.fib.add_route("2001:db8:c0::/48", wan)
        packet = Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("2001:db8:20::9"),
                    dst=ipaddress.IPv6Address("2001:db8:30::9"),
                ),
                UdpHeader(sport=1, dport=2),
            ]
        )
        net.inject(switch, packet)
        net.run()
        assert sink.stats.received == 1
        assert is_tango_encapsulated(sink.received_packets[0])

    def test_inbound_measurement_recorded(self):
        net, switch, gateway = make_gateway()
        # Build an encapsulated packet addressed to our endpoint.
        from repro.dataplane.encap import encapsulate

        inner = Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("2001:db8:30::9"),
                    dst=ipaddress.IPv6Address("2001:db8:20::9"),
                ),
            ]
        )
        encapsulate(
            inner,
            src="2001:db8:c0::1",
            dst="2001:db8:b0::1",
            path_id=5,
            timestamp_ns=0,
            seq=0,
        )
        net.sim.clock.advance_to(0.030)
        host = net.add_host("host")
        edge_link = net.add_link("edge", switch, host, delay_s=0.0001)
        switch.fib.add_route("2001:db8:20::/48", edge_link)
        net.inject(switch, inner)
        net.run()
        assert gateway.inbound.has_path(5)
        owd = gateway.inbound.series(5).values[0]
        assert owd == pytest.approx(0.030, abs=1e-6)
        assert host.stats.received == 1

    def test_tunnel_report_rows(self):
        net, switch, gateway = make_gateway()
        gateway.install_tunnels(
            ipaddress.IPv6Network("2001:db8:30::/48"), [make_tunnel()]
        )
        rows = gateway.tunnel_report()
        assert rows[0]["label"] == "NTT"
        assert rows[0]["outbound_delay_ms"] is None  # nothing mirrored yet
