"""Quarantine probation under correlated failures.

Two contracts: (1) back-to-back failures keep growing the probation
backoff (no reset until a genuine restore), and (2) a tunnel whose
shared-risk group is still marked down has its probation *held* — no
probe, no backoff doubling — until the group recovers.
"""

import ipaddress

import pytest

from repro.core.config import EdgeConfig
from repro.core.controller import QuarantinePolicy, TangoController
from repro.core.gateway import TangoGateway
from repro.core.tunnels import TangoTunnel
from repro.netsim.topology import Network
from repro.srlg import SrlgRegistry


def make_setup(groups=()):
    net = Network()
    switch = net.add_switch("gw")
    config = EdgeConfig(
        name="ny",
        tenant_router="tango-ny",
        tenant_asn=64512,
        provider_router="vultr-ny",
        provider_asn=20473,
        host_prefix=ipaddress.IPv6Network("2001:db8:20::/48"),
        route_prefixes=(ipaddress.IPv6Network("2001:db8:b0::/48"),),
    )
    gateway = TangoGateway(switch, config)
    gateway.install_tunnels(
        ipaddress.IPv6Network("2001:db8:30::/48"),
        [
            TangoTunnel(
                path_id=0,
                label="NTT",
                local_endpoint=ipaddress.IPv6Address("2001:db8:b0::1"),
                remote_endpoint=ipaddress.IPv6Address("2001:db8:c0::1"),
                remote_prefix=ipaddress.IPv6Network("2001:db8:c0::/48"),
                srlgs=frozenset(groups),
            )
        ],
    )
    return net, gateway


class TestBackToBackBackoff:
    def test_backoff_keeps_growing_without_restore(self):
        net, gateway = make_setup()
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
        )
        # One measurement, then silence: every probation re-confirms the
        # fault and the backoff must double each cycle, not reset.
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=9.0)
        backoffs = [
            q.backoff_s
            for q in controller.quarantine_log
            if q.action == "quarantine" and q.path_id == 0
        ]
        assert len(backoffs) >= 3
        assert backoffs[0] == pytest.approx(1.0)
        assert backoffs[1] == pytest.approx(2.0)
        assert backoffs[2] == pytest.approx(4.0)

    def test_backoff_caps_at_policy_maximum(self):
        net, gateway = make_setup()
        controller = TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(max_probation_delay_s=2.0),
        )
        gateway.outbound.record(0, 0.0, 0.030)
        controller.start()
        net.run(until=12.0)
        backoffs = [
            q.backoff_s
            for q in controller.quarantine_log
            if q.action == "quarantine" and q.path_id == 0
        ]
        assert len(backoffs) >= 3
        assert max(backoffs) == pytest.approx(2.0)


class TestProbationHold:
    def make_controller(self, net, gateway, registry):
        return TangoController(
            gateway,
            net.sim,
            interval_s=0.1,
            staleness_s=0.5,
            quarantine=QuarantinePolicy(),
            srlg_registry=registry,
        )

    def test_probation_held_while_group_down(self):
        net, gateway = make_setup(groups=("conduit",))
        registry = SrlgRegistry()
        registry.tag_link("wan", "conduit")
        controller = self.make_controller(net, gateway, registry)
        gateway.outbound.record(0, 0.0, 0.030)
        registry.mark_down("conduit")
        controller.start()
        net.run(until=5.0)

        actions = [q.action for q in controller.quarantine_log if q.path_id == 0]
        assert "probation" not in actions
        # Held once, not re-logged every tick.
        assert actions.count("probation-hold") == 1
        assert controller.quarantine_state(0) == "quarantined"

    def test_hold_does_not_burn_backoff_doublings(self):
        net, gateway = make_setup(groups=("conduit",))
        registry = SrlgRegistry()
        registry.tag_link("wan", "conduit")
        controller = self.make_controller(net, gateway, registry)
        gateway.outbound.record(0, 0.0, 0.030)
        registry.mark_down("conduit")
        controller.start()
        # Long outage: without the hold this would cycle
        # quarantine/probation ~4 times and reach an 8 s backoff.
        net.run(until=5.0)
        registry.clear_down("conduit")
        net.run(until=8.0)

        log = [q for q in controller.quarantine_log if q.path_id == 0]
        probations = [q for q in log if q.action == "probation"]
        assert probations  # released once the group recovered
        backoffs = [q.backoff_s for q in log if q.action == "quarantine"]
        # First quarantine at 1.0 s; the post-recovery re-quarantine uses
        # the single doubling — the held window burned nothing.
        assert backoffs[0] == pytest.approx(1.0)
        assert backoffs[1] == pytest.approx(2.0)

    def test_untagged_tunnel_unaffected_by_down_groups(self):
        net, gateway = make_setup()  # no srlg tags on the tunnel
        registry = SrlgRegistry()
        registry.tag_link("wan", "conduit")
        controller = self.make_controller(net, gateway, registry)
        gateway.outbound.record(0, 0.0, 0.030)
        registry.mark_down("conduit")
        controller.start()
        net.run(until=3.0)
        actions = [q.action for q in controller.quarantine_log if q.path_id == 0]
        assert "probation" in actions
        assert "probation-hold" not in actions
