"""Tests for Tango static configuration."""

import ipaddress

import pytest

from repro.core.config import EdgeConfig, PairingConfig


def edge(name="ny", host="2001:db8:20::/48", routes=None, **kwargs):
    if routes is None:
        routes = ("2001:db8:b0::/48", "2001:db8:b1::/48")
    return EdgeConfig(
        name=name,
        tenant_router=f"tango-{name}",
        tenant_asn=64512,
        provider_router=f"vultr-{name}",
        provider_asn=20473,
        host_prefix=ipaddress.IPv6Network(host),
        route_prefixes=tuple(ipaddress.IPv6Network(r) for r in routes),
        **kwargs,
    )


class TestEdgeConfig:
    def test_requires_route_prefixes(self):
        with pytest.raises(ValueError, match="at least one route prefix"):
            edge(routes=())

    def test_route_prefix_must_not_overlap_host(self):
        """Prefixes-as-routes must stay disjoint from host addressing."""
        with pytest.raises(ValueError, match="overlap"):
            edge(host="2001:db8:b0::/48")

    def test_host_address_indexing(self):
        cfg = edge()
        assert str(cfg.host_address(1)) == "2001:db8:20::1"
        assert str(cfg.host_address(5)) == "2001:db8:20::5"

    def test_tunnel_endpoint_convention(self):
        cfg = edge()
        assert str(cfg.tunnel_endpoint(0)) == "2001:db8:b0::1"
        assert str(cfg.tunnel_endpoint(1)) == "2001:db8:b1::1"

    def test_iter_route_prefixes(self):
        assert len(list(edge().iter_route_prefixes())) == 2


class TestPairingConfig:
    def test_valid_pairing(self):
        pairing = PairingConfig(a=edge("ny"), b=edge("la", host="2001:db8:10::/48",
                                                      routes=("2001:db8:a0::/48",)))
        assert pairing.peer_of("ny").name == "la"
        assert pairing.peer_of("la").name == "ny"
        assert pairing.edge("ny").name == "ny"

    def test_same_edge_twice_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            PairingConfig(a=edge("ny"), b=edge("ny"))

    def test_unknown_edge_lookup(self):
        pairing = PairingConfig(a=edge("ny"), b=edge("la", host="2001:db8:10::/48",
                                                      routes=("2001:db8:a0::/48",)))
        with pytest.raises(KeyError):
            pairing.peer_of("tokyo")
        with pytest.raises(KeyError):
            pairing.edge("tokyo")

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="probe_interval_s"):
            PairingConfig(
                a=edge("ny"),
                b=edge("la", host="2001:db8:10::/48", routes=("2001:db8:a0::/48",)),
                probe_interval_s=0.0,
            )
