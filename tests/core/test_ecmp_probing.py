"""Tests for ECMP reverse engineering, including packet-level mapping of
the E8 fabric."""

import ipaddress

import pytest

from repro.core.ecmp_probing import EcmpMapper
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.scenarios.topologies import build_ecmp_fanout


class TestMapperUnit:
    def test_single_cluster_when_delays_close(self):
        mapper = EcmpMapper(cluster_gap_s=1e-3)
        for port in range(20):
            mapper.observe(port, 0.030 + port * 1e-6)
        ecmp_map = mapper.build_map()
        assert ecmp_map.sub_path_count == 1
        assert ecmp_map.fastest.mean_delay_s == pytest.approx(0.030, abs=1e-4)

    def test_two_clusters_split_at_gap(self):
        mapper = EcmpMapper(cluster_gap_s=1e-3)
        for port in range(10):
            mapper.observe(port, 0.030)
        for port in range(10, 20):
            mapper.observe(port, 0.036)
        ecmp_map = mapper.build_map()
        assert ecmp_map.sub_path_count == 2
        assert ecmp_map.fastest.ports == tuple(range(10))
        assert ecmp_map.port_for_fastest() == 0

    def test_cluster_lookup_by_port(self):
        mapper = EcmpMapper()
        mapper.observe(5, 0.030)
        mapper.observe(9, 0.040)
        ecmp_map = mapper.build_map()
        assert ecmp_map.cluster_for_port(9).mean_delay_s == pytest.approx(0.040)
        with pytest.raises(KeyError):
            ecmp_map.cluster_for_port(999)

    def test_min_samples_guard(self):
        mapper = EcmpMapper(min_samples_per_port=3)
        mapper.observe(1, 0.030)
        with pytest.raises(ValueError, match="enough samples"):
            mapper.build_map()
        mapper.observe(1, 0.031)
        mapper.observe(1, 0.029)
        assert mapper.build_map().sub_path_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EcmpMapper(cluster_gap_s=0.0)
        with pytest.raises(ValueError):
            EcmpMapper(min_samples_per_port=0)


class TestPacketLevelMapping:
    """Reverse-engineer the E8 fabric, then steer onto its fastest
    sub-path by source port alone."""

    def probe(self, sport):
        return Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("2001:db8:ec0::1"),
                    dst=ipaddress.IPv6Address("2001:db8:ecf::9"),
                ),
                UdpHeader(sport=sport, dport=33434),
            ],
            payload_bytes=16,
        )

    def test_maps_all_three_sub_paths(self):
        fabric = build_ecmp_fanout()
        net = fabric.net
        src, dst = net.node(fabric.src_name), net.node(fabric.dst_name)
        mapper = EcmpMapper(cluster_gap_s=2e-3)

        def record(switch, packet):
            mapper.observe(
                packet.five_tuple().sport, switch.sim.now - packet.created_at
            )
            return None

        dst.attach_ingress(record)
        for i, sport in enumerate(range(20000, 20060)):
            net.sim.schedule_at(
                i * 0.01, lambda s=sport: net.inject(src, self.probe(s))
            )
        net.run()
        ecmp_map = mapper.build_map()
        assert ecmp_map.sub_path_count == 3
        measured = sorted(c.mean_delay_s for c in ecmp_map.clusters)
        for got, expected_ms in zip(measured, fabric.sub_path_delays_ms):
            assert got == pytest.approx(expected_ms * 1e-3 + 0.0002, abs=5e-4)

    def test_learned_port_steers_traffic(self):
        fabric = build_ecmp_fanout()
        net = fabric.net
        src, dst = net.node(fabric.src_name), net.node(fabric.dst_name)
        mapper = EcmpMapper(cluster_gap_s=2e-3)
        dst.attach_ingress(
            lambda switch, packet: (
                mapper.observe(
                    packet.five_tuple().sport,
                    switch.sim.now - packet.created_at,
                ),
                None,
            )[1]
        )
        for i, sport in enumerate(range(30000, 30040)):
            net.sim.schedule_at(
                i * 0.01, lambda s=sport: net.inject(src, self.probe(s))
            )
        net.run()
        fast_port = mapper.build_map().port_for_fastest()

        # Steering phase: 50 packets on the learned port all ride the
        # 30 ms sub-path.
        before = [
            net.links[f"core->dst:{i}"].stats.transmitted for i in range(3)
        ]
        for i in range(50):
            net.sim.schedule_at(
                net.sim.now + i * 0.01,
                lambda: net.inject(src, self.probe(fast_port)),
            )
        net.run()
        after = [
            net.links[f"core->dst:{i}"].stats.transmitted for i in range(3)
        ]
        deltas = [b - a for a, b in zip(before, after)]
        # All 50 landed on exactly one sub-path — and it is the fastest
        # (index 0 holds the 30 ms link in the builder).
        assert deltas == [50, 0, 0]
