"""Tests for the profiling subsystem (timers, counters, report shape)."""

import json

from repro.bgp.network import BgpNetwork
from repro.bgp.router import BgpRouter
from repro.netsim.events import Simulator
from repro.profiling.core import Profiler, TimerStat


def fake_clock(ticks):
    """Deterministic clock: pops the next reading from a list."""
    readings = iter(ticks)
    return lambda: next(readings)


class TestTimerStat:
    def test_accumulates_calls_total_and_max(self):
        stat = TimerStat()
        stat.add(0.5)
        stat.add(1.5)
        stat.add(0.25)
        assert stat.calls == 3
        assert stat.total_s == 2.25
        assert stat.max_s == 1.5

    def test_as_dict_is_json_ready(self):
        stat = TimerStat()
        stat.add(0.125)
        assert json.dumps(stat.as_dict())


class TestProfiler:
    def test_time_context_uses_injected_clock(self):
        prof = Profiler(clock=fake_clock([10.0, 12.5]))
        with prof.time("work"):
            pass
        assert prof.timers["work"].calls == 1
        assert prof.timers["work"].total_s == 2.5

    def test_nested_and_repeated_timers_accumulate(self):
        prof = Profiler(clock=fake_clock([0.0, 1.0, 5.0, 7.0]))
        with prof.time("step"):
            pass
        with prof.time("step"):
            pass
        assert prof.timers["step"].calls == 2
        assert prof.timers["step"].total_s == 3.0
        assert prof.timers["step"].max_s == 2.0

    def test_counters(self):
        prof = Profiler()
        prof.count("ticks")
        prof.count("ticks", 4)
        prof.set_counter("queue.depth", 17)
        assert prof.counters["ticks"] == 5
        assert prof.counters["queue.depth"] == 17

    def test_capture_network_records_engine_counters(self):
        prof = Profiler()
        net = BgpNetwork()
        net.add_router(BgpRouter("a", 65001))
        net.add_router(BgpRouter("b", 65002))
        net.add_provider("a", "b")
        net.router("a").originate("2001:db8:1::/48")
        net.converge()
        prof.capture_network(net, prefix="bgp")
        assert prof.counters["bgp.convergences"] == 1
        assert prof.counters["bgp.updates_delivered"] >= 1
        assert prof.counters["bgp.decisions_run"] >= 1

    def test_capture_simulator_records_event_counters(self):
        prof = Profiler()
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        prof.capture_simulator(sim, prefix="sim")
        assert prof.counters["sim.events_processed"] == 1

    def test_as_dict_and_json_round_trip(self):
        prof = Profiler(clock=fake_clock([0.0, 1.0]))
        with prof.time("t"):
            pass
        prof.count("c", 3)
        payload = json.loads(prof.to_json())
        assert payload["counters"]["c"] == 3
        assert payload["timers"]["t"]["calls"] == 1

    def test_format_table_mentions_every_metric(self):
        prof = Profiler(clock=fake_clock([0.0, 0.5]))
        with prof.time("alpha"):
            pass
        prof.count("beta", 2)
        table = prof.format_table()
        assert "alpha" in table
        assert "beta" in table


class TestNetworkProfilerHook:
    def test_converge_is_timed_when_profiler_attached(self):
        prof = Profiler()
        net = BgpNetwork()
        net.add_router(BgpRouter("a", 65001))
        net.add_router(BgpRouter("b", 65002))
        net.add_provider("a", "b")
        net.profiler = prof
        net.router("a").originate("2001:db8:1::/48")
        net.converge()
        assert prof.timers["bgp.converge.incremental"].calls == 1

    def test_simulator_run_is_timed_when_profiler_attached(self):
        prof = Profiler()
        sim = Simulator()
        sim.profiler = prof
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert prof.timers["sim.run"].calls == 1


class TestBenchReportShape:
    def test_workload_speedup_math(self):
        from repro.profiling.bench import WorkloadResult

        wl = WorkloadResult(name="x", baseline_s=3.0, incremental_s=1.0)
        assert wl.speedup == 3.0
        degenerate = WorkloadResult(name="y", baseline_s=1.0, incremental_s=0.0)
        assert degenerate.speedup == float("inf")

    def test_report_schema_fields(self):
        from repro.profiling.bench import (
            DISCOVERY_MIN_SPEEDUP,
            PerfReport,
            WorkloadResult,
        )

        report = PerfReport(
            scenario="vultr",
            smoke=True,
            workloads={
                "discovery": WorkloadResult(
                    name="discovery", baseline_s=0.4, incremental_s=0.1
                )
            },
            profile={"counters": {}, "timers": {}},
        )
        payload = json.loads(report.to_json())
        assert payload["schema"] == "tango-repro/bench-perf/v1"
        assert payload["thresholds"]["discovery_min_speedup"] == DISCOVERY_MIN_SPEEDUP
        assert payload["workloads"]["discovery"]["speedup"] == 4.0

    def test_bench_fault_plan_targets_exist_in_vultr(self):
        from repro.lint.plans import check_fault_plan, vultr_spec
        from repro.profiling.bench import bench_fault_plan

        assert check_fault_plan(bench_fault_plan(), vultr_spec()) == []
