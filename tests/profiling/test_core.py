"""Tests for the profiling subsystem (timers, counters, report shape)."""

import json
import time

from repro.bgp.network import BgpNetwork
from repro.bgp.router import BgpRouter
from repro.netsim.events import Simulator
from repro.netsim.ticks import TickScheduler
from repro.profiling.core import Profiler, TimerStat
from repro.telemetry.store import TimeSeries


def fake_clock(ticks):
    """Deterministic clock: pops the next reading from a list."""
    readings = iter(ticks)
    return lambda: next(readings)


class TestTimerStat:
    def test_accumulates_calls_total_and_max(self):
        stat = TimerStat()
        stat.add(0.5)
        stat.add(1.5)
        stat.add(0.25)
        assert stat.calls == 3
        assert stat.total_s == 2.25
        assert stat.max_s == 1.5

    def test_as_dict_is_json_ready(self):
        stat = TimerStat()
        stat.add(0.125)
        assert json.dumps(stat.as_dict())


class TestProfiler:
    def test_time_context_uses_injected_clock(self):
        prof = Profiler(clock=fake_clock([10.0, 12.5]))
        with prof.time("work"):
            pass
        assert prof.timers["work"].calls == 1
        assert prof.timers["work"].total_s == 2.5

    def test_nested_and_repeated_timers_accumulate(self):
        prof = Profiler(clock=fake_clock([0.0, 1.0, 5.0, 7.0]))
        with prof.time("step"):
            pass
        with prof.time("step"):
            pass
        assert prof.timers["step"].calls == 2
        assert prof.timers["step"].total_s == 3.0
        assert prof.timers["step"].max_s == 2.0

    def test_counters(self):
        prof = Profiler()
        prof.count("ticks")
        prof.count("ticks", 4)
        prof.set_counter("queue.depth", 17)
        assert prof.counters["ticks"] == 5
        assert prof.counters["queue.depth"] == 17

    def test_capture_network_records_engine_counters(self):
        prof = Profiler()
        net = BgpNetwork()
        net.add_router(BgpRouter("a", 65001))
        net.add_router(BgpRouter("b", 65002))
        net.add_provider("a", "b")
        net.router("a").originate("2001:db8:1::/48")
        net.converge()
        prof.capture_network(net, prefix="bgp")
        assert prof.counters["bgp.convergences"] == 1
        assert prof.counters["bgp.updates_delivered"] >= 1
        assert prof.counters["bgp.decisions_run"] >= 1

    def test_capture_simulator_records_event_counters(self):
        prof = Profiler()
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        prof.capture_simulator(sim, prefix="sim")
        assert prof.counters["sim.events_processed"] == 1

    def test_as_dict_and_json_round_trip(self):
        prof = Profiler(clock=fake_clock([0.0, 1.0]))
        with prof.time("t"):
            pass
        prof.count("c", 3)
        payload = json.loads(prof.to_json())
        assert payload["counters"]["c"] == 3
        assert payload["timers"]["t"]["calls"] == 1

    def test_format_table_mentions_every_metric(self):
        prof = Profiler(clock=fake_clock([0.0, 0.5]))
        with prof.time("alpha"):
            pass
        prof.count("beta", 2)
        table = prof.format_table()
        assert "alpha" in table
        assert "beta" in table


class TestNetworkProfilerHook:
    def test_converge_is_timed_when_profiler_attached(self):
        prof = Profiler()
        net = BgpNetwork()
        net.add_router(BgpRouter("a", 65001))
        net.add_router(BgpRouter("b", 65002))
        net.add_provider("a", "b")
        net.profiler = prof
        net.router("a").originate("2001:db8:1::/48")
        net.converge()
        assert prof.timers["bgp.converge.incremental"].calls == 1

    def test_simulator_run_is_timed_when_profiler_attached(self):
        prof = Profiler()
        sim = Simulator()
        sim.profiler = prof
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert prof.timers["sim.run"].calls == 1


def run_fluid(profiled):
    """A short Vultr fluid run, with or without a profiler attached."""
    from repro.scenarios.vultr import VultrDeployment
    from repro.traffic.demand import DemandModel, standard_flow_classes
    from repro.traffic.vector import create_fluid_engine

    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    demand = DemandModel(classes=standard_flow_classes(10_000.0), seed=3)
    fluid = create_fluid_engine(deployment, "ny", demand, engine="vector")
    prof = Profiler() if profiled else None
    fluid.profiler = prof
    fluid.start()
    deployment.sim.run(until=deployment.sim.now + 1.0)
    return fluid, prof


class TestTrafficCapture:
    def test_fluid_step_counters_when_profiler_attached(self):
        fluid, prof = run_fluid(profiled=True)
        assert prof.counters["fluid.steps"] == fluid.steps
        buckets = len(fluid.demand.classes) * len(fluid.tunnels)
        assert prof.counters["fluid.bucket_updates"] == fluid.steps * buckets

    def test_fluid_step_unprofiled_records_nothing(self):
        # The guarded fast path: no profiler, no counter machinery —
        # the engine only keeps its own cheap integers.
        fluid, prof = run_fluid(profiled=False)
        assert prof is None
        assert fluid.steps > 0
        assert fluid.splits_recomputed >= 1

    def test_capture_traffic_engine(self):
        fluid, _ = run_fluid(profiled=False)
        prof = Profiler()
        prof.capture_traffic_engine(fluid, prefix="fluid.vector")
        assert prof.counters["fluid.vector.steps_total"] == fluid.steps
        assert prof.counters["fluid.vector.peak_concurrent_flows"] == int(
            fluid.peak_concurrent_flows
        )
        assert (
            prof.counters["fluid.vector.splits_recomputed"]
            == fluid.splits_recomputed
        )

    def test_split_cache_rebuilds_rarely(self):
        # The resolver cache is the observable: resolutions happen per
        # (class, step) but rebuilds only when the selector moves.
        fluid, _ = run_fluid(profiled=False)
        resolutions = fluid.steps * len(fluid.demand.classes)
        assert fluid.splits_recomputed < resolutions / 2

    def test_capture_scheduler(self):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1)
        scheduler.register(lambda now: None)
        scheduler.register(lambda now: None, every=2)
        sim.run(until=1.0)
        prof = Profiler()
        prof.capture_scheduler(scheduler, prefix="ticks")
        assert prof.counters["ticks.rounds"] == scheduler.rounds
        assert prof.counters["ticks.callbacks_run"] == scheduler.callbacks_run
        assert prof.counters["ticks.registered"] == 2

    def test_scheduler_counts_rounds_with_work(self):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1)
        prof = Profiler()
        scheduler.profiler = prof
        scheduler.register(lambda now: None, every=5)
        sim.run(until=1.0)
        # 11 rounds fired but only ceil(11/5) had work in the bucket.
        assert prof.counters["ticks.rounds_with_work"] == 3
        assert prof.counters["ticks.callbacks"] == 3


class TestAppendMicroBench:
    def test_append_is_amortized_constant(self):
        # Doubling the appends must roughly double the wall time, never
        # square it (a realloc-per-append regression is ~50x here).
        def fill(n):
            series = TimeSeries()
            start = time.perf_counter()
            for i in range(n):
                series.append(float(i), 1.0)
            return time.perf_counter() - start, series

        fill(10_000)  # warm up
        small_s, _ = fill(50_000)
        big_s, big = fill(200_000)
        assert big.grows <= 10
        assert big_s < small_s * 16, (
            f"append no longer amortized O(1): {small_s:.4f}s for 50k vs "
            f"{big_s:.4f}s for 200k"
        )


class TestBenchReportShape:
    def test_workload_speedup_math(self):
        from repro.profiling.bench import WorkloadResult

        wl = WorkloadResult(name="x", baseline_s=3.0, incremental_s=1.0)
        assert wl.speedup == 3.0
        degenerate = WorkloadResult(name="y", baseline_s=1.0, incremental_s=0.0)
        assert degenerate.speedup == float("inf")

    def test_report_schema_fields(self):
        from repro.profiling.bench import (
            DISCOVERY_MIN_SPEEDUP,
            PerfReport,
            WorkloadResult,
        )

        report = PerfReport(
            scenario="vultr",
            smoke=True,
            workloads={
                "discovery": WorkloadResult(
                    name="discovery", baseline_s=0.4, incremental_s=0.1
                )
            },
            profile={"counters": {}, "timers": {}},
        )
        payload = json.loads(report.to_json())
        assert payload["schema"] == "tango-repro/bench-perf/v1"
        assert payload["thresholds"]["discovery_min_speedup"] == DISCOVERY_MIN_SPEEDUP
        assert payload["workloads"]["discovery"]["speedup"] == 4.0

    def test_bench_fault_plan_targets_exist_in_vultr(self):
        from repro.lint.plans import check_fault_plan, vultr_spec
        from repro.profiling.bench import bench_fault_plan

        assert check_fault_plan(bench_fault_plan(), vultr_spec()) == []
