"""Tests for synthetic topologies (mesh + ECMP fabrics)."""

import ipaddress

import pytest

from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.scenarios.topologies import build_ecmp_fanout, build_mesh_scenario


class TestMeshScenario:
    def test_minimum_edges_enforced(self):
        with pytest.raises(ValueError):
            build_mesh_scenario(1)

    def test_pairwise_discovery_complete(self):
        scenario = build_mesh_scenario(3)
        assert len(scenario.discoveries) == 6  # ordered pairs
        for result in scenario.discoveries.values():
            assert result.path_count >= 1

    def test_mesh_populated_with_all_pairs(self):
        scenario = build_mesh_scenario(3)
        for a in scenario.edge_names:
            for b in scenario.edge_names:
                if a != b:
                    assert scenario.mesh.direct_paths(a, b)

    def test_path_count_matches_provider_fanout(self):
        scenario = build_mesh_scenario(4, providers_per_edge=2)
        for result in scenario.discoveries.values():
            assert result.path_count == 2

    def test_deterministic_for_seed(self):
        a = build_mesh_scenario(3, seed=9)
        b = build_mesh_scenario(3, seed=9)
        for key in a.discoveries:
            assert a.discoveries[key].labels() == b.discoveries[key].labels()
        assert a.mesh.direct_paths("edge0", "edge1") == b.mesh.direct_paths(
            "edge0", "edge1"
        )

    def test_diversity_grows_with_n(self):
        """The E9 trend at unit scale."""
        small = build_mesh_scenario(3)
        large = build_mesh_scenario(5)
        assert large.mesh.diversity("edge0", "edge1", 1) > small.mesh.diversity(
            "edge0", "edge1", 1
        )

    def test_invalid_providers_per_edge(self):
        with pytest.raises(ValueError):
            build_mesh_scenario(3, providers_per_edge=0)


class TestEcmpFanout:
    def make_probe(self, sport, dst="2001:db8:ecf::9"):
        return Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("2001:db8:ec0::1"),
                    dst=ipaddress.IPv6Address(dst),
                ),
                UdpHeader(sport=sport, dport=33434),
            ],
            payload_bytes=16,
        )

    def test_needs_two_sub_paths(self):
        with pytest.raises(ValueError):
            build_ecmp_fanout(sub_path_delays_ms=(30.0,))

    def test_varying_ports_spread_over_sub_paths(self):
        """Unpinned probes measure 'multiple paths as one'."""
        fabric = build_ecmp_fanout()
        net = fabric.net
        src = net.node(fabric.src_name)
        for sport in range(300):
            net.inject(src, self.make_probe(20000 + sport))
        net.run()
        used = [
            net.links[f"core->dst:{i}"].stats.transmitted
            for i in range(len(fabric.sub_path_delays_ms))
        ]
        assert all(count > 30 for count in used)

    def test_fixed_tuple_sticks_to_one_sub_path(self):
        """Tango's encapsulation fix: one 5-tuple, one physical path."""
        fabric = build_ecmp_fanout()
        net = fabric.net
        src = net.node(fabric.src_name)
        for _ in range(100):
            net.inject(src, self.make_probe(sport=40000))
        net.run()
        used = [
            net.links[f"core->dst:{i}"].stats.transmitted
            for i in range(len(fabric.sub_path_delays_ms))
        ]
        assert sorted(used) == [0, 0, 100]
