"""Tests for the distributed-enterprise scenario — and, implicitly, for
the claim that nothing in the stack is Vultr-specific."""

import numpy as np
import pytest

from repro.core.policy import LowestDelaySelector
from repro.scenarios.enterprise import (
    ACCESS_ISP_ASN,
    BUSINESS_ISP_ASN,
    EnterpriseDeployment,
    build_enterprise_bgp,
)


@pytest.fixture(scope="module")
def deployment():
    d = EnterpriseDeployment(include_events=False)
    d.establish()
    return d


class TestControlPlane:
    def test_three_paths_per_direction(self, deployment):
        assert deployment.path_labels("factory") == ["NTT", "Telia", "Cogent"]
        assert deployment.path_labels("hq") == ["NTT", "Telia", "Cogent"]

    def test_no_shared_provider(self):
        bgp = build_enterprise_bgp()
        assert bgp.router("access-isp").asn == ACCESS_ISP_ASN
        assert bgp.router("business-isp").asn == BUSINESS_ISP_ASN
        assert ACCESS_ISP_ASN != BUSINESS_ISP_ASN

    def test_each_side_drives_its_own_providers_communities(self, deployment):
        """The suppression communities for factory→HQ paths are admin'd
        by the HQ's provider (the announcer's side), and vice versa."""
        state = deployment.state
        for path in state.discovery_a_to_b.paths:  # factory -> hq
            for community in path.communities:
                assert community.global_admin == BUSINESS_ISP_ASN
        for path in state.discovery_b_to_a.paths:  # hq -> factory
            for community in path.communities:
                assert community.global_admin == ACCESS_ISP_ASN


class TestDataPlane:
    def test_transatlantic_delays_measured(self, deployment):
        deployment.start_path_probes("factory", interval_s=0.02)
        deployment.net.run(until=2.0)
        inbound = deployment.gateway("hq").inbound
        offset = deployment.clock_offset_delta("factory")
        means = {
            p: float(np.mean(inbound.series(p).values)) - offset
            for p in inbound.path_ids()
        }
        # Telia (~80 ms) fastest, Cogent (~97 ms) slowest.
        assert means[1] < means[0] < means[2]
        assert 0.078 < means[1] < 0.084

    def test_adaptive_policy_rides_telia(self):
        deployment = EnterpriseDeployment(include_events=False)
        deployment.establish()
        deployment.start_path_probes("factory", interval_s=0.02)
        deployment.set_data_policy(
            "factory",
            LowestDelaySelector(
                deployment.gateway("factory").outbound, window_s=1.0
            ),
        )
        from repro.netsim.trace import PacketFactory

        factory_cfg = deployment.pairing.edge("factory")
        hq_cfg = deployment.pairing.edge("hq")
        packet_factory = PacketFactory(
            src=str(factory_cfg.host_address(3)),
            dst=str(hq_cfg.host_address(3)),
            flow_label=8,
        )
        send = deployment.sender_for("factory")
        for i in range(40):
            deployment.sim.schedule_at(
                2.0 + i * 0.05, lambda: send(packet_factory.build())
            )
        deployment.net.run(until=5.0)
        delivered = [
            p
            for p in deployment.hosts["hq"].received_packets
            if p.flow_label == 8
        ]
        assert len(delivered) == 40
        on_telia = [p for p in delivered if p.meta["tango_path_id"] == 1]
        assert len(on_telia) > 36

    def test_failure_injection_works_here_too(self):
        deployment = EnterpriseDeployment(include_events=False)
        deployment.establish()
        deployment.fail_path("factory", "Telia", at=1.0)
        deployment.start_path_probes("factory", interval_s=0.02)
        deployment.net.run(until=3.0)
        inbound = deployment.gateway("hq").inbound
        telia = inbound.series(1)
        # No Telia measurements arrive after the blackhole (+ in-flight).
        assert float(telia.times[-1]) < 1.2
