"""Tests for the Vultr deployment scenario — calibration and wiring.

These tests pin the scenario to the paper's reported numbers, so the
benchmark harness can't silently drift away from the evaluation.
"""

import numpy as np
import pytest

from repro.analysis.stats import default_vs_best
from repro.scenarios.vultr import (
    CLOCK_OFFSET_LA,
    CLOCK_OFFSET_NY,
    INSTABILITY_HOUR,
    LA_TO_NY_PATHS,
    NY_TO_LA_PATHS,
    ROUTE_CHANGE_HOUR,
    VultrDeployment,
    build_bgp_network,
)
from repro.telemetry.jitter import rolling_window_std


@pytest.fixture(scope="module")
def deployment():
    d = VultrDeployment()
    d.establish()
    return d


class TestControlPlane:
    def test_bgp_network_builds(self):
        bgp = build_bgp_network()
        assert "vultr-la" in bgp.routers
        assert bgp.router("vultr-la").asn == bgp.router("vultr-ny").asn

    def test_discovered_path_sets_match_figure3(self, deployment):
        assert deployment.path_labels("ny") == ["NTT", "Telia", "GTT", "Level3"]
        assert deployment.path_labels("la") == ["NTT", "Telia", "GTT", "Cogent"]

    def test_every_path_has_calibration(self, deployment):
        for src, calibrations in (("ny", NY_TO_LA_PATHS), ("la", LA_TO_NY_PATHS)):
            for label in deployment.path_labels(src):
                assert label in calibrations


class TestCalibration:
    def test_default_vs_best_gap_is_thirty_percent(self, deployment):
        """The headline: NTT (BGP default) ≈ 30% above GTT, NY→LA."""
        measured, true = deployment.run_fast_campaign(
            "ny", 0.0, 3600.0, interval_s=0.1
        )
        comparison = default_vs_best(
            true, {0: "NTT", 2: "GTT"}, default_path_id=0
        )
        assert comparison.best_label == "GTT"
        assert comparison.penalty_fraction == pytest.approx(0.30, abs=0.04)

    def test_gtt_floor_is_28ms(self, deployment):
        _, true = deployment.run_fast_campaign("ny", 0.0, 600.0, interval_s=0.01)
        gtt = true.series(2).values
        assert float(np.min(gtt)) == pytest.approx(0.028, abs=0.001)

    def test_la_to_ny_jitter_matches_paper(self, deployment):
        """GTT ≈ 0.01 ms, Telia ≈ 0.33 ms rolling-window stddev."""
        _, true = deployment.run_fast_campaign("la", 0.0, 120.0, interval_s=0.01)
        gtt = true.series(64 + 2)
        telia = true.series(64 + 1)
        gtt_jitter = rolling_window_std(gtt.times, gtt.values)
        telia_jitter = rolling_window_std(telia.times, telia.values)
        assert gtt_jitter == pytest.approx(0.00001, rel=0.15)
        assert telia_jitter == pytest.approx(0.00033, rel=0.15)

    def test_measured_equals_true_plus_offset(self, deployment):
        measured, true = deployment.run_fast_campaign("ny", 0.0, 10.0)
        delta = deployment.clock_offset_delta("ny")
        assert delta == pytest.approx(CLOCK_OFFSET_LA - CLOCK_OFFSET_NY)
        np.testing.assert_allclose(
            measured.series(0).values, true.series(0).values + delta
        )

    def test_offsets_opposite_between_directions(self, deployment):
        assert deployment.clock_offset_delta("ny") == pytest.approx(
            -deployment.clock_offset_delta("la")
        )


class TestEvents:
    def test_route_change_shifts_gtt_by_5ms(self, deployment):
        start = ROUTE_CHANGE_HOUR * 3600.0
        _, true = deployment.run_fast_campaign(
            "ny", start - 300.0, start + 900.0, interval_s=0.1
        )
        gtt = true.series(2)
        before = gtt.window(start - 300.0, start - 10.0)[1].mean()
        plateau = gtt.window(start + 60.0, start + 540.0)[1].mean()
        after_times = start + 700.0
        after = gtt.window(after_times, start + 900.0)[1].mean()
        assert plateau - before == pytest.approx(0.005, abs=0.0005)
        assert after == pytest.approx(before, abs=0.0005)

    def test_instability_spikes_to_78ms(self, deployment):
        start = INSTABILITY_HOUR * 3600.0
        _, true = deployment.run_fast_campaign(
            "ny", start - 60.0, start + 360.0, interval_s=0.01
        )
        gtt = true.series(2).values
        assert float(np.max(gtt)) == pytest.approx(0.078, abs=0.002)
        # Floor still touched during instability (some packets on time).
        window = true.series(2).window(start, start + 300.0)[1]
        assert float(np.min(window)) == pytest.approx(0.028, abs=0.001)

    def test_other_paths_quiet_during_instability(self, deployment):
        start = INSTABILITY_HOUR * 3600.0
        _, true = deployment.run_fast_campaign(
            "ny", start, start + 300.0, interval_s=0.01
        )
        for path_id, label in ((0, "NTT"), (1, "Telia"), (3, "Level3")):
            values = true.series(path_id).values
            base = NY_TO_LA_PATHS[label].base_ms * 1e-3
            assert float(np.max(values)) < base + 0.012

    def test_events_absent_when_disabled(self):
        quiet = VultrDeployment(include_events=False)
        quiet.establish()
        start = INSTABILITY_HOUR * 3600.0
        _, true = quiet.run_fast_campaign("ny", start, start + 300.0, 0.01)
        assert float(np.max(true.series(2).values)) < 0.030


class TestPacketFastAgreement:
    def test_packet_level_measurement_matches_fast_campaign(self):
        """The fast sampler and the packet pipeline must be the same
        measurement: identical delay process, identical offset."""
        d = VultrDeployment(include_events=False)
        d.establish()
        d.start_path_probes("ny", interval_s=0.02)
        d.net.run(until=3.0)
        measured_fast, _ = d.run_fast_campaign("ny", 0.0, 3.0, interval_s=0.02)
        inbound = d.gateway_la.inbound
        for path_id in (0, 1, 2, 3):
            packet_mean = float(np.mean(inbound.series(path_id).values))
            fast_mean = float(np.mean(measured_fast.series(path_id).values))
            assert packet_mean == pytest.approx(fast_mean, abs=3e-4)

    def test_probe_streams_cover_all_paths(self):
        d = VultrDeployment(include_events=False)
        d.establish()
        d.start_path_probes("la", interval_s=0.05)
        d.net.run(until=2.0)
        assert d.gateway_ny.inbound.path_ids() == [64, 65, 66, 67]


class TestWorkloadPlumbing:
    def test_data_policy_preserved_alongside_probes(self):
        from repro.core.policy import StaticSelector

        d = VultrDeployment(include_events=False)
        d.establish()
        d.start_path_probes("ny", interval_s=0.05)
        d.set_data_policy("ny", StaticSelector(2))
        send = d.sender_for("ny")
        factory_dst = str(d.pairing.b.host_address(7))
        from repro.netsim.trace import PacketFactory

        factory = PacketFactory(
            src=str(d.pairing.a.host_address(7)), dst=factory_dst, flow_label=5
        )
        for _ in range(10):
            send(factory.build())
        d.net.run(until=1.0)
        # Data packets (flow 5) rode GTT (path 2).
        delivered = [
            p
            for p in d.host_la.received_packets
            if p.meta.get("tango_path_id") == 2 and p.flow_label == 5
        ]
        assert len(delivered) == 10

    def test_unestablished_deployment_raises(self):
        d = VultrDeployment()
        with pytest.raises(RuntimeError, match="establish"):
            d.tunnels("ny")
        with pytest.raises(RuntimeError, match="establish"):
            d.start_path_probes("ny")

    def test_fast_campaign_validation(self, deployment):
        with pytest.raises(ValueError, match="t1 > t0"):
            deployment.run_fast_campaign("ny", 10.0, 10.0)


class TestSrlgAnnotations:
    def test_tunnels_carry_conduit_and_transit_tags(self, deployment):
        by_label = {t.short_label: t for t in deployment.tunnels("ny")}
        assert "socal-conduit" in by_label["GTT"].srlgs
        assert "socal-conduit" in by_label["Telia"].srlgs
        assert "ntt-backbone" in by_label["NTT"].srlgs
        # Fate tags derived from the discovered transit ASNs.
        assert "transit:GTT" in by_label["GTT"].srlgs
        assert "transit:NTT" in by_label["NTT"].srlgs

    def test_registry_maps_groups_to_both_directions(self, deployment):
        members = deployment.srlg.link_members("socal-conduit")
        assert len(members) == 4  # GTT+Telia, ny->la and la->ny
        assert all(name in deployment.net.links for name in members)

    def test_socal_region_registered(self, deployment):
        region = deployment.srlg.region("socal")
        assert set(region.routers) == {"gtt", "telia"}
        assert region.groups == ("socal-conduit",)

    def test_wan_links_expose_their_groups(self, deployment):
        link = deployment.wan_link("ny", "GTT")
        assert "socal-conduit" in link.srlgs
