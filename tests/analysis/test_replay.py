"""Tests for the campaign-scale policy replay engine."""

import numpy as np
import pytest

from repro.analysis.replay import (
    PolicyReplay,
    greedy_chooser,
    hysteresis_chooser,
    jitter_aware_chooser,
    static_chooser,
)
from repro.telemetry.store import MeasurementStore


def campaign(events=True, interval=0.01, t1=20.0):
    """Two paths: path 0 steady at 36 ms; path 2 at 28 ms, spiking to
    80 ms during [8, 12) when events=True."""
    measured, true = MeasurementStore(), MeasurementStore()
    times = np.arange(0.0, t1, interval)
    p0 = np.full(times.size, 0.036)
    p2 = np.full(times.size, 0.028)
    if events:
        p2[(times >= 8.0) & (times < 12.0)] = 0.080
    for store, offset in ((measured, 0.0045), (true, 0.0)):
        store.extend(0, times, p0 + offset)
        store.extend(2, times, p2 + offset)
    return measured, true


def make_replay(**kwargs):
    measured, true = campaign(**{k: v for k, v in kwargs.items() if k in ("events",)})
    params = {k: v for k, v in kwargs.items() if k not in ("events",)}
    return PolicyReplay(measured, true, **params)


class TestReplayMechanics:
    def test_static_chooser_matches_truth(self):
        replay = make_replay(events=False)
        result = replay.run(static_chooser(0), 0.0, 20.0, name="default")
        assert result.mean_delay == pytest.approx(0.036)
        assert result.switch_count == 0
        assert result.fraction_on_path(0) == 1.0

    def test_greedy_follows_best_path(self):
        replay = make_replay(events=False)
        result = replay.run(greedy_chooser(), 0.0, 20.0)
        assert result.fraction_on_path(2) > 0.9

    def test_greedy_dodges_the_event(self):
        """Adaptive policy leaves path 2 during its spike window and
        returns afterwards — the Fig. 4-right story."""
        replay = make_replay(events=True)
        adaptive = replay.run(greedy_chooser(), 0.0, 20.0)
        static = replay.run(static_chooser(2), 0.0, 20.0)
        assert adaptive.mean_delay < static.mean_delay
        # Feedback latency means the adaptive policy eats a short burst
        # of spiked samples before reacting; what matters is that its
        # exposure to the event is a small fraction of the static one's.
        adaptive_exposure = float(np.mean(adaptive.achieved > 0.05))
        static_exposure = float(np.mean(static.achieved > 0.05))
        assert static_exposure == pytest.approx(0.2, abs=0.02)
        assert adaptive_exposure < static_exposure / 4
        assert adaptive.switch_count >= 2  # out and back

    def test_visibility_latency_delays_reaction(self):
        fast = make_replay(events=True, visibility_latency_s=0.1).run(
            greedy_chooser(), 0.0, 20.0
        )
        slow = make_replay(events=True, visibility_latency_s=2.0).run(
            greedy_chooser(), 0.0, 20.0
        )
        # Slower feedback -> more time stuck on the spiking path.
        assert slow.mean_delay >= fast.mean_delay

    def test_restrict_paths_limits_choices(self):
        replay = make_replay(events=False)
        result = replay.run(
            greedy_chooser(), 0.0, 20.0, restrict_paths=[0]
        )
        assert result.fraction_on_path(0) == 1.0

    def test_unknown_choice_rejected(self):
        replay = make_replay(events=False)
        with pytest.raises(ValueError, match="unknown path"):
            replay.run(static_chooser(99), 0.0, 20.0)

    def test_empty_window_rejected(self):
        replay = make_replay(events=False)
        with pytest.raises(ValueError, match="no samples"):
            replay.run(static_chooser(0), 100.0, 200.0)

    def test_result_row_rendering(self):
        replay = make_replay(events=False)
        row = replay.run(static_chooser(0), 0.0, 20.0, name="x").as_row()
        assert row["policy"] == "x"
        assert row["mean_ms"] == pytest.approx(36.0)

    def test_parameter_validation(self):
        measured, true = campaign()
        with pytest.raises(ValueError):
            PolicyReplay(measured, true, decision_interval_s=0.0)
        with pytest.raises(ValueError):
            PolicyReplay(measured, true, visibility_latency_s=-1.0)


class TestChoosers:
    def test_hysteresis_resists_marginal_wins(self):
        measured, true = MeasurementStore(), MeasurementStore()
        times = np.arange(0.0, 10.0, 0.01)
        for store in (measured, true):
            store.extend(0, times, np.full(times.size, 0.0300))
            store.extend(1, times, np.full(times.size, 0.0295))
        replay = PolicyReplay(measured, true)
        result = replay.run(
            hysteresis_chooser(margin_s=0.002, dwell_s=1.0), 0.0, 10.0
        )
        assert result.switch_count == 0  # 0.5 ms never beats the margin

    def test_hysteresis_takes_clear_wins(self):
        replay = make_replay(events=False)
        result = replay.run(
            hysteresis_chooser(margin_s=0.002, dwell_s=0.5), 0.0, 20.0
        )
        assert result.fraction_on_path(2) > 0.9

    def test_jitter_aware_prefers_stable(self):
        measured, true = MeasurementStore(), MeasurementStore()
        times = np.arange(0.0, 10.0, 0.01)
        rng = np.random.default_rng(1)
        noisy = 0.029 + rng.normal(0, 0.002, times.size)
        quiet = np.full(times.size, 0.030)
        for store in (measured, true):
            store.extend(0, times, noisy)
            store.extend(1, times, quiet)
        replay = PolicyReplay(measured, true)
        result = replay.run(jitter_aware_chooser(jitter_weight=10.0), 0.0, 10.0)
        assert result.fraction_on_path(1) > 0.9

    def test_greedy_keeps_current_when_blind(self):
        chooser = greedy_chooser()
        assert chooser([], 5, 0.0) == 5
