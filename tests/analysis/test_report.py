"""Tests for report rendering."""

from repro.analysis.report import format_kv, format_table, series_sparkline


class TestFormatTable:
    ROWS = [
        {"path": "NTT", "mean_ms": 36.4},
        {"path": "GTT", "mean_ms": 28.05},
    ]

    def test_contains_header_and_rows(self):
        text = format_table(self.ROWS)
        assert "path" in text
        assert "NTT" in text
        assert "28.050" in text

    def test_title_prepended(self):
        assert format_table(self.ROWS, title="Fig 4").startswith("Fig 4")

    def test_column_selection_and_order(self):
        text = format_table(self.ROWS, columns=["mean_ms", "path"])
        header = text.splitlines()[0]
        assert header.index("mean_ms") < header.index("path")

    def test_missing_cells_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_alignment_consistent(self):
        lines = format_table(self.ROWS).splitlines()
        assert len({len(line) for line in lines[1:]}) == 1


class TestFormatKv:
    def test_pairs_rendered(self):
        text = format_kv([("penalty", 0.30), ("paths", 4)], title="headline")
        assert "headline" in text
        assert "penalty: 0.300" in text
        assert "paths: 4" in text


class TestSparkline:
    def test_empty(self):
        assert series_sparkline([]) == ""

    def test_flat_series_uses_lowest_glyph(self):
        line = series_sparkline([5.0] * 10)
        assert set(line) == {"▁"}

    def test_peak_maps_to_highest_glyph(self):
        line = series_sparkline([0.0, 0.0, 10.0, 0.0])
        assert "█" in line

    def test_downsampled_to_width(self):
        line = series_sparkline(list(range(1000)), width=60)
        assert len(line) == 60

    def test_downsampling_preserves_peaks(self):
        values = [0.0] * 1000
        values[500] = 9.0
        line = series_sparkline(values, width=50)
        assert "█" in line
