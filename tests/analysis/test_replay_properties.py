"""Property-based tests on the replay engine and telemetry mirror —
the two places where a silent bookkeeping bug would corrupt every
campaign-scale result."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.replay import PolicyReplay
from repro.core.session import TelemetryMirror
from repro.telemetry.store import MeasurementStore


def make_stores(path_means, t1, interval):
    measured, true = MeasurementStore(), MeasurementStore()
    times = np.arange(0.0, t1, interval)
    for path_id, mean in path_means.items():
        values = np.full(times.size, mean)
        measured.extend(path_id, times, values + 0.005)
        true.extend(path_id, times, values)
    return measured, true


class TestReplayProperties:
    @given(
        means=st.lists(
            st.floats(min_value=0.01, max_value=0.1, allow_nan=False),
            min_size=2,
            max_size=5,
        ),
        decision_interval=st.floats(min_value=0.05, max_value=1.3),
        probe_interval=st.sampled_from([0.01, 0.05, 0.1]),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_probe_gets_a_choice_and_a_true_value(
        self, means, decision_interval, probe_interval
    ):
        """Property: regardless of epoch/probe grid alignment, every
        probe sample is assigned a valid path and its achieved value is
        exactly the chosen path's true value at that instant."""
        path_means = {i: m for i, m in enumerate(means)}
        measured, true = make_stores(path_means, 10.0, probe_interval)
        replay = PolicyReplay(
            measured, true, decision_interval_s=decision_interval
        )

        def chooser(views, current, now):
            # Rotate deterministically to exercise many epochs.
            return int(now * 10) % len(means)

        result = replay.run(chooser, 0.0, 10.0)
        assert set(np.unique(result.choices)).issubset(set(path_means))
        for path_id in path_means:
            mask = result.choices == path_id
            if np.any(mask):
                np.testing.assert_allclose(
                    result.achieved[mask], path_means[path_id]
                )

    @given(
        st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_switch_count_matches_choice_transitions(self, decision_interval):
        measured, true = make_stores({0: 0.03, 1: 0.04}, 10.0, 0.01)
        replay = PolicyReplay(
            measured, true, decision_interval_s=decision_interval
        )

        def chooser(views, current, now):
            return int(now) % 2  # alternate each second

        result = replay.run(chooser, 0.0, 10.0, initial_path=0)
        transitions = int(np.sum(np.diff(result.choices) != 0))
        assert result.switch_count == transitions


class TestMirrorProperties:
    @given(
        sample_count=st.integers(min_value=1, max_value=200),
        sync_points=st.lists(
            st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=20
        ),
        latency=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mirror_is_exactly_once(self, sample_count, sync_points, latency):
        """Property: for any sync schedule, every source sample older
        than the horizon appears in the sink exactly once, unchanged."""
        source, sink = MeasurementStore(), MeasurementStore()
        times = np.arange(sample_count) * 0.1
        values = 0.028 + times * 1e-4
        source.extend(7, times, values)
        mirror = TelemetryMirror(source, sink, latency_s=latency)
        for t in sorted(sync_points):
            mirror.sync(t)
        final_horizon = max(sync_points) - latency
        expected = times[times <= final_horizon]
        series = sink.series(7)
        np.testing.assert_array_equal(series.times, expected)
        np.testing.assert_array_equal(
            series.values, values[: expected.size]
        )
        assert mirror.samples_mirrored == expected.size
