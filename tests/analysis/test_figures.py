"""Tests for figure-data export."""

import csv

import pytest

from repro.analysis.figures import (
    export_all,
    export_fig4_left,
    export_fig4_middle,
    export_fig4_right,
)
from repro.scenarios.vultr import ROUTE_CHANGE_HOUR, VultrDeployment


@pytest.fixture(scope="module")
def deployment():
    d = VultrDeployment()
    d.establish()
    return d


def read_csv(path):
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = list(reader)
    return header, rows


class TestExport:
    def test_left_panel_columns_and_range(self, deployment, tmp_path):
        out = export_fig4_left(deployment, tmp_path, interval_s=60.0)
        header, rows = read_csv(out)
        assert header == [
            "time_hours",
            "NTT_ms",
            "Telia_ms",
            "GTT_ms",
            "Level3_ms",
        ]
        hours = [float(r[0]) for r in rows]
        assert hours[0] == pytest.approx(25.0, abs=0.01)
        assert hours[-1] == pytest.approx(48.0, abs=0.05)
        # GTT column stays in the figure's latency band.
        gtt = [float(r[3]) for r in rows]
        assert all(25.0 < v < 50.0 for v in gtt)

    def test_middle_panel_contains_the_event(self, deployment, tmp_path):
        out = export_fig4_middle(deployment, tmp_path, interval_s=5.0)
        header, rows = read_csv(out)
        gtt_before = [
            float(r[3])
            for r in rows
            if float(r[0]) < ROUTE_CHANGE_HOUR - 0.01
        ]
        gtt_plateau = [
            float(r[3])
            for r in rows
            if ROUTE_CHANGE_HOUR + 0.02 < float(r[0]) < ROUTE_CHANGE_HOUR + 0.15
        ]
        assert gtt_before and gtt_plateau
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(gtt_plateau) - mean(gtt_before) == pytest.approx(5.0, abs=0.5)

    def test_right_panel_has_spikes(self, deployment, tmp_path):
        out = export_fig4_right(deployment, tmp_path, interval_s=0.05)
        _, rows = read_csv(out)
        gtt = [float(r[3]) for r in rows]
        assert max(gtt) > 70.0
        assert min(gtt) < 29.0

    def test_export_all_writes_three_files(self, deployment, tmp_path):
        paths = export_all(deployment, tmp_path / "figs")
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 100
