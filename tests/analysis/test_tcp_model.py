"""Tests for the TCP impact model."""

import math

import numpy as np
import pytest

from repro.analysis.tcp_model import (
    InOrderDeliveryModel,
    mathis_throughput,
    stream_goodput,
)


class TestInOrderDelivery:
    def test_steady_stream_no_blocking(self):
        sends = np.arange(100) * 0.01
        delays = np.full(100, 0.028)
        stats = InOrderDeliveryModel().replay(sends, delays)
        assert stats.mean_app_delay_s == pytest.approx(0.028)
        assert stats.hol_blocking_penalty_s == pytest.approx(0.0)
        assert stats.stalled_packets == 0

    def test_one_spike_blocks_following_packets(self):
        """The paper's Section 5 argument, quantified: one 78 ms packet
        holds up in-order delivery of the 28 ms packets behind it."""
        sends = np.arange(10) * 0.01
        delays = np.full(10, 0.028)
        delays[2] = 0.078  # spiked packet
        stats = InOrderDeliveryModel().replay(sends, delays)
        # Packets 3 and 4 arrive before packet 2 is delivered: stalled.
        assert stats.stalled_packets == 4
        assert stats.max_app_delay_s == pytest.approx(0.078)
        assert stats.hol_blocking_penalty_s > 0.0

    def test_spike_penalty_scales_with_magnitude(self):
        sends = np.arange(50) * 0.01
        small, big = np.full(50, 0.028), np.full(50, 0.028)
        small[10] = 0.040
        big[10] = 0.078
        model = InOrderDeliveryModel()
        assert (
            model.replay(sends, big).hol_blocking_penalty_s
            > model.replay(sends, small).hol_blocking_penalty_s
        )

    def test_stall_threshold_filters_jitter(self):
        sends = np.arange(10) * 0.01
        delays = np.full(10, 0.028)
        delays[2] = 0.0285  # sub-threshold wiggle
        stats = InOrderDeliveryModel(stall_threshold_s=0.001).replay(
            sends, delays
        )
        assert stats.stalled_packets == 0

    def test_validation(self):
        model = InOrderDeliveryModel()
        with pytest.raises(ValueError, match="empty"):
            model.replay(np.asarray([]), np.asarray([]))
        with pytest.raises(ValueError, match="align"):
            model.replay(np.arange(3.0), np.arange(2.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            model.replay(np.asarray([1.0, 0.5]), np.ones(2))
        with pytest.raises(ValueError):
            InOrderDeliveryModel(stall_threshold_s=-1.0)


class TestMathis:
    def test_lower_loss_higher_throughput(self):
        fast = mathis_throughput(1460, 0.056, 0.001)
        slow = mathis_throughput(1460, 0.056, 0.01)
        assert fast > slow

    def test_lower_rtt_higher_throughput(self):
        assert mathis_throughput(1460, 0.056, 0.001) > mathis_throughput(
            1460, 0.080, 0.001
        )

    def test_zero_loss_unbounded(self):
        assert math.isinf(mathis_throughput(1460, 0.056, 0.0))

    def test_known_value(self):
        # MSS/(RTT*sqrt(2p/3)) with p=0.01, RTT=100ms, MSS=1460.
        expected = 1460 / (0.1 * math.sqrt(2 * 0.01 / 3))
        assert mathis_throughput(1460, 0.1, 0.01) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            mathis_throughput(0, 0.1, 0.01)
        with pytest.raises(ValueError):
            mathis_throughput(1460, 0.0, 0.01)
        with pytest.raises(ValueError):
            mathis_throughput(1460, 0.1, 1.5)


class TestStreamGoodput:
    def test_all_on_time(self):
        sends = np.arange(100) * 0.01
        delays = np.full(100, 0.028)
        goodput = stream_goodput(sends, delays, payload_bytes=100, deadline_s=0.05)
        # 100 packets * 100 B over 0.99 s.
        assert goodput == pytest.approx(100 * 100 / 0.99)

    def test_spikes_cut_goodput(self):
        sends = np.arange(100) * 0.01
        clean = np.full(100, 0.028)
        spiky = clean.copy()
        spiky[30:40] = 0.078  # late AND blocking later packets
        clean_goodput = stream_goodput(sends, clean, 100, 0.05)
        spiky_goodput = stream_goodput(sends, spiky, 100, 0.05)
        assert spiky_goodput < clean_goodput

    def test_empty_stream(self):
        assert stream_goodput(np.asarray([]), np.asarray([]), 100, 0.05) == 0.0
