"""Tests for campaign statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    campaign_table,
    default_vs_best,
    detect_excursions,
    time_under_threshold,
)
from repro.telemetry.store import MeasurementStore


def store_with(means, offset=0.0, n=200):
    store = MeasurementStore()
    times = np.arange(n) * 0.01
    for path_id, mean in means.items():
        store.extend(path_id, times, np.full(n, mean + offset))
    return store


class TestCampaignTable:
    def test_rows_per_path(self):
        store = store_with({0: 0.036, 2: 0.028})
        rows = campaign_table(store, labels={0: "NTT", 2: "GTT"})
        assert [r.label for r in rows] == ["NTT", "GTT"]
        assert rows[0].mean == pytest.approx(0.036)
        assert rows[0].as_row()["mean_ms"] == pytest.approx(36.0)

    def test_window_restriction(self):
        store = MeasurementStore()
        store.extend(1, np.asarray([0.0, 10.0]), np.asarray([0.030, 0.090]))
        rows = campaign_table(store, labels={}, t0=5.0, t1=15.0)
        assert rows[0].samples == 1
        assert rows[0].mean == pytest.approx(0.090)

    def test_empty_window_skipped(self):
        store = store_with({1: 0.030})
        assert campaign_table(store, {}, t0=100.0, t1=200.0) == []


class TestDefaultVsBest:
    def test_paper_headline_shape(self):
        """NTT (default) ≈ 30% worse than GTT (best)."""
        store = store_with({0: 0.0364, 1: 0.033, 2: 0.028})
        comparison = default_vs_best(store, {0: "NTT", 2: "GTT"}, 0)
        assert comparison.best_label == "GTT"
        assert comparison.penalty_fraction == pytest.approx(0.30, abs=0.01)

    def test_offset_correction(self):
        store = store_with({0: 0.0364, 2: 0.028}, offset=0.0045)
        corrected = default_vs_best(
            store, {}, 0, offset_correction_s=0.0045
        )
        assert corrected.penalty_fraction == pytest.approx(0.30, abs=0.01)

    def test_unknown_default_raises(self):
        store = store_with({1: 0.030})
        with pytest.raises(KeyError):
            default_vs_best(store, {}, 0)

    def test_default_already_best(self):
        store = store_with({0: 0.028, 1: 0.036})
        comparison = default_vs_best(store, {}, 0)
        assert comparison.penalty_fraction == 0.0


class TestTimeUnderThreshold:
    def test_fraction(self):
        values = np.asarray([0.01, 0.02, 0.03, 0.04])
        assert time_under_threshold(None, values, 0.025) == pytest.approx(0.5)

    def test_empty_nan(self):
        assert np.isnan(time_under_threshold(None, np.asarray([]), 1.0))


class TestDetectExcursions:
    def test_single_excursion_found(self):
        times = np.arange(100) * 1.0
        values = np.full(100, 0.028)
        values[40:50] = 0.060
        excursions = detect_excursions(times, values, threshold=0.04)
        assert len(excursions) == 1
        assert excursions[0].start == 40.0
        assert excursions[0].end == 49.0
        assert excursions[0].peak == pytest.approx(0.060)

    def test_nearby_excursions_merge(self):
        times = np.arange(100) * 1.0
        values = np.full(100, 0.028)
        values[10] = 0.060
        values[12] = 0.070  # gap of 2 s > merge_gap 1 s -> separate
        separate = detect_excursions(times, values, 0.04, merge_gap_s=1.0)
        merged = detect_excursions(times, values, 0.04, merge_gap_s=5.0)
        assert len(separate) == 2
        assert len(merged) == 1
        assert merged[0].peak == pytest.approx(0.070)

    def test_min_duration_filters_blips(self):
        times = np.arange(100) * 1.0
        values = np.full(100, 0.028)
        values[10] = 0.060
        values[40:60] = 0.060
        excursions = detect_excursions(
            times, values, 0.04, min_duration_s=5.0
        )
        assert len(excursions) == 1
        assert excursions[0].start == 40.0

    def test_no_excursions(self):
        times = np.arange(10) * 1.0
        values = np.full(10, 0.028)
        assert detect_excursions(times, values, 0.04) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            detect_excursions(np.arange(3.0), np.arange(2.0), 1.0)
