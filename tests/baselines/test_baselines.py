"""Tests for the Section 2 baselines.

The common substrate: a two-direction synthetic campaign with four paths
per direction, a directional asymmetric event, and a clock offset on
measured values.
"""

import numpy as np
import pytest

from repro.analysis.replay import PolicyReplay, greedy_chooser
from repro.baselines import (
    BgpDefaultBaseline,
    MultihomingBaseline,
    OverlayBaseline,
    RttProbingBaseline,
)
from repro.telemetry.store import MeasurementStore

T1 = 60.0
INTERVAL = 0.01
#: forward means: path 0 = BGP default (slow), path 2 = best.
FWD_MEANS = {0: 0.0364, 1: 0.0330, 2: 0.0280, 3: 0.0402}
REV_MEANS = {0: 0.0366, 1: 0.0334, 2: 0.0283, 3: 0.0410}


def truth(means, event_path=None, event=(20.0, 40.0, 0.030)):
    store = MeasurementStore()
    times = np.arange(0.0, T1, INTERVAL)
    for path_id, mean in means.items():
        values = np.full(times.size, mean)
        if path_id == event_path:
            start, end, shift = event
            values[(times >= start) & (times < end)] += shift
        store.extend(path_id, times, values)
    return store


@pytest.fixture()
def fwd_true():
    return truth(FWD_MEANS)


@pytest.fixture()
def rev_true():
    return truth(REV_MEANS)


class TestBgpDefault:
    def test_rides_default_path_throughout(self, fwd_true):
        replay = PolicyReplay(fwd_true, fwd_true)
        result = BgpDefaultBaseline().run(replay, 0.0, T1)
        assert result.fraction_on_path(0) == 1.0
        assert result.mean_delay == pytest.approx(0.0364)
        assert result.switch_count == 0

    def test_blind_to_events(self):
        store = truth(FWD_MEANS, event_path=0)
        replay = PolicyReplay(store, store)
        result = BgpDefaultBaseline().run(replay, 0.0, T1)
        assert result.max_delay == pytest.approx(0.0664)  # eats the event


class TestRttProbing:
    def test_estimates_blend_both_directions(self, fwd_true, rev_true):
        baseline = RttProbingBaseline(fwd_true, rev_true)
        estimates = baseline.build_estimates(0.0, T1)
        est = estimates.series(0).values.mean()
        # RTT/2 ~ (fwd + rev)/2 plus non-negative noise.
        assert est >= (0.0364 + 0.0366) / 2 - 1e-6
        assert est < 0.040

    def test_finds_best_path_in_symmetric_steady_state(
        self, fwd_true, rev_true
    ):
        baseline = RttProbingBaseline(fwd_true, rev_true)
        result = baseline.run(0.0, T1)
        assert result.fraction_on_path(2) > 0.8

    def test_blind_to_forward_only_asymmetry(self, rev_true):
        """A forward-only degradation on the best path, mirrored by an
        equal reverse-path improvement, is invisible to RTT/2 — the E7
        ablation's core mechanism."""
        fwd = truth(FWD_MEANS, event_path=2, event=(20.0, 40.0, 0.020))
        rev = truth(REV_MEANS, event_path=2, event=(20.0, 40.0, -0.020))
        baseline = RttProbingBaseline(fwd, rev)
        estimates = baseline.build_estimates(0.0, T1)
        inside = estimates.series(2).window(25.0, 35.0)[1].mean()
        outside = estimates.series(2).window(0.0, 10.0)[1].mean()
        assert inside == pytest.approx(outside, abs=1.5e-3)
        # So the prober keeps the (actually degraded) path.
        result = baseline.run(0.0, T1)
        assert result.fraction_on_path(2) > 0.8

    def test_direction_count_mismatch_rejected(self, fwd_true):
        partial = MeasurementStore()
        partial.record(0, 0.0, 0.03)
        with pytest.raises(ValueError, match="path counts"):
            RttProbingBaseline(fwd_true, partial).build_estimates(0.0, T1)


class TestMultihoming:
    def test_restricted_to_own_providers(self, fwd_true, rev_true):
        baseline = MultihomingBaseline(
            fwd_true, rev_true, accessible_paths=[0, 1]
        )
        result = baseline.run(0.0, T1)
        assert result.fraction_on_path(2) == 0.0  # best path unreachable
        assert result.fraction_on_path(1) > 0.8  # best of its own set

    def test_beats_default_but_not_tango(self, fwd_true, rev_true):
        multihoming = MultihomingBaseline(
            fwd_true, rev_true, accessible_paths=[0, 1]
        ).run(0.0, T1)
        replay = PolicyReplay(fwd_true, fwd_true)
        tango_like = replay.run(greedy_chooser(), 0.0, T1)
        default = BgpDefaultBaseline().run(replay, 0.0, T1)
        assert multihoming.mean_delay < default.mean_delay
        assert tango_like.mean_delay < multihoming.mean_delay

    def test_needs_at_least_one_provider(self, fwd_true, rev_true):
        with pytest.raises(ValueError):
            MultihomingBaseline(fwd_true, rev_true, accessible_paths=[])


class TestOverlay:
    def test_overhead_charged_on_every_packet(self, fwd_true):
        baseline = OverlayBaseline(fwd_true, forwarding_overhead_s=0.001)
        result = baseline.run(0.0, T1)
        # After the probing warm-up it finds the 28 ms path, but every
        # packet pays the +1 ms software forwarding tax.
        steady = result.achieved[result.times >= 20.0]
        assert float(np.mean(steady)) == pytest.approx(0.0290, abs=2e-4)

    def test_sparse_probing_reacts_slowly(self):
        fwd = truth(FWD_MEANS, event_path=2, event=(20.0, 22.0, 0.050))
        fast = OverlayBaseline(fwd, probe_interval_s=1.0, seed=1).run(0.0, T1)
        slow = OverlayBaseline(fwd, probe_interval_s=30.0, seed=1).run(0.0, T1)
        assert slow.mean_delay >= fast.mean_delay

    def test_parameter_validation(self, fwd_true):
        with pytest.raises(ValueError):
            OverlayBaseline(fwd_true, forwarding_overhead_s=-1.0)
        with pytest.raises(ValueError):
            OverlayBaseline(fwd_true, probe_interval_s=0.0)
