"""TickScheduler: one heap event, PeriodicTask-parity semantics.

The wheel is only admissible as a PeriodicTask replacement if its
firing sequence is indistinguishable at round-aligned times: same tick
instants, same pause/resume behavior, and a callback order that is a
pure function of registration history (never heap layout).  These tests
pin that contract, plus the heap-relief property the wheel exists for.
"""

import pytest

from repro.core.controller import TangoController
from repro.netsim.events import Simulator
from repro.netsim.ticks import TickScheduler
from repro.telemetry.loss import LossMonitor
from repro.telemetry.store import MeasurementStore
from repro.dataplane.seqnum import SequenceTracker
from repro.traffic.splitting import SplitRebalancer, WeightedSplitSelector


def recorder(log, tag):
    return lambda now: log.append((tag, round(now, 9)))


class TestFiringParity:
    def test_matches_call_every_instants(self):
        sim = Simulator()
        wheel_times, task_times = [], []
        scheduler = TickScheduler(sim, 0.1)
        scheduler.register(lambda now: wheel_times.append(round(now, 9)))
        sim.call_every(0.1, lambda: task_times.append(round(sim.now, 9)))
        sim.run(until=2.05)
        assert wheel_times == task_times
        assert len(wheel_times) == 21  # immediate first fire + 20 rounds

    def test_every_k_fires_on_multiples(self):
        sim = Simulator()
        log = []
        scheduler = TickScheduler(sim, 0.1)
        scheduler.register(recorder(log, "slow"), every=3)
        sim.run(until=1.0)
        assert [t for _, t in log] == [0.0, 0.3, 0.6, 0.9]

    def test_register_every_s_must_divide(self):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1)
        handle = scheduler.register_every_s(0.3, lambda now: None)
        assert handle.every == 3
        with pytest.raises(ValueError, match="integer multiple"):
            scheduler.register_every_s(0.25, lambda now: None)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            TickScheduler(Simulator(), 0.0)

    def test_every_must_be_positive_int(self):
        scheduler = TickScheduler(Simulator(), 0.1)
        for bad in (0, -1, 1.5, "2"):
            with pytest.raises(ValueError, match="positive int"):
                scheduler.register(lambda now: None, every=bad)

    def test_pause_resume_matches_periodic_task(self):
        # Pause at 0.5, resume at 1.0: PeriodicTask next fires at 1.1.
        results = {}
        for kind in ("task", "wheel"):
            sim = Simulator()
            times = []
            if kind == "task":
                ctl = sim.call_every(0.1, lambda: times.append(round(sim.now, 9)))
            else:
                scheduler = TickScheduler(sim, 0.1)
                ctl = scheduler.register(
                    lambda now: times.append(round(now, 9))
                )
            sim.schedule_at(0.5, ctl.pause)
            sim.schedule_at(1.0, ctl.resume)
            sim.run(until=1.55)
            results[kind] = times
        assert results["wheel"] == results["task"]
        assert 1.1 in results["wheel"]
        assert not any(0.5 < t < 1.1 for t in results["wheel"])

    def test_stop_deregisters_permanently(self):
        sim = Simulator()
        log = []
        scheduler = TickScheduler(sim, 0.1)
        handle = scheduler.register(recorder(log, "x"))
        assert scheduler.registered == 1
        sim.schedule_at(0.35, handle.stop)
        sim.run(until=1.0)
        assert [t for _, t in log] == [0.0, 0.1, 0.2, 0.3]
        assert scheduler.registered == 0
        assert handle.stopped
        handle.resume()  # no-op on a stopped handle
        sim.run(until=1.5)
        assert len(log) == 4

    def test_scheduler_stop_halts_all(self):
        sim = Simulator()
        log = []
        scheduler = TickScheduler(sim, 0.1)
        scheduler.register(recorder(log, "a"))
        scheduler.register(recorder(log, "b"))
        sim.schedule_at(0.25, scheduler.stop)
        sim.run(until=1.0)
        assert max(t for _, t in log) <= 0.2


class TestDeterminism:
    def test_callbacks_run_in_registration_order(self):
        sim = Simulator()
        log = []
        scheduler = TickScheduler(sim, 0.1)
        for tag in (3, 1, 4, 0, 2):
            scheduler.register(recorder(log, tag))
        sim.run(until=0.05)
        assert [tag for tag, _ in log] == [3, 1, 4, 0, 2]

    def test_order_survives_pause_resume_cycles(self):
        # A handle that pauses and resumes must not jump the queue: the
        # round's dispatch order is still registration order.
        sim = Simulator()
        log = []
        scheduler = TickScheduler(sim, 0.1)
        first = scheduler.register(recorder(log, "first"))
        scheduler.register(recorder(log, "second"))
        sim.schedule_at(0.15, first.pause)
        sim.schedule_at(0.3, first.resume)  # re-armed for round 4 (0.4)
        sim.run(until=0.45)
        by_round = {}
        for tag, t in log:
            by_round.setdefault(t, []).append(tag)
        assert by_round[0.4] == ["first", "second"]

    def test_no_duplicate_fire_after_resume_into_armed_round(self):
        # Pausing leaves a stale bucket entry; resuming can arm the same
        # handle into a later round that already has one.  The stale
        # entry must be skipped and the handle fired exactly once per
        # round.
        sim = Simulator()
        log = []
        scheduler = TickScheduler(sim, 0.1)
        handle = scheduler.register(recorder(log, "h"))
        sim.schedule_at(0.11, handle.pause)
        sim.schedule_at(0.12, handle.resume)
        sim.run(until=0.65)
        times = [t for _, t in log]
        assert times == sorted(set(times)), f"duplicate fire: {times}"

    def test_one_live_heap_event_for_many_registrants(self):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1)
        for _ in range(50):
            scheduler.register(lambda now: None)
        assert sim.live_pending == 1
        sim.run(until=0.5)
        assert sim.live_pending == 1
        assert scheduler.rounds > 0
        assert scheduler.callbacks_run == 50 * scheduler.rounds


class _FarmGateway:
    """Just enough gateway for a report-only controller."""

    class _Config:
        def __init__(self, name):
            self.name = name

    def __init__(self, name):
        self.config = self._Config(name)
        self.tracker = SequenceTracker()
        self.loss_monitor = LossMonitor(self.tracker)
        self.inbound = MeasurementStore()
        self.selector = WeightedSplitSelector()
        self.data_selector = None

    @property
    def outbound(self):
        return self.inbound


class TestControllerIntegration:
    def build_farm(self, n, shared):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1) if shared else None
        farm = [
            TangoController(
                _FarmGateway(f"edge{i}"),
                sim,
                interval_s=0.1,
                scheduler=scheduler,
            )
            for i in range(n)
        ]
        for controller in farm:
            controller.start()
        return sim, scheduler, farm

    def test_scheduled_controllers_tick_like_dedicated(self):
        sim_d, _, farm_d = self.build_farm(5, shared=False)
        sim_s, scheduler, farm_s = self.build_farm(5, shared=True)
        sim_d.run(until=1.05)
        sim_s.run(until=1.05)
        assert [c.ticks for c in farm_s] == [c.ticks for c in farm_d]
        assert all(c.running for c in farm_s)
        assert scheduler.callbacks_run == sum(c.ticks for c in farm_s)

    def test_shared_farm_keeps_one_heap_event(self):
        sim_d, _, farm_d = self.build_farm(20, shared=False)
        sim_s, _, farm_s = self.build_farm(20, shared=True)
        assert sim_d.live_pending == 20
        assert sim_s.live_pending == 1

    def test_controller_stop_and_double_start_guard(self):
        sim, scheduler, farm = self.build_farm(2, shared=True)
        controller = farm[0]
        with pytest.raises(RuntimeError, match="already started"):
            controller.start()
        controller.stop()
        assert not controller.running
        sim.run(until=0.55)
        assert controller.ticks == 0
        assert farm[1].ticks == 6

    def test_controller_interval_must_fit_wheel(self):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1)
        controller = TangoController(
            _FarmGateway("edge"), sim, interval_s=0.25, scheduler=scheduler
        )
        with pytest.raises(ValueError, match="integer multiple"):
            controller.start()

    def test_rebalancer_attaches_to_wheel(self):
        sim = Simulator()
        scheduler = TickScheduler(sim, 0.1)
        selector = WeightedSplitSelector()

        class Tunnel:
            def __init__(self, path_id):
                self.path_id = path_id

        rebalancer = SplitRebalancer(
            selector, lambda tunnels, now: [1.0, 3.0], [Tunnel(0), Tunnel(1)]
        )
        handle = rebalancer.attach(scheduler, every=2)
        assert handle.every == 2
        sim.run(until=0.55)
        assert [t for t, _ in rebalancer.history] == [0.0, 0.2, 0.4]
        assert rebalancer.history[-1][1] == (0.25, 0.75)
