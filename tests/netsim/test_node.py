"""Tests for FIBs, routers, hosts, and programmable switches."""

import ipaddress

import pytest

from repro.netsim.events import Simulator
from repro.netsim.node import Fib, HostNode
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.netsim.topology import Network


def addr(s):
    return ipaddress.IPv6Address(s)


def make_packet(dst="2001:db8:20::5", sport=1000, dport=2000):
    return Packet(
        headers=[
            Ipv6Header(src=addr("2001:db8:10::5"), dst=addr(dst)),
            UdpHeader(sport=sport, dport=dport),
        ],
        payload_bytes=32,
    )


class TestFib:
    def test_longest_prefix_wins(self):
        net = Network()
        r = net.add_router("r")
        a = net.add_host("a")
        b = net.add_host("b")
        wide = net.add_link("wide", r, a, delay_s=0.001)
        narrow = net.add_link("narrow", r, b, delay_s=0.001)
        r.fib.add_route("2001:db8::/32", wide)
        r.fib.add_route("2001:db8:20::/48", narrow)
        entry = r.fib.lookup(addr("2001:db8:20::1"))
        assert entry.links == [narrow]
        entry = r.fib.lookup(addr("2001:db8:99::1"))
        assert entry.links == [wide]

    def test_no_match_returns_none(self):
        fib = Fib()
        assert fib.lookup(addr("2001:db8::1")) is None

    def test_replace_route(self):
        net = Network()
        r = net.add_router("r")
        a = net.add_host("a")
        l1 = net.add_link("l1", r, a, delay_s=0.001)
        l2 = net.add_link("l2", r, a, delay_s=0.001)
        r.fib.add_route("2001:db8::/32", l1)
        r.fib.add_route("2001:db8::/32", l2)
        assert len(r.fib) == 1
        assert r.fib.lookup(addr("2001:db8::1")).links == [l2]

    def test_remove_route(self):
        net = Network()
        r = net.add_router("r")
        a = net.add_host("a")
        link = net.add_link("l", r, a, delay_s=0.001)
        r.fib.add_route("2001:db8::/32", link)
        assert r.fib.remove_route("2001:db8::/32")
        assert not r.fib.remove_route("2001:db8::/32")
        assert r.fib.lookup(addr("2001:db8::1")) is None

    def test_version_mismatch_no_match(self):
        net = Network()
        r = net.add_router("r")
        a = net.add_host("a")
        link = net.add_link("l", r, a, delay_s=0.001)
        r.fib.add_route("10.0.0.0/8", link)
        assert r.fib.lookup(addr("2001:db8::1")) is None

    def test_empty_ecmp_group_rejected(self):
        fib = Fib()
        with pytest.raises(ValueError):
            fib.add_route("2001:db8::/32", [])


class TestRouterForwarding:
    def build(self):
        net = Network()
        r = net.add_router("r")
        dst = net.add_host("dst")
        link = net.add_link("out", r, dst, delay_s=0.001)
        r.fib.add_route("2001:db8:20::/48", link)
        return net, r, dst

    def test_forwards_matching_packet(self):
        net, r, dst = self.build()
        net.inject(r, make_packet())
        net.run()
        assert dst.stats.received == 1
        assert r.stats.forwarded == 1

    def test_drops_unroutable(self):
        net, r, dst = self.build()
        net.inject(r, make_packet(dst="2001:db8:99::1"))
        net.run()
        assert r.stats.dropped_no_route == 1
        assert dst.stats.received == 0

    def test_hop_limit_decremented(self):
        net, r, dst = self.build()
        net.inject(r, make_packet())
        net.run()
        assert dst.received_packets[0].outer_ip.hop_limit == 63

    def test_expired_hop_limit_dropped(self):
        net, r, dst = self.build()
        packet = make_packet()
        packet.headers[0] = Ipv6Header(
            src=packet.outer_ip.src, dst=packet.outer_ip.dst, hop_limit=1
        )
        net.inject(r, packet)
        net.run()
        assert r.stats.dropped_ttl == 1
        assert dst.stats.received == 0

    def test_local_delivery_not_forwarded(self):
        net, r, dst = self.build()
        r.add_local_network("2001:db8:20::/48")
        net.inject(r, make_packet())
        net.run()
        assert r.stats.delivered_local == 1
        assert dst.stats.received == 0


class TestEcmpGroups:
    def build(self, salt=0):
        net = Network()
        r = net.add_router("r", ecmp_salt=salt)
        dst = net.add_host("dst")
        links = [
            net.add_link(f"p{i}", r, dst, delay_s=0.001 * (i + 1))
            for i in range(3)
        ]
        r.fib.add_route("2001:db8:20::/48", links)
        return net, r, dst, links

    def test_flow_sticks_to_one_link(self):
        net, r, dst, links = self.build()
        for _ in range(20):
            net.inject(r, make_packet(sport=1111, dport=2222))
        net.run()
        used = [l for l in links if l.stats.transmitted > 0]
        assert len(used) == 1
        assert used[0].stats.transmitted == 20

    def test_different_flows_spread(self):
        net, r, dst, links = self.build()
        for sport in range(200):
            net.inject(r, make_packet(sport=10000 + sport))
        net.run()
        used = [l.stats.transmitted for l in links]
        assert all(count > 20 for count in used)

    def test_salt_changes_mapping(self):
        def chosen(salt):
            net, r, dst, links = self.build(salt)
            net.inject(r, make_packet(sport=4242))
            net.run()
            return [l.stats.transmitted for l in links].index(1)

        picks = {chosen(s) for s in range(10)}
        assert len(picks) > 1


class TestProgrammableSwitch:
    def test_ingress_program_sees_packet_before_routing(self):
        net = Network()
        sw = net.add_switch("sw")
        dst = net.add_host("dst")
        link = net.add_link("out", sw, dst, delay_s=0.001)
        sw.fib.add_route("2001:db8:20::/48", link)
        seen = []
        sw.attach_ingress(lambda s, p: (seen.append(p.packet_id), p)[1])
        net.inject(sw, make_packet())
        net.run()
        assert len(seen) == 1
        assert dst.stats.received == 1

    def test_program_can_consume_packet(self):
        net = Network()
        sw = net.add_switch("sw")
        sw.attach_ingress(lambda s, p: None)
        net.inject(sw, make_packet())
        net.run()
        assert sw.stats.consumed_by_program == 1

    def test_egress_program_runs_on_forwarding(self):
        net = Network()
        sw = net.add_switch("sw")
        dst = net.add_host("dst")
        link = net.add_link("out", sw, dst, delay_s=0.001)
        sw.fib.add_route("2001:db8:20::/48", link)
        tags = []
        sw.attach_egress(lambda s, p: (tags.append("egress"), p)[1])
        net.inject(sw, make_packet())
        net.run()
        assert tags == ["egress"]

    def test_programs_chain_in_order(self):
        net = Network()
        sw = net.add_switch("sw")
        order = []
        sw.attach_ingress(lambda s, p: (order.append(1), p)[1])
        sw.attach_ingress(lambda s, p: (order.append(2), None)[1])
        net.inject(sw, make_packet())
        net.run()
        assert order == [1, 2]

    def test_program_reads_switch_wall_clock(self):
        net = Network()
        sw = net.add_switch("sw", clock_offset=0.5)
        stamps = []
        sw.attach_ingress(lambda s, p: (stamps.append(s.clock.now()), None)[1])
        net.sim.clock.advance_to(1.0)
        net.inject(sw, make_packet())
        net.run()
        assert stamps == [pytest.approx(1.5)]


class TestHostNode:
    def test_callback_invoked_with_time(self):
        sim = Simulator()
        seen = []
        host = HostNode("h", sim, on_packet=lambda p, t: seen.append(t))
        sim.clock.advance_to(2.0)
        host.receive(make_packet())
        assert seen == [2.0]

    def test_keep_packets_can_be_disabled(self):
        sim = Simulator()
        host = HostNode("h", sim)
        host.keep_packets = False
        host.receive(make_packet())
        assert host.received_packets == []
        assert host.stats.received == 1
