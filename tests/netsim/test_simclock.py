"""Tests for simulation and node wall clocks."""

import pytest

from repro.netsim.simclock import NodeClock, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now == 12.5

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance_to(3.25)
        assert clock.now == 3.25

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_advance_backwards_raises(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(4.999)


class TestNodeClock:
    def test_zero_offset_matches_sim_time(self):
        sim = SimClock(10.0)
        assert NodeClock(sim).now() == 10.0

    def test_constant_offset_applied(self):
        sim = SimClock(10.0)
        clock = NodeClock(sim, offset=0.5)
        assert clock.now() == pytest.approx(10.5)

    def test_offset_is_constant_over_time(self):
        """The paper's key assumption: the distortion never changes."""
        sim = SimClock()
        clock = NodeClock(sim, offset=0.125)
        first = clock.now() - sim.now
        sim.advance_to(86400.0)
        second = clock.now() - sim.now
        assert first == pytest.approx(second)

    def test_drift_accumulates(self):
        sim = SimClock()
        clock = NodeClock(sim, offset=0.0, drift_ppm=50.0)
        sim.advance_to(1_000_000.0)  # 50 ppm over 1e6 s = 50 s drift
        assert clock.now() == pytest.approx(1_000_050.0)

    def test_at_evaluates_arbitrary_times(self):
        sim = SimClock()
        clock = NodeClock(sim, offset=1.0)
        assert clock.at(5.0) == pytest.approx(6.0)

    def test_now_ns_quantizes_to_nanoseconds(self):
        sim = SimClock(1.0000000009)
        clock = NodeClock(sim)
        assert clock.now_ns() == 1_000_000_001

    def test_two_clocks_relative_offset(self):
        """Measured OWD distortion equals offset difference, always."""
        sim = SimClock()
        sender = NodeClock(sim, offset=0.0032)
        receiver = NodeClock(sim, offset=-0.0013)
        for t in (0.0, 3.7, 9999.0):
            sim.advance_to(t)
            assert receiver.now() - sender.now() == pytest.approx(-0.0045)
