"""Tests for the Reno-style TCP transport."""

import ipaddress

import pytest

from repro.netsim.delaymodels import ConstantDelay
from repro.netsim.links import ConstantLoss
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.netsim.topology import Network
from repro.netsim.transport import TcpSender, connect_tcp

MSS = 1400


def build_pipe(delay_s=0.020, loss=0.0, bandwidth_bps=None):
    """host-a <-> host-b over a single bidirectional path."""
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    fwd = net.add_link(
        "fwd",
        a,
        b,
        delay=ConstantDelay(delay_s),
        loss=ConstantLoss(loss),
        bandwidth_bps=bandwidth_bps,
    )
    rev = net.add_link("rev", b, a, delay=ConstantDelay(delay_s))
    return net, a, b, fwd, rev


def make_builder(src, dst):
    def build():
        return Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address(src),
                    dst=ipaddress.IPv6Address(dst),
                ),
                UdpHeader(sport=5000, dport=5001),
            ]
        )

    return build


def run_transfer(
    transfer_bytes, delay_s=0.020, loss=0.0, bandwidth_bps=None, until=120.0
):
    net, a, b, fwd, rev = build_pipe(delay_s, loss, bandwidth_bps)
    sender, receiver, data_cb, ack_cb = connect_tcp(
        net.sim,
        send_data=lambda p: fwd.transmit(net.sim, p),
        send_ack=lambda p: rev.transmit(net.sim, p),
        build_data_packet=make_builder("2001:db8:1::1", "2001:db8:2::1"),
        build_ack_packet=make_builder("2001:db8:2::1", "2001:db8:1::1"),
        transfer_bytes=transfer_bytes,
    )
    b._on_packet = data_cb
    a._on_packet = ack_cb
    sender.start()
    net.run(until=until)
    return sender, receiver


class TestCleanTransfer:
    def test_transfer_completes(self):
        sender, receiver = run_transfer(200 * MSS)
        assert sender.done
        assert sender.stats.completed_at is not None
        assert receiver.expected == 200 * MSS
        assert sender.stats.retransmissions == 0

    def test_slow_start_doubles_cwnd(self):
        net, a, b, fwd, rev = build_pipe()
        sender, receiver, data_cb, ack_cb = connect_tcp(
            net.sim,
            send_data=lambda p: fwd.transmit(net.sim, p),
            send_ack=lambda p: rev.transmit(net.sim, p),
            build_data_packet=make_builder("2001:db8:1::1", "2001:db8:2::1"),
            build_ack_packet=make_builder("2001:db8:2::1", "2001:db8:1::1"),
            transfer_bytes=5000 * MSS,
        )
        b._on_packet = data_cb
        a._on_packet = ack_cb
        sender.start()
        initial = sender.cwnd
        net.run(until=0.045)  # one RTT: the whole IW is acked
        assert sender.cwnd == pytest.approx(2 * initial, rel=0.05)

    def test_goodput_tracks_rtt(self):
        """Same transfer, doubled RTT -> roughly halved goodput while
        window-limited."""
        fast, _ = run_transfer(500 * MSS, delay_s=0.010)
        slow, _ = run_transfer(500 * MSS, delay_s=0.020)
        assert fast.stats.completed_at < slow.stats.completed_at

    def test_last_segment_may_be_short(self):
        sender, receiver = run_transfer(MSS + 17)
        assert sender.done
        assert receiver.expected == MSS + 17


class TestLossRecovery:
    def test_lossy_path_still_completes(self):
        sender, receiver = run_transfer(300 * MSS, loss=0.02, until=300.0)
        assert sender.done
        assert sender.stats.retransmissions > 0
        assert receiver.expected == 300 * MSS

    def test_loss_reduces_goodput(self):
        clean, _ = run_transfer(300 * MSS, loss=0.0, until=300.0)
        lossy, _ = run_transfer(300 * MSS, loss=0.02, until=300.0)
        assert clean.stats.completed_at < lossy.stats.completed_at

    def test_fast_retransmit_engages_before_timeout(self):
        sender, _ = run_transfer(300 * MSS, loss=0.01, until=300.0)
        assert sender.stats.fast_retransmits > 0

    def test_total_loss_triggers_timeouts_not_livelock(self):
        net, a, b, fwd, rev = build_pipe(loss=1.0)
        sender, receiver, data_cb, ack_cb = connect_tcp(
            net.sim,
            send_data=lambda p: fwd.transmit(net.sim, p),
            send_ack=lambda p: rev.transmit(net.sim, p),
            build_data_packet=make_builder("2001:db8:1::1", "2001:db8:2::1"),
            build_ack_packet=make_builder("2001:db8:2::1", "2001:db8:1::1"),
            transfer_bytes=10 * MSS,
        )
        b._on_packet = data_cb
        a._on_packet = ack_cb
        sender.start()
        net.run(until=30.0)
        assert not sender.done
        assert sender.stats.timeouts >= 3
        assert sender.cwnd == pytest.approx(MSS)


class TestValidation:
    def test_bad_parameters(self):
        net = Network()
        with pytest.raises(ValueError):
            TcpSender(net.sim, lambda p: None, lambda: None, transfer_bytes=0)
        with pytest.raises(ValueError):
            TcpSender(
                net.sim, lambda p: None, lambda: None, transfer_bytes=10, mss=0
            )

    def test_receiver_ignores_foreign_connections(self):
        sender, receiver = run_transfer(10 * MSS)
        before = receiver.received_segments
        foreign = make_builder("2001:db8:9::1", "2001:db8:2::1")()
        foreign.meta["tcp_conn"] = 999
        foreign.meta["tcp_seq"] = 0
        foreign.meta["tcp_is_ack"] = False
        receiver.on_segment(foreign, 0.0)
        assert receiver.received_segments == before
