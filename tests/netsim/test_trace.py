"""Tests for workload generators."""

import pytest

from repro.netsim.events import Simulator
from repro.netsim.trace import (
    DroneTelemetryWorkload,
    PacketFactory,
    PoissonTraffic,
    ProbeGenerator,
)

FACTORY = PacketFactory(src="2001:db8:10::2", dst="2001:db8:20::2")


class TestPacketFactory:
    def test_builds_ipv6_udp_packet(self):
        packet = FACTORY.build()
        assert str(packet.src) == "2001:db8:10::2"
        assert str(packet.dst) == "2001:db8:20::2"
        assert packet.five_tuple().dport == 50000

    def test_each_build_is_fresh(self):
        a, b = FACTORY.build(), FACTORY.build()
        assert a.packet_id != b.packet_id


class TestProbeGenerator:
    def test_emits_at_interval(self):
        sim = Simulator()
        sent = []
        gen = ProbeGenerator(sim, FACTORY, sent.append, interval=0.010)
        gen.start()
        sim.run(until=0.1)
        assert len(sent) == 11  # t=0.00 .. 0.10 inclusive
        assert gen.sent == 11

    def test_start_at_future_time(self):
        sim = Simulator()
        sent = []
        gen = ProbeGenerator(sim, FACTORY, sent.append, interval=0.010)
        gen.start(at=0.05)
        sim.run(until=0.1)
        assert len(sent) == 6

    def test_until_bound(self):
        sim = Simulator()
        sent = []
        gen = ProbeGenerator(sim, FACTORY, sent.append, interval=0.010)
        gen.start(until=0.05)
        sim.run(until=1.0)
        assert len(sent) == 6

    def test_stop(self):
        sim = Simulator()
        sent = []
        gen = ProbeGenerator(sim, FACTORY, sent.append, interval=0.010)
        gen.start()
        sim.run(until=0.05)
        gen.stop()
        sim.run(until=1.0)
        assert len(sent) == 6

    def test_double_start_rejected(self):
        sim = Simulator()
        gen = ProbeGenerator(sim, FACTORY, lambda p: None)
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_probes_carry_created_at(self):
        sim = Simulator()
        sent = []
        ProbeGenerator(sim, FACTORY, sent.append, interval=0.010).start()
        sim.run(until=0.02)
        assert [p.created_at for p in sent] == pytest.approx([0.0, 0.01, 0.02])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ProbeGenerator(Simulator(), FACTORY, lambda p: None, interval=0.0)


class TestPoissonTraffic:
    def test_rate_approximately_honored(self):
        sim = Simulator()
        sent = []
        traffic = PoissonTraffic(sim, FACTORY, sent.append, rate_pps=100.0, seed=1)
        traffic.start(until=50.0)
        sim.run()
        assert len(sent) == pytest.approx(5000, rel=0.1)

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            sent = []
            PoissonTraffic(sim, FACTORY, sent.append, 50.0, seed=seed).start(
                until=10.0
            )
            sim.run()
            return [p.created_at for p in sent]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_stop_halts_stream(self):
        sim = Simulator()
        sent = []
        traffic = PoissonTraffic(sim, FACTORY, sent.append, 100.0, seed=2)
        traffic.start()
        sim.run(until=1.0)
        count = len(sent)
        traffic.stop()
        sim.run(until=2.0)
        assert len(sent) == count


class TestDroneWorkload:
    def test_rate_and_deadline_annotations(self):
        sim = Simulator()
        sent = []
        workload = DroneTelemetryWorkload(
            sim, FACTORY, sent.append, rate_hz=100.0, deadline_s=0.05
        )
        workload.start(until=1.0)
        sim.run()
        assert len(sent) == 101
        assert all(p.meta["deadline_s"] == 0.05 for p in sent)

    def test_bursts_inflate_payload(self):
        sim = Simulator()
        sent = []
        workload = DroneTelemetryWorkload(
            sim,
            FACTORY,
            sent.append,
            rate_hz=100.0,
            burst_every=10,
            burst_multiplier=5,
        )
        workload.start(until=0.2)
        sim.run()
        sizes = {p.payload_bytes for p in sent}
        assert sizes == {64, 320}
        bursts = [p for p in sent if p.payload_bytes == 320]
        assert len(bursts) == 2  # packets 10 and 20 of 21
