"""Tests for the Network builder/container."""

import ipaddress

import pytest

from repro.netsim.delaymodels import ConstantDelay
from repro.netsim.packet import Ipv6Header, Packet
from repro.netsim.topology import Network


def make_packet(dst="2001:db8:20::1"):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::1"),
                dst=ipaddress.IPv6Address(dst),
            )
        ]
    )


class TestBuilders:
    def test_duplicate_node_name_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_router("x")

    def test_duplicate_link_name_rejected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("l", "a", "b", delay_s=0.001)
        with pytest.raises(ValueError, match="duplicate"):
            net.add_link("l", "b", "a", delay_s=0.001)

    def test_link_requires_exactly_one_delay_spec(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(ValueError, match="exactly one"):
            net.add_link("l", "a", "b")
        with pytest.raises(ValueError, match="exactly one"):
            net.add_link(
                "l", "a", "b", delay=ConstantDelay(0.001), delay_s=0.001
            )

    def test_node_lookup_error_lists_known(self):
        net = Network()
        net.add_host("known")
        with pytest.raises(KeyError, match="known"):
            net.node("missing")

    def test_duplex_link_creates_both_directions(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        fwd, rev = net.add_duplex_link("ab", "a", "b", delay_s=0.002)
        assert fwd.src.name == "a" and fwd.dst.name == "b"
        assert rev.src.name == "b" and rev.dst.name == "a"

    def test_links_get_distinct_seeds(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        l1 = net.add_link("l1", "a", "b", delay_s=0.001)
        l2 = net.add_link("l2", "a", "b", delay_s=0.001)
        assert l1.seed != l2.seed


class TestOperation:
    def test_inject_delivers_to_node(self):
        net = Network()
        host = net.add_host("h")
        net.inject("h", make_packet())
        assert host.stats.received == 1

    def test_inject_stamps_created_at(self):
        net = Network()
        host = net.add_host("h")
        net.sim.clock.advance_to(3.0)
        packet = make_packet()
        net.inject(host, packet)
        assert packet.created_at == 3.0

    def test_three_hop_chain_end_to_end(self):
        net = Network()
        net.add_host("src")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        sink = net.add_host("sink")
        l1 = net.add_link("a", r1, r2, delay_s=0.010)
        l2 = net.add_link("b", r2, sink, delay_s=0.020)
        r1.fib.add_route("2001:db8:20::/48", l1)
        r2.fib.add_route("2001:db8:20::/48", l2)
        arrivals = []
        sink._on_packet = lambda p, t: arrivals.append(t)
        net.inject(r1, make_packet())
        net.run()
        assert arrivals == [pytest.approx(0.030)]
