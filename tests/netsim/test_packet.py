"""Tests for packets and header stacks."""

import ipaddress

import pytest

from repro.netsim.packet import (
    TANGO_UDP_PORT,
    FiveTuple,
    Ipv4Header,
    Ipv6Header,
    Packet,
    TangoHeader,
    UdpHeader,
)


def make_packet(payload=100):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::2"),
                dst=ipaddress.IPv6Address("2001:db8:20::2"),
            ),
            UdpHeader(sport=1234, dport=5678),
        ],
        payload_bytes=payload,
    )


class TestHeaderStack:
    def test_push_makes_header_outermost(self):
        packet = make_packet()
        outer = Ipv6Header(
            src=ipaddress.IPv6Address("2001:db8:a0::1"),
            dst=ipaddress.IPv6Address("2001:db8:b0::1"),
        )
        packet.push(outer)
        assert packet.peek() is outer

    def test_pop_returns_outermost(self):
        packet = make_packet()
        first = packet.headers[0]
        assert packet.pop() is first

    def test_pop_empty_raises(self):
        packet = Packet(headers=[])
        with pytest.raises(IndexError):
            packet.pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            Packet(headers=[]).peek()

    def test_outer_ip_skips_non_ip(self):
        packet = make_packet()
        assert packet.outer_ip.version == 6

    def test_outer_ip_missing_raises(self):
        packet = Packet(headers=[UdpHeader(1, 2)])
        with pytest.raises(ValueError, match="no IP header"):
            _ = packet.outer_ip

    def test_find_returns_first_of_type(self):
        packet = make_packet()
        assert isinstance(packet.find(UdpHeader), UdpHeader)
        assert packet.find(TangoHeader) is None

    def test_tango_property(self):
        packet = make_packet()
        assert packet.tango is None
        header = TangoHeader(timestamp_ns=1, seq=2, path_id=3)
        packet.push(header)
        assert packet.tango is header


class TestWireSize:
    def test_wire_bytes_sums_headers_and_payload(self):
        packet = make_packet(payload=100)
        assert packet.wire_bytes == 40 + 8 + 100

    def test_tango_header_size_without_auth(self):
        header = TangoHeader(timestamp_ns=0, seq=0, path_id=0)
        assert header.wire_bytes == 16

    def test_tango_header_size_with_auth(self):
        header = TangoHeader(timestamp_ns=0, seq=0, path_id=0, auth_tag=b"x" * 8)
        assert header.wire_bytes == 24

    def test_encapsulation_grows_wire_size(self):
        packet = make_packet(payload=100)
        before = packet.wire_bytes
        packet.push(TangoHeader(timestamp_ns=0, seq=0, path_id=0))
        packet.push(UdpHeader(sport=1, dport=TANGO_UDP_PORT))
        packet.push(
            Ipv6Header(
                src=ipaddress.IPv6Address("::1"),
                dst=ipaddress.IPv6Address("::2"),
            )
        )
        assert packet.wire_bytes == before + 16 + 8 + 40

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(headers=[], payload_bytes=-1)


class TestFiveTuple:
    def test_five_tuple_reads_outer_headers(self):
        packet = make_packet()
        five = packet.five_tuple()
        assert five == FiveTuple(
            "2001:db8:10::2", "2001:db8:20::2", 17, 1234, 5678
        )

    def test_encapsulated_packet_exposes_only_outer_tuple(self):
        """Tango's ECMP-pinning mechanism: the core sees one flow."""
        packet = make_packet()
        packet.push(TangoHeader(timestamp_ns=0, seq=0, path_id=0))
        packet.push(UdpHeader(sport=40001, dport=TANGO_UDP_PORT))
        packet.push(
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:a0::1"),
                dst=ipaddress.IPv6Address("2001:db8:b0::1"),
            )
        )
        five = packet.five_tuple()
        assert five.src == "2001:db8:a0::1"
        assert five.sport == 40001
        assert five.dport == TANGO_UDP_PORT

    def test_ip_without_udp_has_zero_ports(self):
        packet = Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("::1"),
                    dst=ipaddress.IPv6Address("::2"),
                )
            ]
        )
        five = packet.five_tuple()
        assert (five.sport, five.dport) == (0, 0)


class TestTtl:
    def test_decrement_hop_limit(self):
        packet = make_packet()
        packet.decrement_ttl()
        assert packet.outer_ip.hop_limit == 63

    def test_hop_limit_expiry_raises(self):
        packet = Packet(
            headers=[
                Ipv6Header(
                    src=ipaddress.IPv6Address("::1"),
                    dst=ipaddress.IPv6Address("::2"),
                    hop_limit=1,
                )
            ]
        )
        with pytest.raises(ValueError, match="hop limit"):
            packet.decrement_ttl()

    def test_ipv4_ttl_decrement(self):
        packet = Packet(
            headers=[
                Ipv4Header(
                    src=ipaddress.IPv4Address("10.0.0.1"),
                    dst=ipaddress.IPv4Address("10.0.0.2"),
                    ttl=2,
                )
            ]
        )
        packet.decrement_ttl()
        assert packet.outer_ip.ttl == 1
        with pytest.raises(ValueError, match="TTL"):
            packet.decrement_ttl()


class TestCopy:
    def test_copy_has_new_identity(self):
        packet = make_packet()
        clone = packet.copy()
        assert clone.packet_id != packet.packet_id

    def test_copy_isolates_header_list(self):
        packet = make_packet()
        clone = packet.copy()
        clone.push(TangoHeader(timestamp_ns=0, seq=0, path_id=0))
        assert packet.tango is None

    def test_copy_isolates_meta(self):
        packet = make_packet()
        packet.meta["k"] = 1
        clone = packet.copy()
        clone.meta["k"] = 2
        assert packet.meta["k"] == 1


class TestValidation:
    def test_udp_port_range_enforced(self):
        with pytest.raises(ValueError):
            UdpHeader(sport=-1, dport=0)
        with pytest.raises(ValueError):
            UdpHeader(sport=0, dport=70000)

    def test_packet_ids_are_unique(self):
        ids = {make_packet().packet_id for _ in range(100)}
        assert len(ids) == 100
