"""Tests for the discrete-event loop."""

import pytest

from repro.netsim.events import Simulator


class TestScheduling:
    def test_schedule_at_runs_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_schedule_in_relative(self):
        sim = Simulator(start=1.0)
        seen = []
        sim.schedule_in(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_in_past_raises(self):
        sim = Simulator(start=5.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-negative"):
            sim.schedule_in(-0.1, lambda: None)

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append(3))
        sim.schedule_at(1.0, lambda: order.append(1))
        sim.schedule_at(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_in(1.0, lambda: seen.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule_at(1.0, lambda: seen.append("x"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append("a"))
        victim = sim.schedule_at(1.0, lambda: seen.append("b"))
        sim.schedule_at(1.0, lambda: seen.append("c"))
        victim.cancel()
        sim.run()
        assert seen == ["a", "c"]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_resumes(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: seen.append("late"))
        sim.run(until=5.0)
        assert seen == []
        sim.run()
        assert seen == ["late"]

    def test_max_events_bounds_execution(self):
        sim = Simulator()
        count = [0]

        def reschedule():
            count[0] += 1
            sim.schedule_in(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        sim.run(max_events=10)
        assert count[0] == 10

    def test_step_runs_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(2.0, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        ticks = []
        sim.call_every(0.5, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        assert ticks == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_end_bound_respected(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), end=2.5)
        sim.run(until=10.0)
        assert ticks == pytest.approx([0.0, 1.0, 2.0])

    def test_start_offset(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), start=5.0)
        sim.run(until=7.0)
        assert ticks == pytest.approx([5.0, 6.0, 7.0])

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        ticks = []
        task = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        task.stop()
        sim.run(until=10.0)
        assert len(ticks) == 3

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Simulator().call_every(0.0, lambda: None)


class TestPeriodicPauseResume:
    def test_pause_stops_firing(self):
        sim = Simulator()
        ticks = []
        task = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        task.pause()
        assert task.paused
        sim.run(until=6.0)
        assert len(ticks) == 3  # 0, 1, 2

    def test_resume_rearms_without_replaying_missed_ticks(self):
        sim = Simulator()
        ticks = []
        task = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        task.pause()
        sim.run(until=5.0)
        task.resume()
        assert not task.paused
        sim.run(until=7.0)
        # Next firing is now + interval; occurrences 3..5 are simply lost.
        assert ticks == pytest.approx([0.0, 1.0, 2.0, 6.0, 7.0])

    def test_pause_is_idempotent(self):
        sim = Simulator()
        task = sim.call_every(1.0, lambda: None)
        task.pause()
        task.pause()
        task.resume()
        task.resume()
        assert not task.paused

    def test_pause_after_stop_is_noop(self):
        sim = Simulator()
        task = sim.call_every(1.0, lambda: None)
        task.stop()
        task.pause()
        task.resume()
        assert not task.paused


class TestHeapCompaction:
    def test_pending_stays_bounded_under_pause_resume_churn(self):
        """A repeatedly paused-and-resumed task must not leak one
        tombstone per cycle: compaction keeps pending within a constant
        factor of the live event count."""
        sim = Simulator()
        task = sim.call_every(1000.0, lambda: None, start=1000.0)
        for _ in range(500):
            task.pause()
            task.resume()
        assert sim.live_pending == 1
        # Live events never exceed a handful here, so the 2x tombstone
        # bound caps the queue at a small constant, not ~500.
        assert sim.pending <= max(2 * sim.live_pending, Simulator._COMPACT_MIN_SIZE)
        assert sim.compactions > 0
        assert sim.tombstones_reaped >= 490

    def test_compaction_preserves_pop_order(self):
        sim = Simulator()
        fired = []
        keep = [
            sim.schedule_at(t, lambda t=t: fired.append(t))
            for t in (5.0, 1.0, 9.0, 3.0, 7.0)
        ]
        doomed = [sim.schedule_at(t + 0.5, lambda: fired.append(-1.0)) for t in range(20)]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        sim.run()
        assert fired == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert keep[0].time == 5.0  # handles stay valid after compaction

    def test_small_queues_are_never_compacted(self):
        sim = Simulator()
        events = [sim.schedule_at(float(t), lambda: None) for t in range(1, 5)]
        for event in events:
            event.cancel()
        assert sim.compactions == 0
        assert sim.pending == 4  # below _COMPACT_MIN_SIZE: lazy skip is fine
        sim.run()
        assert sim.pending == 0

    def test_cancel_is_idempotent_in_counters(self):
        sim = Simulator()
        events = [sim.schedule_at(float(t), lambda: None) for t in range(1, 21)]
        events[0].cancel()
        events[0].cancel()
        events[0].cancel()
        # One logical cancellation: no phantom tombstones counted.
        assert sim.pending - sim.live_pending == 1

    def test_self_cancel_from_callback_does_not_corrupt_count(self):
        """A task pausing itself mid-fire cancels an event that was
        already popped; the tombstone count must ignore it."""
        sim = Simulator()
        task_box = []

        def fire():
            task_box[0].pause()

        task_box.append(sim.call_every(1.0, fire))
        sim.run(until=3.0)
        assert sim.live_pending == 0
        assert sim.pending - sim.live_pending >= 0
        # Queue drains clean afterwards.
        sim.run()
        assert sim.pending == 0
