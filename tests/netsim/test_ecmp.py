"""Tests for ECMP hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.ecmp import ecmp_hash, select_index
from repro.netsim.packet import FiveTuple


def five(sport=1000, dport=2000, src="2001:db8::1", dst="2001:db8::2"):
    return FiveTuple(src, dst, 17, sport, dport)


class TestHash:
    def test_deterministic(self):
        assert ecmp_hash(five()) == ecmp_hash(five())

    def test_sensitive_to_every_field(self):
        base = ecmp_hash(five())
        assert ecmp_hash(five(sport=1001)) != base
        assert ecmp_hash(five(dport=2001)) != base
        assert ecmp_hash(five(src="2001:db8::3")) != base
        assert ecmp_hash(five(dst="2001:db8::4")) != base

    def test_salt_perturbs(self):
        assert ecmp_hash(five(), salt=1) != ecmp_hash(five(), salt=2)

    def test_result_is_32_bit(self):
        assert 0 <= ecmp_hash(five()) <= 0xFFFFFFFF


class TestSelectIndex:
    @given(
        sport=st.integers(min_value=0, max_value=65535),
        fanout=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100)
    def test_index_in_range(self, sport, fanout):
        index = select_index(five(sport=sport), fanout)
        assert 0 <= index < fanout

    def test_zero_fanout_rejected(self):
        with pytest.raises(ValueError):
            select_index(five(), 0)

    def test_distribution_roughly_uniform(self):
        counts = [0] * 4
        for sport in range(4000):
            counts[select_index(five(sport=sport), 4)] += 1
        for count in counts:
            assert count == pytest.approx(1000, rel=0.15)

    def test_single_flow_always_same_index(self):
        picks = {select_index(five(sport=777), 8) for _ in range(50)}
        assert len(picks) == 1
