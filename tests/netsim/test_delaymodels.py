"""Tests for delay processes, including property-based determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.delaymodels import (
    AsymmetryEvent,
    CompositeDelay,
    ConstantDelay,
    DiurnalVariation,
    GaussianJitterDelay,
    InstabilityEvent,
    RouteChangeEvent,
    SpikeProcess,
    deterministic_normal,
    deterministic_uniform,
)


class TestDeterministicNoise:
    @given(
        seed=st.integers(min_value=0, max_value=2**62),
        t=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_noise_is_pure_function_of_seed_and_time(self, seed, t):
        times = np.asarray([t])
        a = deterministic_uniform(seed, times)
        b = deterministic_uniform(seed, times)
        assert a[0] == b[0]
        assert 0.0 < a[0] < 1.0

    def test_different_seeds_differ(self):
        times = np.arange(0, 10, 0.01)
        a = deterministic_uniform(1, times)
        b = deterministic_uniform(2, times)
        assert not np.allclose(a, b)

    def test_vectorized_matches_scalar(self):
        times = np.arange(0, 1, 0.01)
        vec = deterministic_uniform(5, times)
        scalars = [float(deterministic_uniform(5, np.asarray([t]))[0]) for t in times]
        np.testing.assert_allclose(vec, scalars)

    def test_uniform_distribution_roughly_flat(self):
        u = deterministic_uniform(9, np.arange(0, 100, 0.001))
        assert abs(float(np.mean(u)) - 0.5) < 0.01
        assert abs(float(np.std(u)) - (1 / 12) ** 0.5) < 0.01

    def test_normal_moments(self):
        z = deterministic_normal(11, np.arange(0, 100, 0.001))
        assert abs(float(np.mean(z))) < 0.02
        assert abs(float(np.std(z)) - 1.0) < 0.02


class TestConstantDelay:
    def test_constant_everywhere(self):
        model = ConstantDelay(0.030)
        assert model.delay_at(0.0) == 0.030
        assert model.delay_at(1e6) == 0.030
        assert model.floor == 0.030

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)


class TestGaussianJitterDelay:
    def test_mean_converges_to_base(self):
        model = GaussianJitterDelay(0.028, 0.0003, seed=3)
        delays = model.delays(np.arange(0, 60, 0.01))
        assert float(np.mean(delays)) == pytest.approx(0.028, abs=1e-4)

    def test_std_converges_to_sigma(self):
        model = GaussianJitterDelay(0.028, 0.0003, seed=3)
        delays = model.delays(np.arange(0, 60, 0.01))
        assert float(np.std(delays)) == pytest.approx(0.0003, rel=0.1)

    def test_never_below_floor(self):
        model = GaussianJitterDelay(0.010, 0.005, seed=4)  # huge jitter
        delays = model.delays(np.arange(0, 100, 0.01))
        assert np.all(delays >= model.floor)

    def test_zero_sigma_is_constant(self):
        model = GaussianJitterDelay(0.020, 0.0, seed=5)
        delays = model.delays(np.arange(0, 1, 0.01))
        assert np.all(delays == 0.020)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25)
    def test_deterministic_across_calls(self, seed):
        model = GaussianJitterDelay(0.030, 0.001, seed=seed)
        times = np.arange(0, 1, 0.05)
        np.testing.assert_array_equal(model.delays(times), model.delays(times))


class TestDiurnalVariation:
    def test_nonnegative_and_bounded(self):
        model = DiurnalVariation(amplitude=0.002)
        delays = model.delays(np.arange(0, 86400, 60.0))
        assert np.all(delays >= 0.0)
        assert np.all(delays <= 0.002 + 1e-12)

    def test_period_repeats(self):
        model = DiurnalVariation(amplitude=0.002, period=3600.0)
        assert model.delay_at(100.0) == pytest.approx(model.delay_at(3700.0))

    def test_mean_is_half_amplitude(self):
        model = DiurnalVariation(amplitude=0.004, period=100.0)
        delays = model.delays(np.arange(0, 100, 0.01))
        assert float(np.mean(delays)) == pytest.approx(0.002, abs=1e-5)


class TestSpikeProcess:
    def test_spike_rate_approximately_honored(self):
        model = SpikeProcess(
            rate_per_second=50.0, min_magnitude=0.01, max_magnitude=0.05, seed=6
        )
        times = np.arange(0, 100, 0.0001)
        delays = model.delays(times)
        spike_fraction = float(np.mean(delays > 0))
        assert spike_fraction == pytest.approx(50.0 * 1e-4, rel=0.2)

    def test_magnitudes_in_range(self):
        model = SpikeProcess(
            rate_per_second=1000.0, min_magnitude=0.01, max_magnitude=0.05, seed=7
        )
        delays = model.delays(np.arange(0, 10, 0.0001))
        spikes = delays[delays > 0]
        assert spikes.size > 0
        assert np.all(spikes >= 0.01)
        assert np.all(spikes <= 0.05)

    def test_invalid_magnitudes_rejected(self):
        with pytest.raises(ValueError):
            SpikeProcess(1.0, min_magnitude=0.05, max_magnitude=0.01)


class TestRouteChangeEvent:
    def make(self):
        return RouteChangeEvent(
            start=100.0, duration=600.0, shift=0.005, transition=30.0
        )

    def test_zero_outside_window(self):
        event = self.make()
        times = np.asarray([0.0, 99.9, 700.1, 1e6])
        np.testing.assert_array_equal(event.extra_delays(times), 0.0)

    def test_plateau_is_exact_shift(self):
        event = self.make()
        times = np.arange(140.0, 690.0, 1.0)
        np.testing.assert_allclose(event.extra_delays(times), 0.005)

    def test_transition_is_erratic_but_bounded(self):
        event = self.make()
        times = np.arange(100.0, 130.0, 0.01)
        extra = event.extra_delays(times)
        assert np.all(extra >= 0.0)
        assert np.all(extra <= event.churn_max)
        assert float(np.std(extra)) > 0.0

    def test_transition_longer_than_duration_rejected(self):
        with pytest.raises(ValueError):
            RouteChangeEvent(start=0.0, duration=10.0, transition=20.0)

    def test_active_during_overlap_detection(self):
        event = self.make()
        assert event.active_during(0.0, 200.0)
        assert event.active_during(650.0, 800.0)
        assert not event.active_during(0.0, 100.0)
        assert not event.active_during(700.0, 800.0)


class TestInstabilityEvent:
    def make(self):
        return InstabilityEvent(
            start=1000.0,
            duration=300.0,
            spike_probability=0.05,
            spike_min=0.010,
            spike_max=0.050,
            minor_max=0.002,
            seed=8,
        )

    def test_zero_outside_window(self):
        event = self.make()
        np.testing.assert_array_equal(
            event.extra_delays(np.asarray([999.0, 1300.1])), 0.0
        )

    def test_spikes_reach_near_max(self):
        event = self.make()
        extra = event.extra_delays(np.arange(1000.0, 1300.0, 0.001))
        assert float(np.max(extra)) > 0.045

    def test_spike_fraction_near_probability(self):
        event = self.make()
        extra = event.extra_delays(np.arange(1000.0, 1300.0, 0.0001))
        fraction = float(np.mean(extra >= 0.010))
        assert fraction == pytest.approx(0.05, rel=0.15)

    def test_non_spike_samples_have_minor_bump(self):
        event = self.make()
        extra = event.extra_delays(np.arange(1000.0, 1300.0, 0.001))
        minor = extra[(extra > 0) & (extra < 0.010)]
        assert minor.size > 0
        assert np.all(minor <= 0.002)


class TestAsymmetryEvent:
    def test_constant_shift_inside_window_only(self):
        event = AsymmetryEvent(start=10.0, duration=5.0, shift=0.003)
        times = np.asarray([9.9, 10.0, 12.5, 14.99, 15.0])
        np.testing.assert_allclose(
            event.extra_delays(times), [0.0, 0.003, 0.003, 0.003, 0.0]
        )


class TestCompositeDelay:
    def test_sums_base_components_events(self):
        model = CompositeDelay(
            base=ConstantDelay(0.028),
            components=(ConstantDelay(0.001),),
            events=(AsymmetryEvent(start=0.0, duration=100.0, shift=0.002),),
        )
        assert model.delay_at(50.0) == pytest.approx(0.031)
        assert model.delay_at(200.0) == pytest.approx(0.029)

    def test_floor_comes_from_base(self):
        model = CompositeDelay(base=ConstantDelay(0.028))
        assert model.floor == 0.028

    def test_with_event_is_non_destructive(self):
        model = CompositeDelay(base=ConstantDelay(0.028))
        extended = model.with_event(
            AsymmetryEvent(start=0.0, duration=1.0, shift=0.01)
        )
        assert len(model.events) == 0
        assert len(extended.events) == 1

    def test_events_overlapping_query(self):
        event = RouteChangeEvent(start=100.0, duration=50.0)
        model = CompositeDelay(base=ConstantDelay(0.01), events=(event,))
        assert model.events_overlapping(120.0, 130.0) == [event]
        assert model.events_overlapping(200.0, 300.0) == []
