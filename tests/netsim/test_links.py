"""Tests for links: delay, loss, serialization, MTU."""

import ipaddress

import pytest

from repro.netsim.delaymodels import ConstantDelay, RouteChangeEvent
from repro.netsim.events import Simulator
from repro.netsim.links import ConstantLoss, Link, WindowedLoss
from repro.netsim.node import HostNode
from repro.netsim.packet import Ipv6Header, Packet


def make_packet(payload=100):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("::1"),
                dst=ipaddress.IPv6Address("::2"),
            )
        ],
        payload_bytes=payload,
    )


def make_link(sim, dst, **kwargs):
    src = HostNode("src", sim)
    defaults = dict(delay=ConstantDelay(0.010))
    defaults.update(kwargs)
    return Link("l", src, dst, **defaults)


class TestDelivery:
    def test_packet_arrives_after_delay(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst, delay=ConstantDelay(0.025))
        arrivals = []
        dst._on_packet = lambda p, t: arrivals.append(t)
        assert link.transmit(sim, make_packet())
        sim.run()
        assert arrivals == [pytest.approx(0.025)]

    def test_stats_track_delivery(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst)
        for _ in range(5):
            link.transmit(sim, make_packet())
        sim.run()
        assert link.stats.transmitted == 5
        assert link.stats.delivered == 5
        assert link.stats.loss_fraction == 0.0

    def test_bandwidth_adds_serialization_delay(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(
            sim, dst, delay=ConstantDelay(0.0), bandwidth_bps=8000.0
        )
        arrivals = []
        dst._on_packet = lambda p, t: arrivals.append(t)
        packet = make_packet(payload=100)  # 140 wire bytes -> 1120 bits
        link.transmit(sim, packet)
        sim.run()
        assert arrivals == [pytest.approx(1120 / 8000.0)]


class TestLoss:
    def test_lossless_by_default(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst)
        assert all(link.transmit(sim, make_packet()) for _ in range(50))

    def test_constant_loss_rate_approximately_honored(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst, loss=ConstantLoss(0.3), seed=42)
        dropped = 0
        for i in range(2000):
            sim.clock.advance_to(i * 0.001)
            if not link.transmit(sim, make_packet()):
                dropped += 1
        assert dropped / 2000 == pytest.approx(0.3, abs=0.05)

    def test_loss_always_when_rate_one(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst, loss=ConstantLoss(1.0))
        assert not link.transmit(sim, make_packet())
        assert link.stats.dropped_loss == 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantLoss(1.5)

    def test_windowed_loss_elevated_inside_window(self):
        loss = WindowedLoss(baseline=0.0, elevated=0.5, windows=((10.0, 20.0),))
        assert loss.loss_probability(5.0) == 0.0
        assert loss.loss_probability(15.0) == 0.5
        assert loss.loss_probability(20.0) == 0.0

    def test_windowed_loss_from_events(self):
        event = RouteChangeEvent(start=100.0, duration=60.0)
        loss = WindowedLoss.around_events([event], elevated=0.2)
        assert loss.loss_probability(130.0) == 0.2
        assert loss.loss_probability(99.0) == 0.0

    def test_drop_hook_invoked(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst, loss=ConstantLoss(1.0))
        drops = []
        link.on_drop(lambda p, reason: drops.append(reason))
        link.transmit(sim, make_packet())
        assert drops == ["loss"]


class TestMtu:
    def test_oversized_packet_dropped(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst, mtu=100)
        assert not link.transmit(sim, make_packet(payload=200))
        assert link.stats.dropped_mtu == 1

    def test_exact_mtu_passes(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        link = make_link(sim, dst, mtu=140)
        assert link.transmit(sim, make_packet(payload=100))

    def test_invalid_mtu_rejected(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        with pytest.raises(ValueError):
            make_link(sim, dst, mtu=0)

    def test_invalid_bandwidth_rejected(self):
        sim = Simulator()
        dst = HostNode("dst", sim)
        with pytest.raises(ValueError):
            make_link(sim, dst, bandwidth_bps=0.0)


class TestDeterminism:
    def test_same_seed_same_drop_pattern(self):
        def run(seed):
            sim = Simulator()
            dst = HostNode("dst", sim)
            link = make_link(sim, dst, loss=ConstantLoss(0.5), seed=seed)
            fates = []
            for i in range(200):
                sim.clock.advance_to(i * 0.01)
                fates.append(link.transmit(sim, make_packet()))
            return fates

        assert run(7) == run(7)
        assert run(7) != run(8)
