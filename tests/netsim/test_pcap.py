"""Tests for the packet trace recorder."""

import ipaddress

import pytest

from repro.netsim.links import ConstantLoss
from repro.netsim.pcap import TraceRecorder
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.netsim.topology import Network


def make_packet(flow=0, dst="2001:db8:20::1"):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::1"),
                dst=ipaddress.IPv6Address(dst),
            ),
            UdpHeader(sport=1, dport=2),
        ],
        payload_bytes=32,
        flow_label=flow,
    )


def build():
    net = Network()
    sw = net.add_switch("sw")
    sink = net.add_host("sink")
    link = net.add_link("out", sw, sink, delay_s=0.001)
    sw.fib.add_route("2001:db8:20::/48", link)
    return net, sw, link


class TestTaps:
    def test_ingress_tap_records_and_passes_through(self):
        net, sw, link = build()
        recorder = TraceRecorder()
        recorder.tap(sw, "ingress")
        net.inject(sw, make_packet(flow=7))
        net.run()
        assert len(recorder) == 1
        entry = recorder.entries[0]
        assert entry.where == "sw:ingress"
        assert entry.flow_label == 7
        assert link.stats.delivered == 1  # pass-through, not consumed

    def test_egress_tap(self):
        net, sw, link = build()
        recorder = TraceRecorder()
        recorder.tap(sw, "egress")
        net.inject(sw, make_packet())
        net.run()
        assert recorder.entries[0].where == "sw:egress"

    def test_drop_tap_records_reason(self):
        net, sw, link = build()
        link.loss = ConstantLoss(1.0)
        recorder = TraceRecorder()
        recorder.tap_drops(link)
        net.inject(sw, make_packet())
        net.run()
        assert len(recorder) == 1
        assert recorder.entries[0].where == "out:drop"
        assert recorder.entries[0].note == "loss"

    def test_invalid_direction(self):
        net, sw, _ = build()
        with pytest.raises(ValueError):
            TraceRecorder().tap(sw, "sideways")


class TestQueriesAndExport:
    def test_packet_journey(self):
        net, sw, _ = build()
        recorder = TraceRecorder()
        recorder.tap(sw, "ingress")
        recorder.tap(sw, "egress")
        packet = make_packet()
        net.inject(sw, packet)
        net.run()
        journey = recorder.packet_journey(packet.packet_id)
        assert [e.where for e in journey] == ["sw:ingress", "sw:egress"]

    def test_filter_by_flow(self):
        net, sw, _ = build()
        recorder = TraceRecorder()
        recorder.tap(sw, "ingress")
        net.inject(sw, make_packet(flow=1))
        net.inject(sw, make_packet(flow=2))
        net.run()
        assert len(recorder.filter(flow_label=1)) == 1

    def test_tango_fields_extracted(self):
        from repro.dataplane.encap import encapsulate

        net, sw, _ = build()
        recorder = TraceRecorder()
        recorder.tap(sw, "ingress")
        packet = make_packet(dst="2001:db8:99::1")
        encapsulate(
            packet,
            src="2001:db8:a0::1",
            dst="2001:db8:20::1",
            path_id=3,
            timestamp_ns=0,
            seq=17,
        )
        net.inject(sw, packet)
        net.run()
        entry = recorder.entries[0]
        assert entry.tango_path_id == 3
        assert entry.tango_seq == 17
        assert recorder.filter(path_id=3)

    def test_bounded_memory(self):
        net, sw, _ = build()
        recorder = TraceRecorder(max_entries=10)
        recorder.tap(sw, "ingress")
        for _ in range(25):
            net.inject(sw, make_packet())
        net.run()
        assert len(recorder) == 10
        assert recorder.evicted == 15

    def test_csv_export(self, tmp_path):
        net, sw, _ = build()
        recorder = TraceRecorder()
        recorder.tap(sw, "ingress")
        net.inject(sw, make_packet())
        net.run()
        out = recorder.save_csv(tmp_path / "trace.csv")
        text = out.read_text()
        assert "where" in text.splitlines()[0]
        assert "sw:ingress" in text

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_entries=0)
