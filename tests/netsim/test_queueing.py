"""Tests for queued links (bandwidth contention, drop-tail buffers)."""

import ipaddress

import pytest

from repro.netsim.delaymodels import ConstantDelay
from repro.netsim.events import Simulator
from repro.netsim.node import HostNode
from repro.netsim.packet import Ipv6Header, Packet
from repro.netsim.queueing import QueuedLink


def make_packet(payload=960):
    """1000 wire bytes with the 40-byte IPv6 header."""
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("::1"),
                dst=ipaddress.IPv6Address("::2"),
            )
        ],
        payload_bytes=payload,
    )


def build(rate_bps=8_000_000.0, buffer_bytes=4000, delay=0.0):
    sim = Simulator()
    dst = HostNode("dst", sim)
    arrivals = []
    dst._on_packet = lambda p, t: arrivals.append(t)
    link = QueuedLink(
        "q",
        HostNode("src", sim),
        dst,
        delay=ConstantDelay(delay),
        bandwidth_bps=rate_bps,
        buffer_bytes=buffer_bytes,
    )
    return sim, link, arrivals


class TestServiceTimes:
    def test_single_packet_pays_serialization(self):
        sim, link, arrivals = build(rate_bps=8_000_000.0, delay=0.010)
        link.transmit(sim, make_packet())  # 1000 B = 8000 bits = 1 ms
        sim.run()
        assert arrivals == [pytest.approx(0.011)]

    def test_back_to_back_packets_serialize_fifo(self):
        sim, link, arrivals = build(rate_bps=8_000_000.0)
        for _ in range(3):
            link.transmit(sim, make_packet())
        sim.run()
        assert arrivals == pytest.approx([0.001, 0.002, 0.003])

    def test_idle_link_resets_busy_time(self):
        sim, link, arrivals = build(rate_bps=8_000_000.0)
        link.transmit(sim, make_packet())
        sim.run()
        sim.clock.advance_to(1.0)
        link.transmit(sim, make_packet())
        sim.run()
        assert arrivals[1] == pytest.approx(1.001)


class TestDropTail:
    def test_buffer_overflow_drops(self):
        # 4000-byte buffer holds 4 queued packets; 1 more is in service.
        sim, link, arrivals = build(buffer_bytes=4000)
        outcomes = [link.transmit(sim, make_packet()) for _ in range(8)]
        sim.run()
        assert outcomes[:5] == [True] * 5  # in service + 4 queued
        assert outcomes[5:] == [False] * 3
        assert link.dropped_queue == 3
        assert len(arrivals) == 5

    def test_queue_drains_and_accepts_again(self):
        sim, link, arrivals = build(buffer_bytes=1000)
        assert link.transmit(sim, make_packet())  # in service
        assert link.transmit(sim, make_packet())  # queued
        assert not link.transmit(sim, make_packet())  # dropped
        sim.run()
        sim.clock.advance_to(1.0)
        assert link.transmit(sim, make_packet())
        sim.run()
        assert len(arrivals) == 3

    def test_max_backlog_recorded(self):
        sim, link, _ = build(buffer_bytes=10000)
        for _ in range(5):
            link.transmit(sim, make_packet())
        assert link.max_backlog_bytes == 4000
        sim.run()
        assert link.queue_depth_bytes == 0


class TestQueueingDelayVisibility:
    def test_congestion_inflates_latency(self):
        """Self-queueing at an edge uplink adds real, measurable delay —
        the confounder end-to-end measurements include and Tango's
        border timestamping sits behind."""
        sim, link, arrivals = build(rate_bps=800_000.0)  # 10 ms/packet
        for _ in range(5):
            link.transmit(sim, make_packet())
        sim.run()
        assert arrivals[0] == pytest.approx(0.010)
        assert arrivals[4] == pytest.approx(0.050)


class TestObservables:
    def test_utilization_tracks_busy_fraction(self):
        sim, link, _ = build(rate_bps=8_000_000.0)
        assert link.utilization(0.0) == 0.0
        for _ in range(4):  # 4 x 1 ms of serialization
            link.transmit(sim, make_packet())
        sim.run()
        sim.clock.advance_to(0.008)
        assert link.busy_seconds == pytest.approx(0.004)
        assert link.utilization(sim.now) == pytest.approx(0.5)

    def test_utilization_capped_at_one(self):
        sim, link, _ = build(rate_bps=8_000_000.0, buffer_bytes=100_000)
        for _ in range(10):
            link.transmit(sim, make_packet())
        # 10 ms of accepted serialization after only 1 ms of sim time.
        assert link.utilization(0.001) == 1.0

    def test_dropped_packets_do_not_count_as_busy(self):
        sim, link, _ = build(buffer_bytes=1000)
        link.transmit(sim, make_packet())  # in service
        link.transmit(sim, make_packet())  # queued
        link.transmit(sim, make_packet())  # dropped
        assert link.busy_seconds == pytest.approx(0.002)

    def test_pending_wait_matches_backlog(self):
        sim, link, _ = build(rate_bps=8_000_000.0, buffer_bytes=100_000)
        assert link.pending_wait_s(0.0) == 0.0
        for _ in range(3):
            link.transmit(sim, make_packet())
        assert link.pending_wait_s(0.0) == pytest.approx(0.003)
        sim.run()
        assert link.pending_wait_s(sim.now) == 0.0

    def test_observables_do_not_change_behavior(self):
        # Accounting only: delivery times are identical to the published
        # service-time tests regardless of observable reads in between.
        sim, link, arrivals = build(rate_bps=8_000_000.0)
        link.transmit(sim, make_packet())
        link.utilization(0.0005)
        link.pending_wait_s(0.0005)
        link.transmit(sim, make_packet())
        sim.run()
        assert arrivals == pytest.approx([0.001, 0.002])


class TestValidation:
    def test_rate_required_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            QueuedLink(
                "q",
                HostNode("a", sim),
                HostNode("b", sim),
                delay=ConstantDelay(0.0),
                bandwidth_bps=0.0,
            )

    def test_negative_buffer_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            QueuedLink(
                "q",
                HostNode("a", sim),
                HostNode("b", sim),
                delay=ConstantDelay(0.0),
                bandwidth_bps=1e6,
                buffer_bytes=-1,
            )

    def test_mtu_and_loss_still_apply(self):
        from repro.netsim.links import ConstantLoss

        sim = Simulator()
        dst = HostNode("dst", sim)
        link = QueuedLink(
            "q",
            HostNode("src", sim),
            dst,
            delay=ConstantDelay(0.0),
            bandwidth_bps=1e6,
            mtu=500,
            loss=ConstantLoss(0.0),
        )
        assert not link.transmit(sim, make_packet())  # 1000 B > 500 MTU
        assert link.stats.dropped_mtu == 1
