"""Tests for the convergence snapshot cache."""

import pytest

from repro.bgp.network import BgpNetwork
from repro.bgp.router import BgpRouter
from repro.bgp.snapshot import (
    SnapshotCache,
    capture_snapshot,
    network_fingerprint,
    restore_snapshot,
)

P = "2001:db8:1::/48"
Q = "2001:db8:2::/48"


def diamond() -> BgpNetwork:
    net = BgpNetwork()
    net.add_router(BgpRouter("origin", 65001))
    net.add_router(BgpRouter("left", 65002))
    net.add_router(BgpRouter("right", 65003))
    net.add_router(BgpRouter("sink", 65004))
    net.add_provider("origin", "left")
    net.add_provider("origin", "right")
    net.add_provider("sink", "left")
    net.add_provider("sink", "right")
    return net


class TestFingerprint:
    def test_deterministic_across_identical_builds(self):
        assert network_fingerprint(diamond()) == network_fingerprint(diamond())

    def test_changes_with_origination(self):
        net = diamond()
        before = network_fingerprint(net)
        net.router("origin").originate(P)
        assert network_fingerprint(net) != before

    def test_changes_with_session_set(self):
        net = diamond()
        before = network_fingerprint(net)
        net.disconnect("origin", "left")
        assert network_fingerprint(net) != before

    def test_insensitive_to_construction_order(self):
        a = diamond()
        b = BgpNetwork()
        b.add_router(BgpRouter("sink", 65004))
        b.add_router(BgpRouter("right", 65003))
        b.add_router(BgpRouter("left", 65002))
        b.add_router(BgpRouter("origin", 65001))
        b.add_provider("sink", "right")
        b.add_provider("sink", "left")
        b.add_provider("origin", "right")
        b.add_provider("origin", "left")
        assert network_fingerprint(a) == network_fingerprint(b)

    def test_custom_policies_are_uncacheable(self):
        net = diamond()
        net.router("left").import_policies.append(lambda name, prefix, attrs: True)
        assert network_fingerprint(net) is None


class TestCaptureRestore:
    def test_restore_round_trips_all_tables(self):
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        snap = capture_snapshot(net)
        expected = {
            name: net.routers[name].loc_rib.snapshot() for name in net.routers
        }
        net.router("origin").withdraw_origination(P)
        net.router("sink").originate(Q)
        net.converge()
        restore_snapshot(net, snap)
        for name in sorted(net.routers):
            assert net.routers[name].loc_rib.snapshot() == expected[name], name
        # The restored state is a true fixpoint: nothing left to do.
        assert net.converge() == 1

    def test_restore_rejects_mismatched_router_set(self):
        net = diamond()
        net.converge()
        snap = capture_snapshot(net)
        other = BgpNetwork()
        other.add_router(BgpRouter("origin", 65001))
        with pytest.raises(ValueError):
            restore_snapshot(other, snap)

    def test_restored_state_is_isolated_from_later_mutation(self):
        """Copy-on-write: converging after a restore must not corrupt
        the cached snapshot."""
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        snap = capture_snapshot(net)
        restore_snapshot(net, snap)
        net.router("origin").withdraw_origination(P)
        net.converge()
        restore_snapshot(net, snap)
        assert net.best_path("sink", P) is not None


class TestSnapshotCache:
    def test_second_converge_of_same_state_is_a_hit(self):
        cache = SnapshotCache()
        net = diamond()
        net.router("origin").originate(P)
        cache.converge(net)
        assert (cache.hits, cache.misses) == (0, 1)
        # Perturb and come back to the same configuration.
        net.router("origin").withdraw_origination(P)
        cache.converge(net)
        net.router("origin").originate(P)
        waves = cache.converge(net)
        assert waves == 0
        assert cache.hits == 1
        assert net.best_path("sink", P) is not None

    def test_uncacheable_networks_bypass(self):
        cache = SnapshotCache()
        net = diamond()
        net.router("left").import_policies.append(lambda name, prefix, attrs: True)
        net.router("origin").originate(P)
        waves = cache.converge(net)
        assert waves >= 1
        assert cache.bypasses == 1
        assert len(cache) == 0

    def test_capacity_evicts_least_recently_used(self):
        cache = SnapshotCache(capacity=2)
        net = diamond()
        prefixes = (P, Q, "2001:db8:3::/48")
        for prefix in prefixes:
            net.router("origin").originate(prefix)
            cache.converge(net)
            net.router("origin").withdraw_origination(prefix)
            cache.converge(net)
        assert len(cache) == 2

    def test_hit_restores_bitexact_fixpoint(self):
        cache = SnapshotCache()
        reference = diamond()
        reference.router("origin").originate(P)
        reference.converge()
        net = diamond()
        net.router("origin").originate(P)
        cache.converge(net)
        net.router("origin").withdraw_origination(P)
        cache.converge(net)
        net.router("origin").originate(P)
        cache.converge(net)  # hit: restore
        for name in sorted(net.routers):
            assert (
                net.routers[name].loc_rib.snapshot()
                == reference.routers[name].loc_rib.snapshot()
            ), name

    def test_clear_drops_entries_and_stats_survive(self):
        cache = SnapshotCache()
        net = diamond()
        cache.converge(net)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
