"""Tests for the three RIBs."""

import ipaddress

from repro.bgp.attributes import AsPath, RouteAttributes
from repro.bgp.messages import Announcement
from repro.bgp.policy import Relationship
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, RibEntry

P1 = ipaddress.ip_network("2001:db8:1::/48")
P2 = ipaddress.ip_network("2001:db8:2::/48")


def entry(prefix=P1, neighbor="n1", path=(1,)):
    return RibEntry(
        prefix=prefix,
        attributes=RouteAttributes(as_path=AsPath(tuple(path))),
        neighbor=neighbor,
        relationship=Relationship.PROVIDER,
    )


class TestAdjRibIn:
    def test_upsert_reports_change(self):
        rib = AdjRibIn()
        assert rib.upsert(entry())
        assert not rib.upsert(entry())  # identical
        assert rib.upsert(entry(path=(1, 2)))  # changed attributes

    def test_candidates_across_neighbors(self):
        rib = AdjRibIn()
        rib.upsert(entry(neighbor="a"))
        rib.upsert(entry(neighbor="b", path=(2,)))
        rib.upsert(entry(prefix=P2, neighbor="a"))
        assert len(rib.candidates(P1)) == 2
        assert len(rib.candidates(P2)) == 1

    def test_remove(self):
        rib = AdjRibIn()
        rib.upsert(entry())
        assert rib.remove("n1", P1)
        assert not rib.remove("n1", P1)
        assert rib.candidates(P1) == []

    def test_remove_neighbor_flushes_session(self):
        rib = AdjRibIn()
        rib.upsert(entry(neighbor="a"))
        rib.upsert(entry(prefix=P2, neighbor="a"))
        rib.upsert(entry(neighbor="b"))
        assert rib.remove_neighbor("a") == 2
        assert len(rib) == 1

    def test_prefixes_from(self):
        rib = AdjRibIn()
        rib.upsert(entry(neighbor="a"))
        rib.upsert(entry(prefix=P2, neighbor="b"))
        assert rib.prefixes_from("a") == {P1}
        assert rib.prefixes() == {P1, P2}


class TestLocRib:
    def test_set_best_change_detection(self):
        rib = LocRib()
        assert rib.set_best(P1, entry())
        assert not rib.set_best(P1, entry())
        assert rib.set_best(P1, entry(path=(9,)))

    def test_clear_best(self):
        rib = LocRib()
        rib.set_best(P1, entry())
        assert rib.set_best(P1, None)
        assert not rib.set_best(P1, None)
        assert rib.best(P1) is None

    def test_routes_snapshot(self):
        rib = LocRib()
        rib.set_best(P1, entry())
        snapshot = rib.routes()
        rib.set_best(P2, entry(prefix=P2))
        assert P2 not in snapshot


class TestAdjRibOut:
    def test_record_and_diff(self):
        rib = AdjRibOut()
        ann = Announcement(prefix=P1, attributes=RouteAttributes())
        assert rib.last_sent("n", P1) is None
        rib.record("n", ann)
        assert rib.last_sent("n", P1) == ann
        assert rib.prefixes_to("n") == {P1}

    def test_forget(self):
        rib = AdjRibOut()
        rib.record("n", Announcement(prefix=P1, attributes=RouteAttributes()))
        rib.forget("n", P1)
        assert rib.last_sent("n", P1) is None
        rib.forget("n", P1)  # idempotent
