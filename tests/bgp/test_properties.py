"""Property-based tests on the BGP engine.

Gao–Rexford policies guarantee (a) convergence to a unique fixpoint and
(b) valley-free, loop-free best paths.  These properties are exactly what
the Tango discovery procedure leans on ("wait for BGP to propagate"), so
we check them over randomized three-tier topologies.
"""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.network import BgpNetwork
from repro.bgp.policy import Relationship
from repro.bgp.router import BgpRouter

PREFIX = ipaddress.ip_network("2001:db8:77::/48")


def build_topology(tier1_count, mid_links, stub_links):
    """Three tiers: full-mesh tier-1 peering; mids buy transit from
    tier-1s; stubs buy transit from mids.  Link choices come from
    hypothesis-drawn index lists, so the shape is randomized but always
    a valid (acyclic-provider) business hierarchy."""
    net = BgpNetwork()
    relationships = {}

    tier1 = [f"t{i}" for i in range(tier1_count)]
    for i, name in enumerate(tier1):
        net.add_router(BgpRouter(name, 10 + i))
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            net.add_peering(a, b)
            relationships[(a, b)] = Relationship.PEER
            relationships[(b, a)] = Relationship.PEER

    mids = [f"m{i}" for i in range(len(mid_links))]
    for i, (name, providers) in enumerate(zip(mids, mid_links)):
        net.add_router(BgpRouter(name, 100 + i))
        for p in sorted({idx % tier1_count for idx in providers}):
            provider = tier1[p]
            net.add_provider(name, provider)
            relationships[(name, provider)] = Relationship.PROVIDER
            relationships[(provider, name)] = Relationship.CUSTOMER

    stubs = [f"s{i}" for i in range(len(stub_links))]
    for i, (name, providers) in enumerate(zip(stubs, stub_links)):
        net.add_router(BgpRouter(name, 1000 + i))
        for p in sorted({idx % len(mids) for idx in providers}):
            provider = mids[p]
            net.add_provider(name, provider)
            relationships[(name, provider)] = Relationship.PROVIDER
            relationships[(provider, name)] = Relationship.CUSTOMER

    asn_to_name = {r.asn: r.name for r in net.routers.values()}
    return net, relationships, asn_to_name, stubs


def path_is_valley_free(observer, path_asns, relationships, asn_to_name):
    """Once a path descends (provider->customer hop) or crosses a peer
    link, it must keep descending (from the traffic direction's view)."""
    names = [observer] + [asn_to_name[a] for a in path_asns]
    # Hop a->b carries traffic from a to b; the route was learned the
    # other way.  Classify each hop by a's view of b.
    seen_down_or_peer = False
    for a, b in zip(names, names[1:]):
        rel = relationships[(a, b)]
        if rel is Relationship.PROVIDER:
            # going up: only allowed before any down/peer hop
            if seen_down_or_peer:
                return False
        else:
            seen_down_or_peer = True
    return True


topology_strategy = st.tuples(
    st.integers(min_value=2, max_value=4),  # tier-1 count
    st.lists(  # mid-tier provider index lists
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=3),
        min_size=2,
        max_size=4,
    ),
    st.lists(  # stub provider index lists
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=2),
        min_size=2,
        max_size=4,
    ),
)


class TestConvergenceProperties:
    @given(topology_strategy)
    @settings(max_examples=40, deadline=None)
    def test_always_converges(self, topo):
        tier1_count, mid_links, stub_links = topo
        net, _, _, stubs = build_topology(tier1_count, mid_links, stub_links)
        net.router(stubs[0]).originate(PREFIX)
        rounds = net.converge(max_rounds=100)
        assert rounds < 100

    @given(topology_strategy)
    @settings(max_examples=40, deadline=None)
    def test_best_paths_loop_free_and_valley_free(self, topo):
        tier1_count, mid_links, stub_links = topo
        net, relationships, asn_to_name, stubs = build_topology(
            tier1_count, mid_links, stub_links
        )
        origin = stubs[0]
        net.router(origin).originate(PREFIX)
        net.converge()
        for name, router in net.routers.items():
            best = router.best_path(PREFIX)
            if best is None:
                continue
            # Loop-free: no repeated ASN (no prepending in this setup).
            assert len(set(best.asns)) == len(best.asns)
            # Valley-free along the traffic direction.
            assert path_is_valley_free(
                name, best.asns, relationships, asn_to_name
            ), f"{name}: {best}"

    @given(topology_strategy)
    @settings(max_examples=25, deadline=None)
    def test_fixpoint_is_stable_under_reconvergence(self, topo):
        tier1_count, mid_links, stub_links = topo
        net, _, _, stubs = build_topology(tier1_count, mid_links, stub_links)
        net.router(stubs[0]).originate(PREFIX)
        net.converge()
        snapshot = {
            name: router.best_path(PREFIX)
            for name, router in net.routers.items()
        }
        assert net.converge() == 1  # immediately stable
        for name, router in net.routers.items():
            assert router.best_path(PREFIX) == snapshot[name]

    @given(topology_strategy)
    @settings(max_examples=25, deadline=None)
    def test_withdraw_unreaches_everyone(self, topo):
        tier1_count, mid_links, stub_links = topo
        net, _, _, stubs = build_topology(tier1_count, mid_links, stub_links)
        net.router(stubs[0]).originate(PREFIX)
        net.converge()
        net.router(stubs[0]).withdraw_origination(PREFIX)
        net.converge()
        for name in net.routers:
            if name != stubs[0]:
                assert not net.reachable(name, PREFIX), name
