"""Engine-equivalence suite: incremental vs round-based propagation.

The incremental work-queue engine is an optimization, not a semantics
change: under Gao–Rexford policies with deterministic tie-breaks the
network has a unique fixpoint, so both engines must land on bit-exact
identical state for any sequence of operations.  This suite drives every
shipped scenario (Vultr, enterprise, mesh) through representative
workloads under each engine and compares:

* full RIB contents (adj-rib-in, loc-rib, adj-rib-out, originations),
* discovery results (the ``paths`` tuples — wave counts legitimately
  differ between engines),
* fault-replay recovery logs (byte-identical ``RecoveryLog.format()``).
"""

import pytest

from repro.bgp.network import ENGINE_INCREMENTAL, ENGINE_ROUNDS, BgpNetwork
from repro.core.discovery import PathDiscovery
from repro.scenarios.enterprise import (
    BUSINESS_ISP_ASN,
    build_enterprise_bgp,
)
from repro.scenarios.topologies import build_mesh_scenario
from repro.scenarios.vultr import VULTR_ASN, build_bgp_network

ENGINES = (ENGINE_ROUNDS, ENGINE_INCREMENTAL)


def rib_dump(net: BgpNetwork) -> dict:
    """Canonical, comparable image of every routing table in the network."""
    dump = {}
    for name in sorted(net.routers):
        router = net.routers[name]
        dump[name] = {
            "adj_rib_in": router.adj_rib_in.snapshot(),
            "loc_rib": router.loc_rib.snapshot(),
            "adj_rib_out": router.adj_rib_out.snapshot(),
            "originated": dict(router.originated),
        }
    return dump


def run_vultr_workload(engine: str) -> tuple[dict, list]:
    """Originations, discovery both ways, a session bounce, a withdrawal."""
    net = build_bgp_network()
    net.use_engine(engine)
    paths = []
    net.router("tango-la").originate("2001:db8:a0::/48")
    net.router("tango-ny").originate("2001:db8:b0::/48")
    net.converge()
    discovery = PathDiscovery(net, VULTR_ASN)
    for announcer, observer in (("tango-ny", "tango-la"), ("tango-la", "tango-ny")):
        result = discovery.discover(
            announcer=announcer,
            observer=observer,
            probe_prefix="2001:db8:fff::/48",
        )
        paths.append(result.paths)
    net.reset_session("vultr-ny", "ntt")
    net.router("tango-la").withdraw_origination("2001:db8:a0::/48")
    net.converge()
    return rib_dump(net), paths


def run_enterprise_workload(engine: str) -> tuple[dict, list]:
    net = build_enterprise_bgp()
    net.use_engine(engine)
    net.router("tango-factory").originate("2001:db8:e100::/48")
    net.router("tango-hq").originate("2001:db8:e200::/48")
    net.converge()
    discovery = PathDiscovery(net, BUSINESS_ISP_ASN)
    result = discovery.discover(
        announcer="tango-hq",
        observer="tango-factory",
        probe_prefix="2001:db8:efff::/48",
    )
    net.reset_session("business-isp", "ntt")
    return rib_dump(net), [result.paths]


def run_mesh_workload(engine: str) -> tuple[dict, list]:
    """The mesh builder runs all-pairs discovery internally; rerun one
    extra pair per engine on top of the (deterministic) built state."""
    scenario = build_mesh_scenario(3, seed=7)
    net = scenario.bgp
    net.use_engine(engine)
    discovery = PathDiscovery(net, 64901)
    result = discovery.discover(
        announcer="edge1",
        observer="edge0",
        probe_prefix="2001:db8:feed::/48",
    )
    return rib_dump(net), [result.paths]


WORKLOADS = {
    "vultr": run_vultr_workload,
    "enterprise": run_enterprise_workload,
    "mesh": run_mesh_workload,
}


@pytest.mark.parametrize("scenario", sorted(WORKLOADS))
def test_engines_agree_on_all_ribs_and_paths(scenario):
    workload = WORKLOADS[scenario]
    rounds_ribs, rounds_paths = workload(ENGINE_ROUNDS)
    incr_ribs, incr_paths = workload(ENGINE_INCREMENTAL)
    assert rounds_paths == incr_paths
    assert rounds_ribs == incr_ribs


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_reaches_same_fixpoint_as_fresh_converge(engine):
    """Idempotence: converging a converged network changes nothing and
    reports exactly one (verification) wave under either engine."""
    net = build_bgp_network()
    net.use_engine(engine)
    net.router("tango-la").originate("2001:db8:a0::/48")
    net.converge()
    before = rib_dump(net)
    assert net.converge() == 1
    assert rib_dump(net) == before


def test_engines_agree_after_interleaved_switch():
    """Switching engines mid-stream must not corrupt state: pending work
    is either flushed or carried, never dropped."""
    reference = build_bgp_network()
    reference.use_engine(ENGINE_ROUNDS)
    mixed = build_bgp_network()
    mixed.use_engine(ENGINE_INCREMENTAL)
    for net in (reference, mixed):
        net.router("tango-la").originate("2001:db8:a0::/48")
        net.converge()
    mixed.use_engine(ENGINE_ROUNDS)
    for net in (reference, mixed):
        net.router("tango-ny").originate("2001:db8:b0::/48")
        net.converge()
        net.reset_session("vultr-la", "telia")
    mixed.use_engine(ENGINE_INCREMENTAL)
    for net in (reference, mixed):
        net.router("tango-la").withdraw_origination("2001:db8:a0::/48")
        net.converge()
    assert rib_dump(reference) == rib_dump(mixed)


def test_fault_replay_recovery_logs_identical():
    """The bench replay cross-checks byte-identical recovery logs between
    the full-scan baseline and the incremental+snapshot configuration
    (run_fault_replay_workload raises otherwise)."""
    from repro.profiling.bench import run_fault_replay_workload

    result = run_fault_replay_workload(repeat=1)
    assert result.baseline_s > 0.0
    assert result.incremental_s > 0.0
