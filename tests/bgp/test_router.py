"""Tests for the BGP speaker: import, decision process, export."""

import ipaddress

import pytest

from repro.bgp.attributes import AsPath, Origin, RouteAttributes
from repro.bgp.communities import no_export_to, prepend_to
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import Relationship
from repro.bgp.router import BgpRouter

P1 = ipaddress.ip_network("2001:db8:1::/48")


def announce(path, **kwargs):
    return Announcement(
        prefix=P1,
        attributes=RouteAttributes(as_path=AsPath(tuple(path)), **kwargs),
    )


def make_router(**kwargs):
    router = BgpRouter("r", 100, **kwargs)
    router.add_neighbor("cust", 200, Relationship.CUSTOMER)
    router.add_neighbor("peer", 300, Relationship.PEER)
    router.add_neighbor("prov", 400, Relationship.PROVIDER)
    return router


class TestSessions:
    def test_duplicate_neighbor_rejected(self):
        router = make_router()
        with pytest.raises(ValueError, match="duplicate"):
            router.add_neighbor("cust", 201, Relationship.CUSTOMER)

    def test_unknown_sender_rejected(self):
        router = make_router()
        with pytest.raises(KeyError, match="no session"):
            router.receive_announcement("stranger", announce([1]))

    def test_remove_neighbor_flushes_routes(self):
        router = make_router()
        router.receive_announcement("cust", announce([200]))
        assert router.best_route(P1) is not None
        router.remove_neighbor("cust")
        assert router.best_route(P1) is None


class TestImport:
    def test_loop_detection_rejects_own_asn(self):
        router = make_router()
        changed = router.receive_announcement("prov", announce([400, 100, 5]))
        assert not changed
        assert router.best_route(P1) is None

    def test_allowas_in_accepts_own_asn(self):
        router = BgpRouter("r", 100, allowas_in=True)
        router.add_neighbor("prov", 400, Relationship.PROVIDER)
        router.receive_announcement("prov", announce([400, 100, 5]))
        assert router.best_route(P1) is not None

    def test_local_pref_assigned_by_relationship(self):
        router = make_router()
        router.receive_announcement("prov", announce([400]))
        assert router.best_route(P1).attributes.local_pref == 100
        router.receive_announcement("cust", announce([200]))
        assert router.best_route(P1).attributes.local_pref == 300

    def test_import_policy_can_reject(self):
        router = make_router()
        router.import_policies.append(lambda n, p, a: False)
        router.receive_announcement("cust", announce([200]))
        assert router.best_route(P1) is None

    def test_updated_announcement_replaces_old(self):
        router = make_router()
        router.receive_announcement("cust", announce([200, 5]))
        router.receive_announcement("cust", announce([200, 9]))
        assert router.best_path(P1).asns == (200, 9)


class TestDecisionProcess:
    def test_customer_beats_shorter_provider_path(self):
        """Highest LOCAL_PREF wins before path length."""
        router = make_router()
        router.receive_announcement("prov", announce([400]))
        router.receive_announcement("cust", announce([200, 7, 8]))
        assert router.best_route(P1).neighbor == "cust"

    def test_shorter_path_wins_within_tier(self):
        router = make_router()
        router.add_neighbor("prov2", 500, Relationship.PROVIDER)
        router.receive_announcement("prov", announce([400, 1, 2]))
        router.receive_announcement("prov2", announce([500, 1]))
        assert router.best_route(P1).neighbor == "prov2"

    def test_prepending_lengthens_and_loses(self):
        router = make_router()
        router.add_neighbor("prov2", 500, Relationship.PROVIDER)
        router.receive_announcement("prov", announce([400, 400, 400, 1]))
        router.receive_announcement("prov2", announce([500, 2, 3]))
        assert router.best_route(P1).neighbor == "prov2"

    def test_origin_breaks_length_tie(self):
        router = make_router()
        router.add_neighbor("prov2", 500, Relationship.PROVIDER)
        router.receive_announcement(
            "prov", announce([400], origin=Origin.INCOMPLETE)
        )
        router.receive_announcement("prov2", announce([500], origin=Origin.IGP))
        assert router.best_route(P1).neighbor == "prov2"

    def test_operator_preference_breaks_remaining_tie(self):
        """The Vultr behaviour: NTT preferred over Telia over GTT."""
        router = BgpRouter("r", 100)
        router.add_neighbor("ntt", 2914, Relationship.PROVIDER, preference=1)
        router.add_neighbor("telia", 1299, Relationship.PROVIDER, preference=2)
        router.receive_announcement("telia", announce([1299]))
        router.receive_announcement("ntt", announce([2914]))
        assert router.best_route(P1).neighbor == "ntt"

    def test_neighbor_name_is_final_tiebreak(self):
        router = BgpRouter("r", 100)
        router.add_neighbor("a", 1, Relationship.PROVIDER)
        router.add_neighbor("b", 2, Relationship.PROVIDER)
        router.receive_announcement("b", announce([2]))
        router.receive_announcement("a", announce([1]))
        assert router.best_route(P1).neighbor == "a"

    def test_withdrawal_falls_back_to_next_best(self):
        router = make_router()
        router.receive_announcement("cust", announce([200]))
        router.receive_announcement("prov", announce([400]))
        router.receive_withdrawal("cust", Withdrawal(P1))
        assert router.best_route(P1).neighbor == "prov"


class TestExport:
    def test_prepends_own_asn(self):
        router = make_router()
        router.receive_announcement("cust", announce([200]))
        exports = router.exports_for("peer")
        assert exports[P1].attributes.as_path.asns == (100, 200)

    def test_valley_free_blocks_provider_routes_to_peers(self):
        router = make_router()
        router.receive_announcement("prov", announce([400]))
        assert P1 not in router.exports_for("peer")
        assert P1 in router.exports_for("cust")

    def test_split_horizon(self):
        router = make_router()
        router.receive_announcement("cust", announce([200]))
        assert P1 not in router.exports_for("cust")

    def test_origination_exports_everywhere(self):
        router = make_router()
        router.originate(P1)
        for neighbor in ("cust", "peer", "prov"):
            assert P1 in router.exports_for(neighbor)

    def test_origination_supersedes_learned_route(self):
        router = make_router()
        router.receive_announcement("prov", announce([400, 9]))
        router.originate(P1)
        exports = router.exports_for("peer")
        assert exports[P1].attributes.as_path.asns == (100,)

    def test_local_pref_not_leaked_across_ebgp(self):
        router = make_router()
        router.receive_announcement("cust", announce([200]))
        assert router.exports_for("peer")[P1].attributes.local_pref == 100

    def test_private_asn_stripped_on_export(self):
        router = make_router()
        router.receive_announcement("cust", announce([64512, 64513]))
        exports = router.exports_for("peer")
        assert exports[P1].attributes.as_path.asns == (100,)

    def test_private_asn_kept_when_stripping_disabled(self):
        router = BgpRouter("r", 100, strip_private_on_export=False)
        router.add_neighbor("cust", 64512, Relationship.CUSTOMER)
        router.add_neighbor("peer", 300, Relationship.PEER)
        router.receive_announcement("cust", announce([64512]))
        exports = router.exports_for("peer")
        assert exports[P1].attributes.as_path.asns == (100, 64512)

    def test_no_export_to_community_honored(self):
        router = make_router()
        attrs = RouteAttributes(as_path=AsPath((200,))).add_communities(
            large=[no_export_to(100, 300)]
        )
        router.receive_announcement(
            "cust", Announcement(prefix=P1, attributes=attrs)
        )
        assert P1 not in router.exports_for("peer")  # peer asn is 300
        assert P1 in router.exports_for("prov")

    def test_prepend_community_honored(self):
        router = make_router()
        attrs = RouteAttributes(as_path=AsPath((200,))).add_communities(
            large=[prepend_to(100, 300, 2)]
        )
        router.receive_announcement(
            "cust", Announcement(prefix=P1, attributes=attrs)
        )
        exports = router.exports_for("peer")
        assert exports[P1].attributes.as_path.asns == (100, 100, 100, 200)

    def test_communities_carried_transitively(self):
        router = make_router()
        community = no_export_to(999, 300)  # addressed to another AS
        attrs = RouteAttributes(as_path=AsPath((200,))).add_communities(
            large=[community]
        )
        router.receive_announcement(
            "cust", Announcement(prefix=P1, attributes=attrs)
        )
        exports = router.exports_for("peer")
        assert community in exports[P1].attributes.large_communities

    def test_export_policy_can_filter(self):
        router = make_router()
        router.originate(P1)
        router.export_policies.append(lambda n, p, a: n != "peer")
        assert P1 not in router.exports_for("peer")
        assert P1 in router.exports_for("cust")

    def test_poisoned_origination_includes_targets(self):
        from repro.bgp.poisoning import poisoned_attributes

        router = make_router()
        router.originate(P1, poisoned_attributes([666]))
        exports = router.exports_for("cust")
        assert exports[P1].attributes.as_path.asns == (100, 666)


class TestRejectedUpdateReplacesPredecessor:
    """Regression: an UPDATE rejected by loop detection or import policy
    implicitly withdraws the neighbor's earlier accepted route — the
    Loc-RIB must not keep forwarding on the stale entry."""

    def test_loop_rejected_update_clears_stale_best(self):
        router = make_router()
        router.receive_announcement("prov", announce([400, 7]))
        assert router.best_route(P1) is not None
        # The neighbor's route changes to one containing our ASN.
        router.receive_announcement("prov", announce([400, 100, 7]))
        assert router.best_route(P1) is None

    def test_policy_rejected_update_clears_stale_best(self):
        router = make_router()
        router.receive_announcement("prov", announce([400, 7]))
        router.import_policies.append(
            lambda n, p, a: a.as_path.length < 3
        )
        router.receive_announcement("prov", announce([400, 7, 8, 9]))
        assert router.best_route(P1) is None

    def test_fallback_to_other_neighbor_after_rejection(self):
        router = make_router()
        router.receive_announcement("prov", announce([400, 7]))
        router.receive_announcement("peer", announce([300, 7, 8]))
        assert router.best_route(P1).neighbor == "peer"  # higher pref
        router.receive_announcement("peer", announce([300, 100, 7]))
        assert router.best_route(P1).neighbor == "prov"
