"""Tests for timed BGP failure response."""

import pytest

from repro.bgp.network import BgpNetwork, CONVERGENCE_DELAY_S
from repro.bgp.router import BgpRouter
from repro.bgp.timing import SessionTimers, TimedFailover
from repro.netsim.events import Simulator

P = "2001:db8:1::/48"


def diamond():
    net = BgpNetwork()
    for name, asn in (
        ("origin", 65001),
        ("left", 100),
        ("right", 200),
        ("sink", 65002),
    ):
        net.add_router(BgpRouter(name, asn))
    net.add_provider("origin", "left", customer_preference=1)
    net.add_provider("origin", "right", customer_preference=2)
    net.add_provider("sink", "left", customer_preference=1)
    net.add_provider("sink", "right", customer_preference=2)
    net.router("origin").originate(P)
    net.converge()
    return net


class TestSessionTimers:
    def test_defaults_match_rfc_and_literature(self):
        timers = SessionTimers()
        assert timers.hold_s == 90.0
        assert timers.convergence_s == CONVERGENCE_DELAY_S
        assert timers.total_blackhole_s == 90.0 + CONVERGENCE_DELAY_S

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionTimers(hold_s=-1.0)
        with pytest.raises(ValueError):
            SessionTimers(convergence_s=-1.0)


class TestTimedFailover:
    def test_detection_waits_for_hold_timer(self):
        sim = Simulator()
        net = diamond()
        failover = TimedFailover(sim, net, SessionTimers(30.0, 60.0))
        failover.fail_session("origin", "left", at=10.0)
        sim.run(until=39.0)
        # Before detection the stale route is still best.
        assert net.best_path("sink", P).asns == (100,)
        sim.run(until=41.0)
        assert net.best_path("sink", P).asns == (200,)

    def test_convergence_callback_fires_late(self):
        sim = Simulator()
        net = diamond()
        converged = []
        failover = TimedFailover(
            sim,
            net,
            SessionTimers(30.0, 60.0),
            on_converged=lambda: converged.append(sim.now),
        )
        detected, converged_at = failover.fail_session("origin", "left", at=10.0)
        assert (detected, converged_at) == (40.0, 100.0)
        sim.run()
        assert converged == [100.0]
        assert failover.log[0][2:] == (10.0, 40.0, 100.0)

    def test_multiple_failures_logged(self):
        sim = Simulator()
        net = diamond()
        failover = TimedFailover(sim, net, SessionTimers(1.0, 1.0))
        failover.fail_session("origin", "left", at=0.0)
        failover.fail_session("sink", "right", at=10.0)
        sim.run()
        assert len(failover.log) == 2
        # After losing both left (at origin) and right (at sink), the
        # sink is cut off entirely.
        assert not net.reachable("sink", P)
