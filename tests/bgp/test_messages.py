"""Tests for message types and prefix normalization."""

import ipaddress

import pytest

from repro.bgp.attributes import AsPath, RouteAttributes
from repro.bgp.messages import Announcement, Withdrawal, as_prefix
from repro.bgp.poisoning import poison_targets, poisoned_attributes


class TestAsPrefix:
    def test_string_normalized(self):
        assert as_prefix("2001:db8::/32") == ipaddress.ip_network("2001:db8::/32")

    def test_network_passthrough(self):
        network = ipaddress.ip_network("10.0.0.0/8")
        assert as_prefix(network) is network

    def test_invalid_string_raises(self):
        with pytest.raises(ValueError):
            as_prefix("not-a-prefix")


class TestMessages:
    def test_announcement_renders_path(self):
        ann = Announcement(
            prefix=as_prefix("2001:db8::/48"),
            attributes=RouteAttributes(as_path=AsPath.of(1, 2)),
        )
        assert "1 2" in str(ann)

    def test_withdrawal_renders(self):
        assert "withdraw" in str(Withdrawal(as_prefix("2001:db8::/48")))

    def test_announcements_compare_by_value(self):
        a = Announcement(as_prefix("2001:db8::/48"), RouteAttributes())
        b = Announcement(as_prefix("2001:db8::/48"), RouteAttributes())
        assert a == b


class TestPoisoning:
    def test_targets_roundtrip(self):
        attrs = poisoned_attributes([174, 3356])
        assert poison_targets(attrs) == (174, 3356)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            poisoned_attributes([])

    def test_base_attributes_preserved(self):
        base = RouteAttributes(med=5)
        attrs = poisoned_attributes([1], base)
        assert attrs.med == 5
