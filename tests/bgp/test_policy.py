"""Tests for Gao–Rexford policy rules."""

import pytest

from repro.bgp.policy import (
    Relationship,
    default_local_pref,
    gao_rexford_allows_export,
    reject_prefixes,
)
from repro.bgp.attributes import RouteAttributes

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestRelationship:
    def test_inverse(self):
        assert C.inverse() is R
        assert R.inverse() is C
        assert P.inverse() is P


class TestLocalPref:
    def test_customer_routes_most_preferred(self):
        assert (
            default_local_pref(C)
            > default_local_pref(P)
            > default_local_pref(R)
        )


class TestValleyFree:
    @pytest.mark.parametrize(
        "learned_from,exporting_to,allowed",
        [
            (None, C, True),
            (None, P, True),
            (None, R, True),
            (C, C, True),
            (C, P, True),
            (C, R, True),
            (P, C, True),
            (P, P, False),
            (P, R, False),
            (R, C, True),
            (R, P, False),
            (R, R, False),
        ],
    )
    def test_export_matrix(self, learned_from, exporting_to, allowed):
        assert gao_rexford_allows_export(learned_from, exporting_to) is allowed

    def test_matrix_prevents_valley_paths(self):
        """Provider-learned never reaches another provider — the exact
        limitation that caps an edge network's path visibility."""
        assert not gao_rexford_allows_export(R, R)
        assert not gao_rexford_allows_export(R, P)


class TestPolicyHelpers:
    def test_reject_prefixes_filters(self):
        import ipaddress

        bad = ipaddress.ip_network("2001:db8:bad::/48")
        good = ipaddress.ip_network("2001:db8:a::/48")
        policy = reject_prefixes({bad})
        assert not policy("n", bad, RouteAttributes())
        assert policy("n", good, RouteAttributes())
