"""Tests for provider traffic-control community semantics."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.communities import (
    TrafficControlInterpreter,
    no_export_all,
    no_export_to,
    prepend_to,
)

VULTR = 20473
NTT = 2914
TELIA = 1299


def attrs(*large):
    return RouteAttributes().add_communities(large=large)


class TestConstructors:
    def test_no_export_to_encoding(self):
        community = no_export_to(VULTR, NTT)
        assert (community.global_admin, community.data1, community.data2) == (
            VULTR,
            6000,
            NTT,
        )

    def test_prepend_encoding(self):
        community = prepend_to(VULTR, NTT, 2)
        assert community.data1 == 6602
        assert community.data2 == NTT

    def test_prepend_count_bounds(self):
        with pytest.raises(ValueError):
            prepend_to(VULTR, NTT, 0)
        with pytest.raises(ValueError):
            prepend_to(VULTR, NTT, 4)


class TestInterpretation:
    def setup_method(self):
        self.interp = TrafficControlInterpreter(VULTR)

    def test_no_communities_allows_everything(self):
        action = self.interp.evaluate(attrs(), NTT)
        assert action.allow and action.prepend == 0

    def test_no_export_to_suppresses_only_target(self):
        route = attrs(no_export_to(VULTR, NTT))
        assert not self.interp.evaluate(route, NTT).allow
        assert self.interp.evaluate(route, TELIA).allow

    def test_multiple_suppressions_accumulate(self):
        route = attrs(no_export_to(VULTR, NTT), no_export_to(VULTR, TELIA))
        assert not self.interp.evaluate(route, NTT).allow
        assert not self.interp.evaluate(route, TELIA).allow
        assert self.interp.evaluate(route, 3257).allow

    def test_other_admins_communities_ignored(self):
        """Another provider's communities are transitive baggage."""
        route = attrs(no_export_to(3356, NTT))
        assert self.interp.evaluate(route, NTT).allow

    def test_no_export_all_blocks_transit_not_customers(self):
        route = attrs(no_export_all(VULTR))
        assert not self.interp.evaluate(route, NTT).allow
        assert self.interp.evaluate(route, 64512, target_is_customer=True).allow

    def test_prepend_to_target_only(self):
        route = attrs(prepend_to(VULTR, NTT, 3))
        assert self.interp.evaluate(route, NTT).prepend == 3
        assert self.interp.evaluate(route, TELIA).prepend == 0

    def test_largest_prepend_wins(self):
        route = attrs(prepend_to(VULTR, NTT, 1), prepend_to(VULTR, NTT, 3))
        assert self.interp.evaluate(route, NTT).prepend == 3

    def test_suppress_and_prepend_compose(self):
        route = attrs(no_export_to(VULTR, NTT), prepend_to(VULTR, TELIA, 2))
        assert not self.interp.evaluate(route, NTT).allow
        action = self.interp.evaluate(route, TELIA)
        assert action.allow and action.prepend == 2
