"""Tests for BGP path attributes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import (
    AsPath,
    Community,
    LargeCommunity,
    Origin,
    RouteAttributes,
    is_private_asn,
)

asns = st.integers(min_value=1, max_value=4_000_000_000)


class TestAsPath:
    def test_of_constructor(self):
        assert AsPath.of(2914, 20473).asns == (2914, 20473)

    def test_prepend_adds_to_front(self):
        path = AsPath.of(20473).prepend(2914)
        assert path.asns == (2914, 20473)

    def test_prepend_count(self):
        path = AsPath.of(20473).prepend(2914, count=3)
        assert path.asns == (2914, 2914, 2914, 20473)
        assert path.length == 4

    def test_prepend_zero_rejected(self):
        with pytest.raises(ValueError):
            AsPath().prepend(1, count=0)

    def test_contains_for_loop_detection(self):
        path = AsPath.of(1, 2, 3)
        assert path.contains(2)
        assert not path.contains(4)

    def test_strip_private_removes_rfc6996(self):
        path = AsPath.of(2914, 64512, 20473, 65534)
        assert path.strip_private().asns == (2914, 20473)

    def test_without_removes_all_occurrences(self):
        path = AsPath.of(20473, 2914, 20473)
        assert path.without(20473).asns == (2914,)

    def test_unique_collapses_prepending(self):
        path = AsPath.of(1, 1, 1, 2, 3, 3)
        assert path.unique_asns() == (1, 2, 3)

    def test_first_hop_and_origin(self):
        path = AsPath.of(2914, 174, 20473)
        assert path.first_hop == 2914
        assert path.origin_as == 20473

    def test_empty_path_edges(self):
        path = AsPath()
        assert path.first_hop is None
        assert path.origin_as is None
        assert path.length == 0
        assert str(path) == "<empty>"

    @given(st.lists(asns, max_size=10))
    @settings(max_examples=50)
    def test_prepend_then_strip_roundtrip(self, body):
        """Prepending a private ASN then stripping restores the path."""
        path = AsPath(tuple(a for a in body if not is_private_asn(a)))
        assert path.prepend(64512).strip_private() == path

    @given(st.lists(asns, max_size=10), asns)
    @settings(max_examples=50)
    def test_without_is_idempotent(self, body, target):
        path = AsPath(tuple(body))
        once = path.without(target)
        assert once.without(target) == once
        assert not once.contains(target)


class TestPrivateAsn:
    def test_boundaries(self):
        assert not is_private_asn(64511)
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(65535)


class TestCommunities:
    def test_community_renders(self):
        assert str(Community(20473, 6000)) == "20473:6000"

    def test_community_range_enforced(self):
        with pytest.raises(ValueError):
            Community(70000, 0)

    def test_large_community_renders(self):
        assert str(LargeCommunity(20473, 6000, 2914)) == "20473:6000:2914"

    def test_large_community_range_enforced(self):
        with pytest.raises(ValueError):
            LargeCommunity(2**32, 0, 0)

    def test_hashable_for_sets(self):
        assert len({Community(1, 2), Community(1, 2), Community(1, 3)}) == 2


class TestRouteAttributes:
    def test_defaults(self):
        attrs = RouteAttributes()
        assert attrs.local_pref == 100
        assert attrs.origin is Origin.IGP
        assert attrs.as_path.length == 0

    def test_with_path_is_non_destructive(self):
        attrs = RouteAttributes()
        updated = attrs.with_path(AsPath.of(1))
        assert attrs.as_path.length == 0
        assert updated.as_path.asns == (1,)

    def test_add_communities_unions(self):
        attrs = RouteAttributes(large_communities=frozenset({LargeCommunity(1, 2, 3)}))
        updated = attrs.add_communities(large=[LargeCommunity(4, 5, 6)])
        assert len(updated.large_communities) == 2
        assert len(attrs.large_communities) == 1

    def test_origin_preference_ordering(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE


class TestAsPathHashCaching:
    """AsPath caches its hash and length at construction (hot in RIB
    dict lookups); the cache must be indistinguishable from computing
    fresh."""

    @given(st.lists(asns, max_size=12))
    def test_cached_hash_matches_tuple_semantics(self, asn_list):
        path = AsPath(tuple(asn_list))
        clone = AsPath(tuple(asn_list))
        assert hash(path) == hash(clone)
        assert path == clone
        # Dict/set membership round-trips through the cached hash.
        assert path in {clone}

    @given(st.lists(asns, max_size=12))
    def test_cached_length_matches_asns(self, asn_list):
        path = AsPath(tuple(asn_list))
        assert len(path) == len(asn_list)
        assert path.length == len(asn_list)

    @given(st.lists(asns, min_size=1, max_size=10), asns)
    def test_derived_paths_recompute_their_cache(self, asn_list, new_asn):
        path = AsPath(tuple(asn_list))
        prepended = path.prepend(new_asn)
        assert prepended.length == path.length + 1
        assert hash(prepended) == hash(AsPath((new_asn, *asn_list)))
        stripped = prepended.without(new_asn)
        assert hash(stripped) == hash(AsPath(tuple(a for a in asn_list if a != new_asn)))

    def test_unequal_paths_compare_unequal(self):
        assert AsPath.of(2914, 20473) != AsPath.of(20473, 2914)
        assert hash(AsPath.of()) == hash(AsPath(()))
