"""Tests for topology construction and convergence."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.communities import no_export_to
from repro.bgp.network import BgpNetwork
from repro.bgp.poisoning import poisoned_attributes
from repro.bgp.router import BgpRouter

P = "2001:db8:1::/48"


def linear_chain():
    """stub -- provider -- transit (stub originates)."""
    net = BgpNetwork()
    net.add_router(BgpRouter("stub", 65001))
    net.add_router(BgpRouter("provider", 100))
    net.add_router(BgpRouter("transit", 200))
    net.add_provider("stub", "provider")
    net.add_provider("provider", "transit")
    return net


def diamond():
    """origin -- {left, right} -- sink: two provider paths."""
    net = BgpNetwork()
    for name, asn in (
        ("origin", 65001),
        ("left", 100),
        ("right", 200),
        ("sink", 65002),
    ):
        net.add_router(BgpRouter(name, asn))
    net.add_provider("origin", "left", customer_preference=1)
    net.add_provider("origin", "right", customer_preference=2)
    net.add_provider("sink", "left", customer_preference=1)
    net.add_provider("sink", "right", customer_preference=2)
    return net


class TestConstruction:
    def test_duplicate_router_rejected(self):
        net = BgpNetwork()
        net.add_router(BgpRouter("a", 1))
        with pytest.raises(ValueError):
            net.add_router(BgpRouter("a", 2))

    def test_connect_registers_both_sides(self):
        net = linear_chain()
        assert "provider" in net.router("stub").neighbors
        assert "stub" in net.router("provider").neighbors
        rel = net.router("provider").neighbors["stub"].relationship
        assert rel.value == "customer"

    def test_unknown_router_lookup(self):
        with pytest.raises(KeyError):
            BgpNetwork().router("ghost")


class TestPropagation:
    def test_origination_reaches_everyone_upstream(self):
        net = linear_chain()
        net.router("stub").originate(P)
        net.converge()
        assert net.best_path("provider", P).asns == (65001,)
        # 65001 is an RFC 6996 private ASN: the provider strips it on
        # export, exactly as Vultr does for its BGP tenants.
        assert net.best_path("transit", P).asns == (100,)

    def test_withdrawal_propagates(self):
        net = linear_chain()
        net.router("stub").originate(P)
        net.converge()
        net.router("stub").withdraw_origination(P)
        net.converge()
        assert not net.reachable("transit", P)
        assert not net.reachable("provider", P)

    def test_diamond_prefers_operator_choice(self):
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        assert net.best_path("sink", P).asns == (100,)

    def test_suppression_shifts_to_alternate(self):
        net = diamond()
        origin = net.router("origin")
        origin.originate(P)
        net.converge()
        # Suppress the left provider's export path via community.
        # The community targets *origin's provider* relationship: tell
        # left (asn 100) not to export to sink?  In the diamond, origin
        # itself attaches no-export for its own session: model Vultr by
        # having origin tell provider-left nothing; instead re-originate
        # suppressing left at the origin side.
        origin.originate(
            P,
            RouteAttributes().add_communities(large=[no_export_to(100, 65002)]),
        )
        net.converge()
        assert net.best_path("sink", P).asns == (200,)

    def test_convergence_is_idempotent(self):
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        assert net.converge() == 1  # nothing changes in the first wave

    def test_valley_free_blocks_peer_transit(self):
        """A route learned from one peer never reaches another peer."""
        net = BgpNetwork()
        for name, asn in (("a", 1), ("b", 2), ("c", 3)):
            net.add_router(BgpRouter(name, asn))
        net.add_peering("a", "b")
        net.add_peering("b", "c")
        net.router("a").originate(P)
        net.converge()
        assert net.reachable("b", P)
        assert not net.reachable("c", P)

    def test_poisoned_announcement_avoids_target(self):
        net = diamond()
        # Poison the left provider: it must drop the route.
        net.router("origin").originate(P, poisoned_attributes([100]))
        net.converge()
        assert net.best_path("sink", P).asns == (200, 100)

    def test_routers_originating_query(self):
        net = diamond()
        net.router("origin").originate(P)
        assert net.routers_originating(P) == ["origin"]


class TestSharedAsn:
    def test_allowas_in_pair_hears_each_other(self):
        """Two routers with the same ASN (the two Vultr DCs) exchange
        tenant prefixes across the core thanks to allowas-in."""
        net = BgpNetwork()
        net.add_router(BgpRouter("dc1", 20473, allowas_in=True))
        net.add_router(BgpRouter("dc2", 20473, allowas_in=True))
        net.add_router(BgpRouter("transit", 2914))
        net.add_provider("dc1", "transit")
        net.add_provider("dc2", "transit")
        net.router("dc1").originate(P)
        net.converge()
        assert net.best_path("dc2", P).asns == (2914, 20473)

    def test_without_allowas_in_the_route_is_dropped(self):
        net = BgpNetwork()
        net.add_router(BgpRouter("dc1", 20473))
        net.add_router(BgpRouter("dc2", 20473))
        net.add_router(BgpRouter("transit", 2914))
        net.add_provider("dc1", "transit")
        net.add_provider("dc2", "transit")
        net.router("dc1").originate(P)
        net.converge()
        assert not net.reachable("dc2", P)


class TestDisconnect:
    def test_disconnect_withdraws_routes(self):
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        assert net.best_path("sink", P).asns == (100,)
        net.disconnect("origin", "left")
        net.converge()
        assert net.best_path("sink", P).asns == (200,)

    def test_disconnect_unknown_session_raises(self):
        net = diamond()
        with pytest.raises(KeyError, match="no session"):
            net.disconnect("origin", "sink")

    def test_reconnect_restores(self):
        from repro.bgp.policy import Relationship

        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        net.disconnect("origin", "left")
        net.converge()
        net.connect("origin", "left", Relationship.PROVIDER, a_preference=1)
        net.converge()
        assert net.best_path("sink", P).asns == (100,)


class TestSessionConfig:
    def test_roundtrip_in_connect_orientation(self):
        from repro.bgp.policy import Relationship

        net = diamond()
        config = net.session_config("origin", "left")
        assert config == ("origin", "left", Relationship.PROVIDER, 1, None)

    def test_reversed_lookup_normalizes_to_connect_orientation(self):
        net = diamond()
        assert net.session_config("left", "origin") == net.session_config(
            "origin", "left"
        )

    def test_unknown_session_raises(self):
        net = diamond()
        with pytest.raises(KeyError, match="no session"):
            net.session_config("origin", "sink")

    def test_splat_reconnects_identically(self):
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        config = net.session_config("origin", "left")
        net.disconnect("origin", "left")
        net.converge()
        net.connect(*config)
        net.converge()
        assert net.best_path("sink", P).asns == (100,)
        assert net.session_config("origin", "left") == config


class TestResetSession:
    def test_reset_restores_routing(self):
        net = diamond()
        net.router("origin").originate(P)
        net.converge()
        before = net.best_path("sink", P).asns
        down_rounds, up_rounds = net.reset_session("origin", "left")
        assert down_rounds >= 1 and up_rounds >= 1
        assert net.best_path("sink", P).asns == before

    def test_reset_unknown_session_raises(self):
        net = diamond()
        with pytest.raises(KeyError, match="no session"):
            net.reset_session("origin", "sink")


class TestResetSessionEngines:
    """reset_session rides whichever engine is active; the incremental
    engine reports how far each ripple travelled, not full-scan rounds."""

    @staticmethod
    def _vultr_with_routes(engine):
        from repro.scenarios.vultr import build_bgp_network

        net = build_bgp_network()
        net.use_engine(engine)
        net.router("tango-la").originate("2001:db8:a0::/48")
        net.router("tango-ny").originate("2001:db8:b0::/48")
        net.converge()
        return net

    def test_incremental_counts_are_accurate_waves(self):
        from repro.bgp.network import ENGINE_INCREMENTAL, ENGINE_ROUNDS

        legacy = self._vultr_with_routes(ENGINE_ROUNDS)
        incremental = self._vultr_with_routes(ENGINE_INCREMENTAL)
        legacy_down, legacy_up = legacy.reset_session("vultr-ny", "ntt")
        incr_down, incr_up = incremental.reset_session("vultr-ny", "ntt")
        # Both engines count real waves plus the fixpoint-verification
        # wave, so a reset that moved routes reports at least 2.
        assert legacy_down >= 2 and legacy_up >= 2
        assert incr_down >= 2 and incr_up >= 2
        # The incremental count is hop-accurate: one wave per ripple
        # hop.  A legacy round can collapse several hops when router
        # insertion order happens to align with the topology (a message
        # delivered to a later-scanned router is processed in the same
        # round), so the counts may differ by the collapsed hops — but
        # never by more than the ripple depth itself.
        assert abs(incr_down - legacy_down) <= legacy_down
        assert abs(incr_up - legacy_up) <= legacy_up
        assert (incr_down, incr_up) == (4, 5)  # pinned: hop-accurate depth

    def test_engines_agree_on_post_reset_routes(self):
        from repro.bgp.network import ENGINE_INCREMENTAL, ENGINE_ROUNDS

        legacy = self._vultr_with_routes(ENGINE_ROUNDS)
        incremental = self._vultr_with_routes(ENGINE_INCREMENTAL)
        legacy.reset_session("vultr-ny", "ntt")
        incremental.reset_session("vultr-ny", "ntt")
        for name in sorted(legacy.routers):
            assert (
                legacy.routers[name].loc_rib.snapshot()
                == incremental.routers[name].loc_rib.snapshot()
            ), name

    def test_reset_on_incremental_engine_restores_reachability(self):
        from repro.bgp.network import ENGINE_INCREMENTAL

        net = self._vultr_with_routes(ENGINE_INCREMENTAL)
        before = net.best_path("tango-ny", "2001:db8:a0::/48").asns
        down, up = net.reset_session("vultr-la", "ntt")
        assert down >= 1 and up >= 1
        assert net.best_path("tango-ny", "2001:db8:a0::/48").asns == before
