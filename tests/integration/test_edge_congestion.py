"""Integration: edge-network congestion vs measurement purity.

Section 2.1's first challenge: "end-to-end performance measurements are
often dominated by problems in the edge network".  We congest the NY
access uplink (a finite-bandwidth queued link) and verify:

* application end-to-end latency inflates by the self-queueing delay —
  an end-host prober would blame the wide area;
* Tango's one-way delays, timestamped at the border switch, do not move.
"""

import numpy as np
import pytest

from repro.netsim.queueing import QueuedLink
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment


def build_congested_deployment(rate_bps):
    deployment = VultrDeployment(include_events=False)
    deployment.establish()
    # Replace the NY access uplink with a skinny queued link.
    old = deployment.net.links["host-ny->gw-ny"]
    queued = QueuedLink(
        old.name,
        old.src,
        old.dst,
        delay=old.delay,
        bandwidth_bps=rate_bps,
        buffer_bytes=512 * 1024,
    )
    deployment.net.links[old.name] = queued
    return deployment, queued


class TestEdgeCongestion:
    def test_congestion_inflates_app_latency_not_tango_owd(self):
        # 124-byte probes every 2 ms ≈ 496 kbit/s offered; a 600 kbit/s
        # uplink is near saturation, so queueing delay builds.
        deployment, uplink = build_congested_deployment(rate_bps=600_000.0)
        deployment.start_path_probes("ny", interval_s=0.002)

        factory = PacketFactory(
            src=str(deployment.pairing.a.host_address(8)),
            dst=str(deployment.pairing.b.host_address(8)),
            flow_label=4,
            payload_bytes=64,
        )
        send = deployment.sender_for("ny")
        app_latencies = []

        def on_delivery(packet, now):
            if packet.flow_label == 4:
                app_latencies.append(now - packet.meta["sent"])

        deployment.host_la._on_packet = on_delivery

        def emit():
            packet = factory.build()
            packet.meta["sent"] = deployment.sim.now
            send(packet)

        deployment.sim.call_every(0.05, emit)
        deployment.net.run(until=4.0)

        assert uplink.max_backlog_bytes > 0  # the queue really built up
        app = np.asarray(app_latencies)
        # End-to-end latency far exceeds the WAN floor: edge queueing.
        assert float(np.percentile(app, 90)) > 0.040

        # Tango's border-to-border measurement is untouched: GTT still
        # reads its clean ~28 ms (+ offset), tight spread.
        gtt = deployment.gateway_la.inbound.series(2).values
        offset = deployment.clock_offset_delta("ny")
        assert float(np.mean(gtt)) - offset == pytest.approx(0.0282, abs=5e-4)
        assert float(np.std(gtt)) < 3e-4

    def test_uncongested_control(self):
        deployment, uplink = build_congested_deployment(rate_bps=100e6)
        deployment.start_path_probes("ny", interval_s=0.002)
        deployment.net.run(until=2.0)
        # The four probe streams fire simultaneously, so a couple of
        # packets serialize behind each other even on a fat link — but
        # no sustained backlog forms.
        assert uplink.max_backlog_bytes < 1000
        assert uplink.dropped_queue == 0
        gtt = deployment.gateway_la.inbound.series(2).values
        offset = deployment.clock_offset_delta("ny")
        assert float(np.mean(gtt)) - offset == pytest.approx(0.0282, abs=5e-4)
