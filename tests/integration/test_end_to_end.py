"""Integration tests: the full Tango pipeline, end to end.

Each test drives the complete stack — BGP establishment, packet-level
data plane, telemetry mirroring, adaptive policies — and asserts a
paper-level behaviour, not a unit property.
"""

import numpy as np
import pytest

from repro.core.policy import LowestDelaySelector, StaticSelector
from repro.netsim.delaymodels import AsymmetryEvent
from repro.netsim.trace import PacketFactory
from repro.scenarios.vultr import VultrDeployment


def data_stream(deployment, src, count, flow=5, gap=0.01, start=0.0):
    """Send `count` packets from src's host, spaced `gap` apart."""
    dst = "la" if src == "ny" else "ny"
    factory = PacketFactory(
        src=str(deployment.pairing.edge(src).host_address(7)),
        dst=str(deployment.pairing.edge(dst).host_address(7)),
        flow_label=flow,
    )
    send = deployment.sender_for(src)
    for i in range(count):
        deployment.sim.schedule_at(
            start + i * gap, lambda f=factory: send(f.build())
        )


class TestFullPipeline:
    def test_establish_probe_measure_adapt(self):
        """The complete Tango story in one run: establish, measure all
        four paths, and watch an adaptive policy outperform the default."""
        d = VultrDeployment(include_events=False)
        d.establish()
        d.start_path_probes("ny", interval_s=0.02)
        # Adaptive data policy fed by mirrored measurements.
        adaptive = LowestDelaySelector(d.gateway_ny.outbound, window_s=1.0)
        d.set_data_policy("ny", adaptive)
        data_stream(d, "ny", count=100, gap=0.02, start=2.0)
        d.net.run(until=5.0)
        delivered = [
            p for p in d.host_la.received_packets if p.flow_label == 5
        ]
        assert len(delivered) == 100
        # After warm-up, data rides GTT (path 2) — the best NY→LA path.
        on_gtt = [p for p in delivered if p.meta["tango_path_id"] == 2]
        assert len(on_gtt) > 90

    def test_one_way_delays_exclude_edge_noise(self):
        """Tango's border placement: measured OWD reflects only the
        wide-area segment, not the noisy host-side links."""
        d = VultrDeployment(include_events=False)
        d.establish()
        d.start_path_probes("ny", interval_s=0.02)
        d.net.run(until=3.0)
        gtt = d.gateway_la.inbound.series(2).values
        offset = d.clock_offset_delta("ny")
        # GTT base 28.05 ms, sigma 0.03 ms (+ diurnal ≤ 0.3 ms): if edge
        # noise (0.6 ± 0.35 ms per crossing) leaked in, the spread would
        # be an order of magnitude wider.
        spread = float(np.std(gtt))
        assert spread < 2e-4
        assert float(np.mean(gtt)) - offset == pytest.approx(0.0282, abs=5e-4)

    def test_measured_owds_are_offset_distorted_but_rankable(self):
        d = VultrDeployment(include_events=False)
        d.establish()
        d.start_path_probes("ny", interval_s=0.02)
        d.net.run(until=2.0)
        inbound = d.gateway_la.inbound
        means = {p: float(np.mean(inbound.series(p).values)) for p in range(4)}
        offset = d.clock_offset_delta("ny")
        assert offset != 0.0
        # Ranking: GTT < Telia < NTT < Level3 regardless of offset.
        ranked = sorted(means, key=means.get)
        assert ranked == [2, 1, 0, 3]

    def test_loss_and_reordering_seen_by_tracker(self):
        d = VultrDeployment(
            include_events=False, instability_loss=0.0
        )
        d.establish()
        d.start_path_probes("ny", interval_s=0.02)
        d.net.run(until=2.0)
        stats = d.gateway_la.tracker.all_paths()
        assert set(stats) == {0, 1, 2, 3}
        for s in stats.values():
            assert s.received > 90
            assert s.presumed_lost == 0  # lossless steady state


class TestAuthenticatedTelemetry:
    def test_auth_enabled_end_to_end(self):
        d = VultrDeployment(include_events=False, auth_key=b"q" * 16)
        d.establish()
        d.start_path_probes("ny", interval_s=0.05)
        d.net.run(until=1.0)
        assert d.gateway_la.receiver.rejected_auth == 0
        assert d.gateway_la.inbound.path_ids() == [0, 1, 2, 3]
        assert d.gateway_la.authenticator.stats.verified > 0


class TestAsymmetricEvent:
    def test_one_way_measurement_sees_directional_shift(self):
        """Inject a forward-only +20 ms event on GTT; the NY→LA inbound
        store sees it, while the reverse direction stays clean — the
        capability RTT probing fundamentally lacks (E7)."""
        d = VultrDeployment(include_events=False)
        d.establish()
        # Patch the NY→LA GTT link with an asymmetric event.
        link = d.net.links["ny->la:GTT"]
        link.delay = link.delay.with_event(
            AsymmetryEvent(start=1.0, duration=2.0, shift=0.020)
        )
        d.start_path_probes("ny", interval_s=0.02)
        d.start_path_probes("la", interval_s=0.02)
        d.net.run(until=4.0)
        fwd = d.gateway_la.inbound.series(2)
        inside = fwd.window(1.2, 2.8)[1]
        outside = fwd.window(0.2, 0.9)[1]
        assert float(np.mean(inside)) - float(np.mean(outside)) == pytest.approx(
            0.020, abs=1e-3
        )
        rev = d.gateway_ny.inbound.series(64 + 2)
        rev_inside = rev.window(1.2, 2.8)[1]
        rev_outside = rev.window(0.2, 0.9)[1]
        assert float(np.mean(rev_inside)) == pytest.approx(
            float(np.mean(rev_outside)), abs=1e-3
        )


class TestApplicationPinning:
    def test_two_apps_ride_different_paths(self):
        """'Distinct routes for different applications' (Section 3)."""
        from repro.core.policy import ApplicationSelector

        d = VultrDeployment(include_events=False)
        d.establish()
        selector = ApplicationSelector(
            default=StaticSelector(0),
            classes={10: StaticSelector(2), 11: StaticSelector(1)},
        )
        d.gateway_ny.set_selector(selector)
        data_stream(d, "ny", count=20, flow=10)
        data_stream(d, "ny", count=20, flow=11)
        d.net.run(until=2.0)
        by_flow = {}
        for p in d.host_la.received_packets:
            by_flow.setdefault(p.flow_label, set()).add(
                p.meta["tango_path_id"]
            )
        assert by_flow[10] == {2}
        assert by_flow[11] == {1}
