"""Diversity scoring, disjoint-backup choice, and the fate-aware wrapper."""

import ipaddress

import pytest

from repro.core.tunnels import TangoTunnel
from repro.srlg import (
    FateAwareSelector,
    SrlgRegistry,
    diversity_penalty,
    max_disjoint_backup,
    select_diverse,
    shared_risk,
)


def tun(path_id, *groups):
    return TangoTunnel(
        path_id=path_id,
        label=f"path-{path_id}",
        local_endpoint=ipaddress.IPv6Address("2001:db8::1"),
        remote_endpoint=ipaddress.IPv6Address(f"2001:db8::{path_id + 2:x}"),
        remote_prefix=ipaddress.IPv6Network("2001:db8:100::/48"),
        short_label=f"P{path_id}",
        srlgs=frozenset(groups),
    )


class TestScoring:
    def test_shared_risk(self):
        assert shared_risk(tun(0, "a", "b"), tun(1, "b", "c")) == frozenset({"b"})
        assert shared_risk(tun(0, "a"), tun(1, "c")) == frozenset()

    def test_penalty_sums_unordered_pairs(self):
        tunnels = [tun(0, "conduit"), tun(1, "conduit"), tun(2, "other")]
        # Only the (0, 1) pair shares a group.
        assert diversity_penalty(tunnels) == 1

    def test_untagged_sets_score_zero(self):
        assert diversity_penalty([tun(0), tun(1), tun(2)]) == 0

    def test_penalty_order_independent(self):
        tunnels = [tun(0, "a", "b"), tun(1, "b"), tun(2, "a")]
        assert diversity_penalty(tunnels) == diversity_penalty(tunnels[::-1])


class TestBackup:
    def test_prefers_fewest_shared_groups(self):
        primary = tun(0, "conduit", "transit:X")
        sharing = tun(1, "conduit")
        disjoint = tun(2, "other")
        assert max_disjoint_backup(primary, [primary, sharing, disjoint]) is disjoint

    def test_ties_break_on_lowest_path_id(self):
        primary = tun(5, "conduit")
        assert max_disjoint_backup(primary, [tun(2), tun(1), primary]).path_id == 1

    def test_no_candidates_returns_none(self):
        primary = tun(0, "g")
        assert max_disjoint_backup(primary, [primary]) is None
        assert max_disjoint_backup(primary, []) is None


class TestSelectDiverse:
    def test_greedy_picks_disjoint_first(self):
        tunnels = [tun(0, "conduit"), tun(1, "conduit"), tun(2, "other")]
        picked = select_diverse(tunnels, 2)
        assert [t.path_id for t in picked] == [0, 2]

    def test_deterministic_under_input_order(self):
        tunnels = [tun(2, "b"), tun(0, "a"), tun(1, "a")]
        assert [t.path_id for t in select_diverse(tunnels, 3)] == [
            t.path_id for t in select_diverse(tunnels[::-1], 3)
        ]

    def test_count_validated(self):
        with pytest.raises(ValueError):
            select_diverse([tun(0)], 0)


class FirstSelector:
    """Deterministic stand-in for the inner measurement policy."""

    def __init__(self):
        self.store = "inner-store"
        self.calls = 0

    def select(self, tunnels, packet, now):
        self.calls += 1
        return tunnels[0]


class TestFateAwareSelector:
    def setup_method(self):
        self.registry = SrlgRegistry()
        self.registry.tag_link("l", "conduit")
        self.inner = FirstSelector()
        self.selector = FateAwareSelector(self.inner, self.registry)
        self.tunnels = [tun(0, "conduit"), tun(1, "backbone"), tun(2, "conduit")]

    def test_passthrough_when_all_groups_up(self):
        chosen = self.selector.select(self.tunnels, None, 1.0)
        assert chosen.path_id == 0
        assert self.selector.filtered == 0
        assert self.selector.last_choice == 0

    def test_filters_unavailable_groups(self):
        self.registry.mark_down("conduit")
        chosen = self.selector.select(self.tunnels, None, 1.0)
        assert chosen.path_id == 1
        assert self.selector.filtered == 1

    def test_draining_also_filtered(self):
        self.registry.mark_draining("conduit")
        assert self.selector.select(self.tunnels, None, 1.0).path_id == 1

    def test_full_set_passes_through_when_filter_would_empty(self):
        self.registry.mark_down("conduit")
        self.registry.tag_link("l2", "backbone")
        self.registry.mark_down("backbone")
        chosen = self.selector.select(self.tunnels, None, 1.0)
        assert chosen.path_id == 0  # inner policy over the full set
        assert self.selector.filtered == 0

    def test_pin_wins_over_inner_policy(self):
        self.selector.pin(2)
        chosen = self.selector.select(self.tunnels, None, 1.0)
        assert chosen.path_id == 2
        assert self.selector.pin_hits == 1
        assert self.inner.calls == 0
        self.selector.release()
        assert self.selector.select(self.tunnels, None, 1.0).path_id == 0

    def test_pinned_tunnel_must_survive_the_filter(self):
        self.selector.pin(2)  # pinned tunnel shares the dead conduit
        self.registry.mark_down("conduit")
        chosen = self.selector.select(self.tunnels, None, 1.0)
        assert chosen.path_id == 1
        assert self.selector.pin_hits == 0

    def test_store_delegates_to_inner(self):
        assert self.selector.store == "inner-store"
        self.selector.store = "swapped"
        assert self.inner.store == "swapped"
