"""SrlgRegistry: tagging, refcounted group state, regions, epochs."""

import pytest

from repro.srlg import Region, SrlgRegistry


class TestTagging:
    def test_link_tags_merge_additively(self):
        reg = SrlgRegistry()
        reg.tag_link("wan:ny->la:GTT", "socal-conduit")
        reg.tag_link("wan:ny->la:GTT", "transit:GTT")
        assert reg.groups_for_link("wan:ny->la:GTT") == frozenset(
            {"socal-conduit", "transit:GTT"}
        )

    def test_untagged_link_has_no_groups(self):
        reg = SrlgRegistry()
        assert reg.groups_for_link("wan:whatever") == frozenset()

    def test_link_members_sorted(self):
        reg = SrlgRegistry()
        reg.tag_link("b", "g")
        reg.tag_link("a", "g")
        assert reg.link_members("g") == ("a", "b")

    def test_node_tags(self):
        reg = SrlgRegistry()
        reg.tag_node("gtt", "socal-conduit")
        reg.tag_node("telia", "socal-conduit")
        assert reg.node_members("socal-conduit") == ("gtt", "telia")

    def test_groups_enumerates_known(self):
        reg = SrlgRegistry()
        reg.tag_link("l", "b-group")
        reg.tag_node("n", "a-group")
        assert reg.groups() == ("a-group", "b-group")


class TestGroupState:
    def test_down_is_refcounted(self):
        reg = SrlgRegistry()
        reg.tag_link("l", "g")
        reg.mark_down("g")
        reg.mark_down("g")
        reg.clear_down("g")
        assert reg.state("g") == "down"
        reg.clear_down("g")
        assert reg.state("g") == "up"

    def test_clear_without_mark_raises(self):
        reg = SrlgRegistry()
        reg.tag_link("l", "g")
        with pytest.raises(ValueError):
            reg.clear_down("g")
        with pytest.raises(ValueError):
            reg.clear_draining("g")

    def test_down_dominates_draining(self):
        reg = SrlgRegistry()
        reg.tag_link("l", "g")
        reg.mark_draining("g")
        assert reg.state("g") == "draining"
        reg.mark_down("g")
        assert reg.state("g") == "down"
        reg.clear_down("g")
        assert reg.state("g") == "draining"

    def test_down_and_unavailable_sets(self):
        reg = SrlgRegistry()
        reg.tag_link("l", "down-g")
        reg.tag_link("l", "drain-g")
        reg.mark_down("down-g")
        reg.mark_draining("drain-g")
        assert reg.down_groups() == frozenset({"down-g"})
        assert reg.unavailable_groups() == frozenset({"down-g", "drain-g"})

    def test_epoch_moves_only_on_state_transitions(self):
        reg = SrlgRegistry()
        reg.tag_link("l", "g")
        start = reg.epoch
        reg.mark_down("g")
        after_first = reg.epoch
        assert after_first == start + 1
        reg.mark_down("g")  # refcount 1 -> 2: no observable change
        assert reg.epoch == after_first
        reg.clear_down("g")  # 2 -> 1: still down
        assert reg.epoch == after_first
        reg.clear_down("g")  # 1 -> 0: transition
        assert reg.epoch == after_first + 1


class TestRegions:
    def test_add_and_lookup(self):
        reg = SrlgRegistry()
        region = Region("socal", routers=("gtt", "telia"), groups=("conduit",))
        reg.add_region(region)
        assert reg.region("socal") is region
        assert reg.regions() == ("socal",)

    def test_duplicate_region_rejected(self):
        reg = SrlgRegistry()
        reg.add_region(Region("socal", routers=("gtt",)))
        with pytest.raises(ValueError):
            reg.add_region(Region("socal", routers=("telia",)))

    def test_unknown_region_lists_known(self):
        reg = SrlgRegistry()
        reg.add_region(Region("socal", routers=("gtt",)))
        with pytest.raises(LookupError, match="socal"):
            reg.region("mars")

    def test_region_requires_name_and_members(self):
        with pytest.raises(ValueError):
            Region("")
        with pytest.raises(ValueError):
            Region("empty")
