"""FastReroute: precomputed backups, make-before-break pin, release."""

import ipaddress

from repro.core.tunnels import TangoTunnel
from repro.srlg import FastReroute, FateAwareSelector, SrlgRegistry


def tun(path_id, *groups):
    return TangoTunnel(
        path_id=path_id,
        label=f"path-{path_id}",
        local_endpoint=ipaddress.IPv6Address("2001:db8::1"),
        remote_endpoint=ipaddress.IPv6Address(f"2001:db8::{path_id + 2:x}"),
        remote_prefix=ipaddress.IPv6Network("2001:db8:100::/48"),
        short_label=f"P{path_id}",
        srlgs=frozenset(groups),
    )


class FakeTable:
    def __init__(self, tunnels):
        self._tunnels = tunnels

    def all_tunnels(self):
        return list(self._tunnels)


class FakeGateway:
    def __init__(self, tunnels):
        self.tunnel_table = FakeTable(tunnels)


class FirstSelector:
    def __init__(self):
        self.store = None

    def select(self, tunnels, packet, now):
        return tunnels[0]


def make_frr(tunnels):
    registry = SrlgRegistry()
    for tunnel in tunnels:
        for group in tunnel.srlgs:
            registry.tag_link(f"wan:{tunnel.short_label}", group)
    selector = FateAwareSelector(FirstSelector(), registry)
    frr = FastReroute(FakeGateway(tunnels), registry, selector)
    return registry, selector, frr


class TestBackupTable:
    def test_precomputed_at_init(self):
        tunnels = [tun(0, "conduit"), tun(1, "conduit"), tun(2, "backbone")]
        _, _, frr = make_frr(tunnels)
        # Both conduit tunnels back up onto the disjoint backbone path.
        assert frr.backup_of(0) == 2
        assert frr.backup_of(1) == 2
        assert frr.backup_of(2) == 0  # tie among conduit pair -> lowest id

    def test_loss_of_disjointness_repairs_table(self):
        tunnels = [tun(0, "conduit"), tun(1, "backbone"), tun(2, "grid")]
        registry, _, frr = make_frr(tunnels)
        assert frr.backup_of(0) == 1
        registry.mark_down("backbone")
        frr.tick(1.0)
        # The precomputed backup's group failed: repair to the grid path.
        assert frr.backup_of(0) == 2


class TestSwitchover:
    def test_make_before_break_pins_backup(self):
        tunnels = [tun(0, "conduit"), tun(1, "conduit"), tun(2, "backbone")]
        registry, selector, frr = make_frr(tunnels)
        selector.select(tunnels, None, 0.5)  # riding path 0
        registry.mark_down("conduit")
        frr.tick(1.0)
        assert selector.pinned == 2
        assert frr.switchovers == 1
        actions = [e.action for e in frr.log]
        assert "switchover" in actions
        assert selector.select(tunnels, None, 1.1).path_id == 2

    def test_quiet_epoch_is_noop(self):
        tunnels = [tun(0, "conduit"), tun(1, "backbone")]
        registry, selector, frr = make_frr(tunnels)
        selector.select(tunnels, None, 0.5)
        frr.tick(1.0)
        log_len = len(frr.log)
        frr.tick(2.0)  # epoch unchanged -> nothing appended
        assert len(frr.log) == log_len

    def test_no_switchover_when_current_unaffected(self):
        tunnels = [tun(0, "conduit"), tun(1, "backbone")]
        registry, selector, frr = make_frr(tunnels)
        selector.select(tunnels, None, 0.5)  # riding path 0
        registry.mark_down("backbone")
        frr.tick(1.0)
        assert selector.pinned is None
        assert frr.switchovers == 0

    def test_release_when_primary_group_recovers(self):
        tunnels = [tun(0, "conduit"), tun(1, "conduit"), tun(2, "backbone")]
        registry, selector, frr = make_frr(tunnels)
        selector.select(tunnels, None, 0.5)
        registry.mark_down("conduit")
        frr.tick(1.0)
        assert selector.pinned == 2
        registry.clear_down("conduit")
        frr.tick(5.0)
        assert selector.pinned is None
        assert frr.log[-1].action == "release"

    def test_draining_triggers_early_switch(self):
        # Maintenance semantics: draining counts as unavailable, so the
        # pin lands while the primary still forwards (zero-loss switch).
        tunnels = [tun(0, "conduit"), tun(1, "backbone")]
        registry, selector, frr = make_frr(tunnels)
        selector.select(tunnels, None, 0.5)
        registry.mark_draining("conduit")
        frr.tick(1.0)
        assert selector.pinned == 1
        assert frr.switchovers == 1
