"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.direction == "ny"
        assert args.start_hour == 25.0


class TestCommands:
    def test_discover_prints_figure3(self, capsys):
        assert main(["discover"]) == 0
        out = capsys.readouterr().out
        assert "LA -> NY" in out
        assert "NTT Cogent" in out
        assert "20473:6000:2914" in out

    def test_campaign_prints_stats(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--hours",
                    "0.02",
                    "--interval",
                    "0.1",
                    "--no-events",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "GTT" in out
        assert "mean_ms" in out

    def test_mesh_prints_sweep(self, capsys):
        assert main(["mesh", "--max-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "Tango of N" in out

    def test_failover_reports_recovery(self, capsys):
        assert main(["failover", "--fail-at", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "tango recovered" in out
        assert "BGP convergence" in out


class TestFaults:
    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["faults", "run"])
        assert args.faults_command == "run"
        assert args.plan is None
        assert args.seed is None
        assert args.duration is None
        assert not args.transitions

    def test_sample_plan_roundtrips(self, capsys):
        from repro.faults import FaultPlan

        assert main(["faults", "sample-plan"]) == 0
        out = capsys.readouterr().out
        plan = FaultPlan.from_json(out)
        assert plan.name == "blackhole-demo"
        assert len(plan.events) == 3

    def test_run_parses_resilient_flag(self):
        args = build_parser().parse_args(["faults", "run", "--resilient"])
        assert args.resilient


class TestFaultsRunBadPlan:
    """Malformed plans must exit non-zero with a message, not traceback."""

    def test_invalid_json_plan(self, tmp_path, capsys):
        plan = tmp_path / "broken.json"
        plan.write_text("{not json", encoding="utf-8")
        assert main(["faults", "run", "--plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "invalid fault plan" in err
        assert "Traceback" not in err

    def test_unknown_fault_kind(self, tmp_path, capsys):
        plan = tmp_path / "unknown-kind.json"
        plan.write_text(
            '{"name": "bad", "events": [{"kind": "meteor_strike", "at": 1.0}]}',
            encoding="utf-8",
        )
        assert main(["faults", "run", "--plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "meteor_strike" in err

    def test_missing_required_params(self, tmp_path, capsys):
        plan = tmp_path / "missing-params.json"
        plan.write_text(
            '{"name": "bad", "events": '
            '[{"kind": "link_blackhole", "at": 1.0, "duration": 2.0}]}',
            encoding="utf-8",
        )
        assert main(["faults", "run", "--plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "missing parameter" in err

    def test_unreadable_plan_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["faults", "run", "--plan", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "cannot read fault plan" in err

    def test_error_names_the_offending_event_index(self, tmp_path, capsys):
        """A 40-event plan with one bad event must say *which* one."""
        plan = tmp_path / "bad-second-event.json"
        plan.write_text(
            '{"name": "bad", "events": ['
            '{"kind": "link_blackhole", "at": 1.0, "duration": 2.0,'
            ' "src": "ny", "path": "GTT"},'
            '{"kind": "gray_loss", "at": 3.0, "duration": 2.0,'
            ' "src": "ny", "path": "GTT"}]}',
            encoding="utf-8",
        )
        assert main(["faults", "run", "--plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "event #1:" in err
        assert "missing parameter" in err
        assert "Traceback" not in err


class TestFaultsCampaign:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults", "campaign"])
        assert args.faults_command == "campaign"
        assert args.plans == 16
        assert args.workers == 1
        assert args.seed == 2026
        assert args.out == "BENCH_ROBUST.json"

    def test_nonpositive_counts_are_usage_errors(self, capsys):
        assert main(["faults", "campaign", "--plans", "0"]) == 2
        assert "plans" in capsys.readouterr().err
        assert main(["faults", "campaign", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_tiny_campaign_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "robust.json"
        code = main(
            ["faults", "campaign", "--plans", "1", "--out", str(out)]
        )
        stdout = capsys.readouterr().out
        assert code == 0
        assert "all E17 gates passed" in stdout
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "E17"
        assert payload["plans"] == 1
        assert payload["results"][0]["archetype"] == "favored_tamper"


class TestTraffic:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["traffic", "run"])
        assert args.flows == 1_000_000
        assert args.out == "BENCH_TRAFFIC.json"
        assert not args.smoke

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["traffic"])

    def test_nonpositive_flows_is_usage_error(self, capsys):
        assert main(["traffic", "run", "--flows", "0"]) == 2
        err = capsys.readouterr().err
        assert "--flows must be positive" in err

    def test_smoke_run_passes_and_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "BT.json"
        assert main(["traffic", "run", "--smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "peak flows" in printed
        assert "equivalence: ok" in printed
        assert f"wrote {out}" in printed
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == "tango-repro/bench-traffic/v1"
        assert payload["passed"] is True
        assert payload["workloads"]["scale"]["passed"] is True

    def test_dash_out_skips_report(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["traffic", "run", "--smoke", "--out", "-"]) == 0
        assert not (tmp_path / "BENCH_TRAFFIC.json").exists()


class TestFederation:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["federation", "run"])
        assert args.federation_command == "run"
        assert args.edges == 8
        assert args.seed == 42
        assert args.out == "-"
        assert not args.smoke

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["federation"])

    def test_too_few_edges_is_usage_error(self, capsys):
        assert main(["federation", "run", "--edges", "2"]) == 2
        err = capsys.readouterr().err
        assert "--edges must be >= 3" in err

    def test_smoke_run_passes_and_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "fed.json"
        code = main(
            [
                "federation",
                "run",
                "--edges",
                "3",
                "--smoke",
                "--out",
                str(out),
            ]
        )
        printed = capsys.readouterr().out
        assert code == 0
        assert "shared cache hit rate" in printed
        assert "usable routes via relay" in printed
        assert f"wrote {out}" in printed
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == "tango-repro/e20-federation/v1"
        assert payload["established_pairs"] == payload["pairs"] == 3
        assert payload["degraded_pair"]["usable_routes"] >= 2
        assert payload["reroute"]["within_budget"] is True
