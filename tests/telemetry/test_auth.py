"""Tests for authenticated telemetry."""

import pytest

from repro.telemetry.auth import TelemetryAuthenticator

KEY = b"0123456789abcdef"


class TestTag:
    def test_deterministic(self):
        auth = TelemetryAuthenticator(KEY)
        assert auth.tag(1, 2, 3) == auth.tag(1, 2, 3)

    def test_eight_bytes(self):
        assert len(TelemetryAuthenticator(KEY).tag(1, 2, 3)) == 8

    def test_any_field_change_changes_tag(self):
        auth = TelemetryAuthenticator(KEY)
        base = auth.tag(1, 2, 3)
        assert auth.tag(9, 2, 3) != base
        assert auth.tag(1, 9, 3) != base
        assert auth.tag(1, 2, 9) != base

    def test_different_keys_differ(self):
        a = TelemetryAuthenticator(KEY)
        b = TelemetryAuthenticator(b"x" * 16)
        assert a.tag(1, 2, 3) != b.tag(1, 2, 3)

    def test_weak_key_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            TelemetryAuthenticator(b"short")


class TestVerify:
    def test_valid_tag_accepted(self):
        auth = TelemetryAuthenticator(KEY)
        assert auth.verify(1, 2, 3, auth.tag(1, 2, 3))
        assert auth.stats.verified == 1

    def test_tampered_timestamp_rejected(self):
        """The attack that matters: shifting a timestamp to make a path
        look faster or slower."""
        auth = TelemetryAuthenticator(KEY)
        tag = auth.tag(1_000_000, 5, 0)
        assert not auth.verify(2_000_000, 5, 0, tag)
        assert auth.stats.rejected == 1

    def test_replayed_tag_on_other_sequence_rejected(self):
        auth = TelemetryAuthenticator(KEY)
        tag = auth.tag(1, 5, 0)
        assert not auth.verify(1, 6, 0, tag)

    def test_missing_tag_fails_closed(self):
        auth = TelemetryAuthenticator(KEY)
        assert not auth.verify(1, 2, 3, None)

    def test_cross_endpoint_symmetry(self):
        """Both ends derive identical tags from the shared key."""
        sender = TelemetryAuthenticator(KEY)
        receiver = TelemetryAuthenticator(KEY)
        assert receiver.verify(11, 22, 33, sender.tag(11, 22, 33))

    def test_truncated_tag_rejected(self):
        """A prefix of the right tag is still a wrong tag — truncation at
        the 8-byte boundary must not shorten the comparison."""
        auth = TelemetryAuthenticator(KEY)
        tag = auth.tag(1, 2, 3)
        for cut in (7, 4, 1, 0):
            assert not auth.verify(1, 2, 3, tag[:cut])
        assert not auth.verify(1, 2, 3, tag + b"\x00")  # and no extension
        assert auth.verify(1, 2, 3, tag)

    def test_key_mismatch_uses_constant_time_compare(self):
        """Verification against the wrong key rejects via
        hmac.compare_digest, never an early-exit comparison."""
        import unittest.mock as mock

        signer = TelemetryAuthenticator(b"y" * 16)
        verifier = TelemetryAuthenticator(KEY)
        tag = signer.tag(1, 2, 3)
        with mock.patch(
            "repro.telemetry.auth.hmac.compare_digest",
            wraps=__import__("hmac").compare_digest,
        ) as compare:
            assert not verifier.verify(1, 2, 3, tag)
            assert compare.call_count == 1
        assert verifier.stats.rejected == 1


class TestReplayWindow:
    def test_exact_duplicate_counts_as_replay(self):
        auth = TelemetryAuthenticator(KEY)
        tag = auth.tag(1_000, 5, 0)
        assert auth.verify(1_000, 5, 0, tag)
        assert not auth.verify(1_000, 5, 0, tag)
        assert (auth.stats.verified, auth.stats.replayed) == (1, 1)

    def test_windows_are_per_path(self):
        """The same (timestamp, seq) on a different path is a fresh,
        independently MAC'd sample, not a replay."""
        auth = TelemetryAuthenticator(KEY)
        assert auth.verify(1_000, 5, 0, auth.tag(1_000, 5, 0))
        assert auth.verify(1_000, 5, 1, auth.tag(1_000, 5, 1))
        assert auth.stats.replayed == 0

    def test_window_is_bounded(self):
        auth = TelemetryAuthenticator(KEY)
        extra = 16
        for seq in range(auth.REPLAY_WINDOW + extra):
            assert auth.verify(seq, seq, 0, auth.tag(seq, seq, 0))
        assert len(auth._seen[0]) == auth.REPLAY_WINDOW
        # The oldest entries were evicted: replaying them now passes the
        # MAC *and* the window (the plausibility layer's age check is the
        # backstop for ancient replays).
        assert auth.verify(0, 0, 0, auth.tag(0, 0, 0))

    def test_counter_accuracy_under_mixed_traffic(self):
        """Interleaved honest, tampered, and replayed packets must land
        in exactly one counter each."""
        auth = TelemetryAuthenticator(KEY)
        honest = tampered = replays = 0
        accepted = []
        for i in range(300):
            ts, seq, path = 1_000 + i, i, i % 4
            tag = auth.tag(ts, seq, path)
            if i % 5 == 3:  # tamper: shift the timestamp, keep the tag
                assert not auth.verify(ts + 7, seq, path, tag)
                tampered += 1
            elif i % 5 == 4 and accepted:  # replay an accepted sample
                old = accepted[len(accepted) // 2]
                assert not auth.verify(*old)
                replays += 1
            else:
                assert auth.verify(ts, seq, path, tag)
                accepted.append((ts, seq, path, tag))
                honest += 1
        assert honest + tampered + replays == 300
        assert auth.stats.verified == honest
        assert auth.stats.rejected == tampered
        assert auth.stats.replayed == replays
