"""Tests for authenticated telemetry."""

import pytest

from repro.telemetry.auth import TelemetryAuthenticator

KEY = b"0123456789abcdef"


class TestTag:
    def test_deterministic(self):
        auth = TelemetryAuthenticator(KEY)
        assert auth.tag(1, 2, 3) == auth.tag(1, 2, 3)

    def test_eight_bytes(self):
        assert len(TelemetryAuthenticator(KEY).tag(1, 2, 3)) == 8

    def test_any_field_change_changes_tag(self):
        auth = TelemetryAuthenticator(KEY)
        base = auth.tag(1, 2, 3)
        assert auth.tag(9, 2, 3) != base
        assert auth.tag(1, 9, 3) != base
        assert auth.tag(1, 2, 9) != base

    def test_different_keys_differ(self):
        a = TelemetryAuthenticator(KEY)
        b = TelemetryAuthenticator(b"x" * 16)
        assert a.tag(1, 2, 3) != b.tag(1, 2, 3)

    def test_weak_key_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            TelemetryAuthenticator(b"short")


class TestVerify:
    def test_valid_tag_accepted(self):
        auth = TelemetryAuthenticator(KEY)
        assert auth.verify(1, 2, 3, auth.tag(1, 2, 3))
        assert auth.stats.verified == 1

    def test_tampered_timestamp_rejected(self):
        """The attack that matters: shifting a timestamp to make a path
        look faster or slower."""
        auth = TelemetryAuthenticator(KEY)
        tag = auth.tag(1_000_000, 5, 0)
        assert not auth.verify(2_000_000, 5, 0, tag)
        assert auth.stats.rejected == 1

    def test_replayed_tag_on_other_sequence_rejected(self):
        auth = TelemetryAuthenticator(KEY)
        tag = auth.tag(1, 5, 0)
        assert not auth.verify(1, 6, 0, tag)

    def test_missing_tag_fails_closed(self):
        auth = TelemetryAuthenticator(KEY)
        assert not auth.verify(1, 2, 3, None)

    def test_cross_endpoint_symmetry(self):
        """Both ends derive identical tags from the shared key."""
        sender = TelemetryAuthenticator(KEY)
        receiver = TelemetryAuthenticator(KEY)
        assert receiver.verify(11, 22, 33, sender.tag(11, 22, 33))
