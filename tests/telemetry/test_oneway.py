"""Tests for one-way delay analysis under unsynchronized clocks."""

import numpy as np
import pytest

from repro.telemetry.oneway import (
    DirectionalStore,
    Ewma,
    estimate_clock_offset,
    rank_paths,
    relative_delays,
    summarize_path,
)
from repro.telemetry.store import MeasurementStore


def store_with(paths: dict[int, float], offset=0.0, n=100):
    """Paths with constant delays plus a shared clock offset."""
    store = MeasurementStore()
    times = np.arange(n) * 0.01
    for path_id, delay in paths.items():
        store.extend(path_id, times, np.full(n, delay + offset))
    return store


class TestEwma:
    def test_first_sample_initializes(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.update(10.0) == 10.0

    def test_converges_toward_new_level(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        for _ in range(20):
            ewma.update(10.0)
        assert ewma.value == pytest.approx(10.0, abs=0.01)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_reset(self):
        ewma = Ewma()
        ewma.update(5.0)
        ewma.reset()
        assert ewma.value is None


class TestRelativeDelays:
    def test_offset_cancels(self):
        """The paper's core argument: relative comparisons are exact
        regardless of the (unknown, constant) clock offset."""
        delays = {0: 0.0364, 1: 0.0330, 2: 0.0280}
        without = relative_delays(store_with(delays, offset=0.0), 0.0, 1.0)
        with_offset = relative_delays(store_with(delays, offset=0.450), 0.0, 1.0)
        for path_id in delays:
            assert without[path_id] == pytest.approx(
                with_offset[path_id], abs=1e-12
            )

    def test_best_path_reads_zero(self):
        rel = relative_delays(store_with({0: 0.036, 2: 0.028}), 0.0, 1.0)
        assert rel[2] == 0.0
        assert rel[0] == pytest.approx(0.008)

    def test_empty_store(self):
        assert relative_delays(MeasurementStore(), 0.0, 1.0) == {}


class TestRankPaths:
    def test_ranked_best_first(self):
        store = store_with({0: 0.036, 1: 0.033, 2: 0.028})
        ranked = rank_paths(store, window_s=2.0, now=1.0)
        assert [p for p, _ in ranked] == [2, 1, 0]

    def test_ranking_invariant_to_offset(self):
        a = rank_paths(store_with({0: 0.036, 2: 0.028}), 2.0, 1.0)
        b = rank_paths(
            store_with({0: 0.036, 2: 0.028}, offset=-0.2), 2.0, 1.0
        )
        assert [p for p, _ in a] == [p for p, _ in b]

    def test_paths_without_fresh_data_excluded(self):
        store = MeasurementStore()
        store.record(1, 0.0, 0.030)
        assert rank_paths(store, window_s=1.0, now=100.0) == []


class TestClockOffsetEstimate:
    def test_symmetric_paths_recover_offset(self):
        # true delay 30 ms each way, offset +5 ms.
        offset, true_owd = estimate_clock_offset(0.035, 0.025)
        assert offset == pytest.approx(0.005)
        assert true_owd == pytest.approx(0.030)

    def test_asymmetry_corrupts_estimate(self):
        """Why Tango does NOT rely on this: with asymmetric paths the
        'offset' absorbs the asymmetry."""
        # true fwd 40 ms, true rev 20 ms, zero offset.
        offset, true_owd = estimate_clock_offset(0.040, 0.020)
        assert offset == pytest.approx(0.010)  # wrong: real offset is 0
        assert true_owd == pytest.approx(0.030)  # wrong for both directions


class TestSummaries:
    def test_summary_fields(self):
        store = store_with({1: 0.030})
        summary = summarize_path(store, 1, 0.0, 10.0)
        assert summary.samples == 100
        assert summary.mean_s == pytest.approx(0.030)
        assert summary.as_row()["mean_ms"] == pytest.approx(30.0)

    def test_summary_none_for_empty_window(self):
        store = store_with({1: 0.030})
        assert summarize_path(store, 1, 100.0, 200.0) is None


class TestDirectionalStore:
    def test_directions_kept_apart(self):
        directional = DirectionalStore()
        directional.record_forward(1, 0.0, 0.030)
        directional.record_reverse(1, 0.0, 0.045)
        assert directional.forward.series(1).mean() == pytest.approx(0.030)
        assert directional.reverse.series(1).mean() == pytest.approx(0.045)
