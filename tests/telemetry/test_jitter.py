"""Tests for the rolling-window jitter metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.delaymodels import GaussianJitterDelay
from repro.telemetry.jitter import (
    jitter_report,
    rolling_window_std,
    tumbling_window_std,
)
from repro.telemetry.store import MeasurementStore


def regular_series(sigma, n=3000, interval=0.01, seed=5):
    """A 10 ms-cadence series with known Gaussian jitter."""
    times = np.arange(n) * interval
    model = GaussianJitterDelay(0.028, sigma, seed=seed)
    return times, model.delays(times)


class TestRollingWindowStd:
    def test_constant_series_has_zero_jitter(self):
        times = np.arange(200) * 0.01
        values = np.full(200, 0.030)
        assert rolling_window_std(times, values) == pytest.approx(0.0)

    def test_recovers_known_sigma(self):
        """Calibration check: the metric converges to the generator's
        sigma — what makes the paper's 0.01 ms / 0.33 ms reproducible."""
        for sigma in (0.00001, 0.00033):
            times, values = regular_series(sigma)
            measured = rolling_window_std(times, values, window_s=1.0)
            assert measured == pytest.approx(sigma, rel=0.05)

    def test_ranks_paths_like_the_paper(self):
        t_gtt, v_gtt = regular_series(0.00001, seed=1)
        t_telia, v_telia = regular_series(0.00033, seed=2)
        assert rolling_window_std(t_gtt, v_gtt) < rolling_window_std(
            t_telia, v_telia
        )

    def test_too_few_samples_nan(self):
        assert np.isnan(rolling_window_std(np.asarray([0.0]), np.asarray([1.0])))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rolling_window_std(np.arange(3.0), np.arange(2.0))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            rolling_window_std(np.arange(5.0), np.arange(5.0), window_s=0.0)

    def test_offset_invariance(self):
        """Adding a constant (clock offset) cannot change jitter."""
        times, values = regular_series(0.0002)
        base = rolling_window_std(times, values)
        shifted = rolling_window_std(times, values + 0.5)
        assert base == pytest.approx(shifted, rel=1e-9)

    @given(st.floats(min_value=1e-6, max_value=1e-3))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_sigma(self, sigma):
        """Property: more generator noise, more measured jitter."""
        times, low = regular_series(sigma, n=1000)
        _, high = regular_series(sigma * 3, n=1000, seed=6)
        assert rolling_window_std(times, low) < rolling_window_std(times, high)


class TestTumblingWindowStd:
    def test_agrees_with_rolling_for_stationary_series(self):
        times, values = regular_series(0.0003)
        rolling = rolling_window_std(times, values)
        tumbling = tumbling_window_std(times, values)
        assert tumbling == pytest.approx(rolling, rel=0.1)

    def test_short_series_nan(self):
        assert np.isnan(
            tumbling_window_std(np.asarray([0.0]), np.asarray([1.0]))
        )


class TestJitterReport:
    def test_report_per_path(self):
        store = MeasurementStore()
        t1, v1 = regular_series(0.00001, seed=1)
        t2, v2 = regular_series(0.00033, seed=2)
        store.extend(2, t1, v1)  # "GTT"
        store.extend(1, t2, v2)  # "Telia"
        report = jitter_report(store, 0.0, 100.0)
        assert report[2] == pytest.approx(0.00001, rel=0.1)
        assert report[1] == pytest.approx(0.00033, rel=0.1)

    def test_single_sample_paths_skipped(self):
        store = MeasurementStore()
        store.record(1, 0.0, 0.030)
        assert jitter_report(store, 0.0, 1.0) == {}
