"""Tests for the time-series store, including growth properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.store import MeasurementStore, TimeSeries


class TestTimeSeries:
    def test_append_and_read_back(self):
        series = TimeSeries()
        series.append(1.0, 0.030)
        series.append(2.0, 0.031)
        np.testing.assert_array_equal(series.times, [1.0, 2.0])
        np.testing.assert_array_equal(series.values, [0.030, 0.031])

    def test_time_must_not_go_backwards(self):
        series = TimeSeries()
        series.append(5.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            series.append(4.0, 1.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_growth_beyond_initial_capacity(self):
        series = TimeSeries()
        for i in range(5000):
            series.append(float(i), float(i) * 2)
        assert len(series) == 5000
        assert series.values[4999] == 9998.0

    def test_window_half_open(self):
        series = TimeSeries()
        for i in range(10):
            series.append(float(i), float(i))
        times, values = series.window(2.0, 5.0)
        np.testing.assert_array_equal(times, [2.0, 3.0, 4.0])

    def test_window_outside_range_empty(self):
        series = TimeSeries()
        series.append(1.0, 1.0)
        times, values = series.window(5.0, 9.0)
        assert times.size == 0

    def test_latest(self):
        series = TimeSeries()
        for i in range(10):
            series.append(float(i), float(i))
        _, values = series.latest(3)
        np.testing.assert_array_equal(values, [7.0, 8.0, 9.0])

    def test_latest_invalid_count(self):
        with pytest.raises(ValueError):
            TimeSeries().latest(0)

    def test_mean_and_percentile(self):
        series = TimeSeries()
        for i in range(1, 101):
            series.append(float(i), float(i))
        assert series.mean() == pytest.approx(50.5)
        assert series.percentile(50) == pytest.approx(50.5)

    def test_empty_stats_are_nan(self):
        series = TimeSeries()
        assert np.isnan(series.mean())
        assert np.isnan(series.percentile(99))

    def test_extend_bulk(self):
        series = TimeSeries()
        series.extend(np.arange(5.0), np.ones(5))
        assert len(series) == 5

    def test_extend_rejects_disorder(self):
        series = TimeSeries()
        with pytest.raises(ValueError, match="non-decreasing"):
            series.extend(np.asarray([2.0, 1.0]), np.ones(2))

    def test_extend_rejects_backwards_relative_to_existing(self):
        series = TimeSeries()
        series.append(10.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            series.extend(np.asarray([5.0]), np.ones(1))

    def test_extend_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            TimeSeries().extend(np.arange(3.0), np.ones(2))

    def test_extend_empty_is_noop(self):
        series = TimeSeries()
        series.extend(np.asarray([]), np.asarray([]))
        assert len(series) == 0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50)
    def test_appends_preserve_all_samples(self, raw_times):
        """Property: every appended sample is retrievable, in order."""
        times = sorted(raw_times)
        series = TimeSeries()
        for i, t in enumerate(times):
            series.append(t, float(i))
        assert len(series) == len(times)
        np.testing.assert_array_equal(series.times, times)

    @given(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_window_subset_property(self, a, b):
        """Property: window() returns exactly samples in [t0, t1)."""
        t0, t1 = min(a, b), max(a, b)
        series = TimeSeries()
        all_times = np.arange(0.0, 100.0, 1.7)
        series.extend(all_times, all_times)
        times, _ = series.window(t0, t1)
        expected = all_times[(all_times >= t0) & (all_times < t1)]
        np.testing.assert_array_equal(times, expected)


class TestAmortizedGrowth:
    """Geometric over-allocation: append is O(1) amortized, and the
    grows counter makes the reallocation schedule observable."""

    def test_initial_capacity_absorbs_first_appends(self):
        series = TimeSeries()
        for i in range(1024):
            series.append(float(i), float(i))
        assert series.grows == 0

    def test_grows_counter_is_logarithmic(self):
        series = TimeSeries()
        n = 100_000
        for i in range(n):
            series.append(float(i), float(i))
        assert len(series) == n
        # Doubling from 1024: 2048, 4096, ..., 131072 -> 7 reallocations.
        assert series.grows == 7

    def test_views_only_expose_written_prefix(self):
        series = TimeSeries()
        for i in range(10):
            series.append(float(i), float(i))
        assert series.times.size == 10
        assert series.values.size == 10
        np.testing.assert_array_equal(series.times, np.arange(10.0))

    def test_extend_reports_growth_too(self):
        series = TimeSeries()
        series.extend(np.arange(5000.0), np.ones(5000))
        assert len(series) == 5000
        assert series.grows >= 1


class TestRecordAggregateMany:
    def test_batched_equals_scalar_loop(self):
        batched, scalar = MeasurementStore(), MeasurementStore()
        pids = [4, 1, 3]
        for step in range(50):
            t = step * 0.1
            owds = [0.03 + 0.001 * step + 0.0001 * p for p in pids]
            batched.record_aggregate_many(pids, t, owds)
            for pid, owd in zip(pids, owds):
                scalar.record(pid, t, owd)
        assert batched.path_ids() == scalar.path_ids()
        for pid in pids:
            a, b = batched.series(pid), scalar.series(pid)
            assert a.times.tobytes() == b.times.tobytes()
            assert a.values.tobytes() == b.values.tobytes()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            MeasurementStore().record_aggregate_many([1, 2], 0.0, [0.03])

    def test_empty_batch_is_noop(self):
        store = MeasurementStore()
        store.record_aggregate_many([], 0.0, [])
        assert store.path_ids() == []


class TestMeasurementStore:
    def test_record_and_series(self):
        store = MeasurementStore()
        store.record(1, 0.0, 0.030)
        store.record(1, 0.01, 0.031)
        assert len(store.series(1)) == 2

    def test_path_ids_sorted_nonempty_only(self):
        store = MeasurementStore()
        store.record(3, 0.0, 1.0)
        store.record(1, 0.0, 1.0)
        store.series(7)  # created but empty
        assert store.path_ids() == [1, 3]

    def test_recent_delay_window(self):
        store = MeasurementStore()
        store.record(1, 0.0, 0.100)
        store.record(1, 9.0, 0.030)
        store.record(1, 9.5, 0.032)
        assert store.recent_delay(1, window_s=1.0, now=9.6) == pytest.approx(
            0.031
        )

    def test_recent_delay_none_when_no_fresh_samples(self):
        store = MeasurementStore()
        store.record(1, 0.0, 0.030)
        assert store.recent_delay(1, window_s=1.0, now=100.0) is None

    def test_recent_delay_unknown_path(self):
        assert MeasurementStore().recent_delay(9, 1.0, 0.0) is None

    def test_has_path(self):
        store = MeasurementStore()
        assert not store.has_path(1)
        store.record(1, 0.0, 1.0)
        assert store.has_path(1)


class TestLastTime:
    def test_empty_series_has_no_last_time(self):
        assert TimeSeries().last_time is None

    def test_last_time_tracks_appends(self):
        series = TimeSeries()
        series.append(1.0, 0.03)
        series.append(2.5, 0.031)
        assert series.last_time == 2.5

    def test_store_last_time_per_path(self):
        store = MeasurementStore()
        store.record(3, 1.25, 0.03)
        assert store.last_time(3) == 1.25
        assert store.last_time(7) is None


class TestEmptySeriesContract:
    """Empty series answer None everywhere, never raise or diverge."""

    def test_empty_series_has_no_last_value(self):
        assert TimeSeries().last_value is None

    def test_last_value_tracks_appends(self):
        series = TimeSeries()
        series.append(1.0, 0.03)
        series.append(2.5, 0.031)
        assert series.last_value == 0.031

    def test_store_last_value_per_path(self):
        store = MeasurementStore()
        store.record(3, 1.25, 0.03)
        assert store.last_value(3) == 0.03
        assert store.last_value(7) is None

    def test_created_but_empty_series_answers_none(self):
        store = MeasurementStore()
        store.series(9)  # created on read, never written
        assert store.last_time(9) is None
        assert store.last_value(9) is None

    def test_items_consistent_with_path_ids(self):
        """items() must not leak series that path_ids() hides."""
        store = MeasurementStore()
        store.record(3, 0.0, 1.0)
        store.record(1, 0.0, 1.0)
        store.series(7)  # created but empty
        assert [p for p, _ in store.items()] == store.path_ids() == [1, 3]
