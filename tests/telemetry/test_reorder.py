"""Tests for reordering metrics."""

import numpy as np
import pytest

from repro.telemetry.reorder import (
    reordering_extent,
    reordering_from_arrivals,
)


class TestReorderingFromArrivals:
    def test_in_order_stream_clean(self):
        seqs = np.arange(10)
        times = np.arange(10) * 0.01
        report = reordering_from_arrivals(seqs, times)
        assert report.reordered == 0
        assert report.reordered_fraction == 0.0
        assert report.max_extent == 0

    def test_single_swap_detected(self):
        seqs = np.asarray([0, 2, 1, 3])
        times = np.asarray([0.0, 0.01, 0.02, 0.03])
        report = reordering_from_arrivals(seqs, times)
        assert report.reordered == 1
        assert report.max_extent == 1
        assert report.reordered_fraction == pytest.approx(0.25)

    def test_spike_induced_reordering_extent(self):
        """A delayed packet overtaken by several later ones — the paper's
        instability scenario."""
        seqs = np.asarray([0, 2, 3, 4, 1])
        times = np.asarray([0.0, 0.01, 0.02, 0.03, 0.04])
        report = reordering_from_arrivals(seqs, times)
        assert report.reordered == 1
        assert report.max_extent == 3

    def test_late_time_measured(self):
        seqs = np.asarray([0, 2, 1])
        times = np.asarray([0.0, 0.010, 0.030])
        report = reordering_from_arrivals(seqs, times)
        assert report.mean_late_time_s == pytest.approx(0.020)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reordering_from_arrivals(np.arange(3), np.arange(2.0))

    def test_empty_stream(self):
        report = reordering_from_arrivals(np.asarray([]), np.asarray([]))
        assert report.packets == 0
        assert report.reordered_fraction == 0.0


class TestReorderingExtent:
    def test_in_order_zero(self):
        assert reordering_extent(np.arange(20)) == 0

    def test_full_reversal(self):
        assert reordering_extent(np.asarray([4, 3, 2, 1, 0])) == 4

    def test_matches_full_report(self):
        seqs = np.asarray([0, 3, 1, 2, 5, 4])
        times = np.arange(6) * 0.01
        assert (
            reordering_extent(seqs)
            == reordering_from_arrivals(seqs, times).max_extent
        )
