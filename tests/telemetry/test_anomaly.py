"""Tests for online anomaly detectors, including detection of the
paper's two Figure 4 events from the actual scenario processes."""

import numpy as np
import pytest

from repro.scenarios.vultr import (
    INSTABILITY_HOUR,
    NY_TO_LA_PATHS,
    ROUTE_CHANGE_HOUR,
)
from repro.telemetry.anomaly import CusumDetector, SpikeClusterDetector


def feed(detector, times, values):
    events = []
    for t, v in zip(times, values):
        event = detector.update(float(t), float(v))
        if event is not None:
            events.append(event)
    return events


class TestCusum:
    def test_stable_series_never_fires(self):
        detector = CusumDetector(drift=0.0005, threshold=0.01)
        rng = np.random.default_rng(1)
        values = 0.028 + rng.normal(0, 0.0001, 5000)
        assert feed(detector, np.arange(5000) * 0.01, values) == []

    def test_level_shift_detected_quickly(self):
        detector = CusumDetector(drift=0.0005, threshold=0.01)
        times = np.arange(2000) * 0.01
        values = np.full(2000, 0.028)
        values[1000:] = 0.033  # +5 ms shift at t=10
        events = feed(detector, times, values)
        assert events
        assert events[0].kind == "shift-up"
        assert 10.0 <= events[0].t <= 10.2  # within ~20 samples

    def test_downward_shift_detected(self):
        detector = CusumDetector(drift=0.0005, threshold=0.01)
        times = np.arange(2000) * 0.01
        values = np.full(2000, 0.033)
        values[1000:] = 0.028
        events = feed(detector, times, values)
        assert events and events[0].kind == "shift-down"

    def test_reanchors_and_detects_revert(self):
        detector = CusumDetector(drift=0.0005, threshold=0.01, warmup=50)
        times = np.arange(4000) * 0.01
        values = np.full(4000, 0.028)
        values[1000:3000] = 0.033
        events = feed(detector, times, values)
        kinds = [e.kind for e in events]
        assert kinds == ["shift-up", "shift-down"]

    def test_drift_tolerance_ignores_small_wobble(self):
        detector = CusumDetector(drift=0.002, threshold=0.01)
        times = np.arange(2000) * 0.01
        values = np.full(2000, 0.028)
        values[1000:] = 0.0295  # +1.5 ms < drift
        assert feed(detector, times, values) == []

    def test_detects_the_paper_route_change(self):
        """Online detection of the Fig. 4-middle event on the real
        scenario process."""
        start = ROUTE_CHANGE_HOUR * 3600.0
        times = np.arange(start - 120.0, start + 300.0, 0.01)
        values = NY_TO_LA_PATHS["GTT"].build().delays(times)
        detector = CusumDetector(drift=0.001, threshold=0.02)
        events = feed(detector, times, values)
        assert events
        assert events[0].kind == "shift-up"
        assert events[0].t - start < 35.0  # found during the transition

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(drift=-1.0)
        with pytest.raises(ValueError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ValueError):
            CusumDetector(warmup=1)


class TestSpikeCluster:
    def test_isolated_spike_ignored(self):
        detector = SpikeClusterDetector(
            spike_threshold=0.04, window_s=10.0, min_spikes=3
        )
        times = np.arange(3000) * 0.01
        values = np.full(3000, 0.028)
        values[1500] = 0.078
        assert feed(detector, times, values) == []

    def test_cluster_fires_once_with_cooldown(self):
        detector = SpikeClusterDetector(
            spike_threshold=0.04, window_s=5.0, min_spikes=3, cooldown_s=60.0
        )
        times = np.arange(3000) * 0.01
        values = np.full(3000, 0.028)
        values[1000:1200:20] = 0.070  # 10 spikes over 2 s
        events = feed(detector, times, values)
        assert len(events) == 1
        assert events[0].kind == "spike-cluster"

    def test_detects_the_paper_instability(self):
        start = INSTABILITY_HOUR * 3600.0
        times = np.arange(start - 60.0, start + 300.0, 0.01)
        values = NY_TO_LA_PATHS["GTT"].build().delays(times)
        detector = SpikeClusterDetector(
            spike_threshold=0.040, window_s=10.0, min_spikes=3, cooldown_s=600.0
        )
        events = feed(detector, times, values)
        assert len(events) == 1
        assert 0.0 <= events[0].t - start <= 30.0  # near the window start

    def test_quiet_paths_never_fire(self):
        start = INSTABILITY_HOUR * 3600.0
        times = np.arange(start, start + 300.0, 0.01)
        values = NY_TO_LA_PATHS["Telia"].build().delays(times)
        detector = SpikeClusterDetector(spike_threshold=0.040)
        assert feed(detector, times, values) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SpikeClusterDetector(0.04, window_s=0.0)
        with pytest.raises(ValueError):
            SpikeClusterDetector(0.04, min_spikes=0)
        with pytest.raises(ValueError):
            SpikeClusterDetector(0.04, cooldown_s=-1.0)
