"""Tests for the P² streaming quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.quantiles import P2Quantile


class TestBasics:
    def test_invalid_quantile_rejected(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value)

    def test_few_samples_exact(self):
        estimator = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            estimator.update(v)
        assert estimator.value == 2.0

    def test_median_of_uniform_stream(self):
        estimator = P2Quantile(0.5)
        rng = np.random.default_rng(0)
        for v in rng.uniform(0, 1, 20000):
            estimator.update(float(v))
        assert estimator.value == pytest.approx(0.5, abs=0.02)

    def test_p99_of_normal_stream(self):
        estimator = P2Quantile(0.99)
        rng = np.random.default_rng(1)
        data = rng.normal(0.030, 0.001, 20000)
        for v in data:
            estimator.update(float(v))
        exact = float(np.percentile(data, 99))
        assert estimator.value == pytest.approx(exact, rel=0.02)

    def test_tracks_owd_distribution_with_spikes(self):
        """The use case: p99 of a spiky path without buffering samples."""
        rng = np.random.default_rng(2)
        base = rng.normal(0.028, 0.0001, 30000)
        spikes = rng.uniform(0.040, 0.078, 600)
        data = np.concatenate([base, spikes])
        rng.shuffle(data)
        estimator = P2Quantile(0.99)
        for v in data:
            estimator.update(float(v))
        exact = float(np.percentile(data, 99))
        assert estimator.value == pytest.approx(exact, rel=0.25)
        # And crucially: it is far above the clean p50.
        assert estimator.value > 0.030

    def test_monotone_stream(self):
        estimator = P2Quantile(0.5)
        for v in range(1, 1001):
            estimator.update(float(v))
        assert estimator.value == pytest.approx(500.0, rel=0.05)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=6,
            max_size=300,
        ),
        st.sampled_from([0.1, 0.5, 0.9]),
    )
    @settings(max_examples=50)
    def test_estimate_within_observed_range(self, data, q):
        """Property: the estimate never leaves [min, max] of the data."""
        estimator = P2Quantile(q)
        for v in data:
            estimator.update(v)
        assert min(data) <= estimator.value <= max(data)

    def test_count_tracked(self):
        estimator = P2Quantile(0.5)
        for v in range(10):
            estimator.update(float(v))
        assert estimator.count == 10
