"""Tests for the loss monitor."""

import pytest

from repro.dataplane.seqnum import SequenceTracker
from repro.telemetry.loss import LossBin, LossMonitor


class TestLossBin:
    def test_fraction(self):
        assert LossBin(t=0.0, received=9, presumed_lost=1).loss_fraction == 0.1

    def test_empty_bin_zero(self):
        assert LossBin(t=0.0, received=0, presumed_lost=0).loss_fraction == 0.0


class TestLossMonitor:
    def test_deltas_not_cumulative(self):
        tracker = SequenceTracker()
        monitor = LossMonitor(tracker)
        for seq in range(10):
            tracker.observe(1, seq)
        first = monitor.sample(1.0)
        assert first[1].received == 10
        for seq in range(10, 15):
            tracker.observe(1, seq)
        second = monitor.sample(2.0)
        assert second[1].received == 5

    def test_loss_attributed_to_correct_bin(self):
        tracker = SequenceTracker()
        monitor = LossMonitor(tracker)
        tracker.observe(1, 0)
        monitor.sample(1.0)
        tracker.observe(1, 5)  # 4 lost since last sample
        bins = monitor.sample(2.0)
        assert bins[1].presumed_lost == 4
        assert bins[1].loss_fraction == pytest.approx(4 / 5)

    def test_series_accumulates(self):
        tracker = SequenceTracker()
        monitor = LossMonitor(tracker)
        tracker.observe(1, 0)
        monitor.sample(1.0)
        monitor.sample(2.0)
        assert len(monitor.series[1]) == 2

    def test_recent_loss_over_bins(self):
        tracker = SequenceTracker()
        monitor = LossMonitor(tracker)
        tracker.observe(1, 0)
        monitor.sample(1.0)  # clean bin
        tracker.observe(1, 3)  # 2 lost
        monitor.sample(2.0)
        assert monitor.recent_loss(1, bins=1) == pytest.approx(2 / 3)
        assert monitor.recent_loss(1, bins=2) == pytest.approx(2 / 4)

    def test_recent_loss_unknown_path(self):
        monitor = LossMonitor(SequenceTracker())
        assert monitor.recent_loss(9) == 0.0

    def test_reconciled_reordering_reduces_loss(self):
        tracker = SequenceTracker()
        monitor = LossMonitor(tracker)
        tracker.observe(1, 0)
        tracker.observe(1, 2)
        tracker.observe(1, 1)  # late, reconciles
        bins = monitor.sample(1.0)
        assert bins[1].presumed_lost == 0
        assert bins[1].received == 3
