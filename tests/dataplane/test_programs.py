"""Tests for the Tango sender/receiver switch programs."""

import ipaddress
from dataclasses import dataclass

import pytest

from repro.dataplane.encap import is_tango_encapsulated
from repro.dataplane.programs import TangoReceiverProgram, TangoSenderProgram
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader
from repro.netsim.topology import Network
from repro.telemetry.auth import TelemetryAuthenticator


@dataclass(frozen=True)
class FakeTunnel:
    path_id: int
    local_endpoint: ipaddress.IPv6Address
    remote_endpoint: ipaddress.IPv6Address
    sport: int = 40000


class FirstTunnelSelector:
    def select(self, tunnels, packet, now):
        return tunnels[0]


TUNNEL = FakeTunnel(
    path_id=5,
    local_endpoint=ipaddress.IPv6Address("2001:db8:a0::1"),
    remote_endpoint=ipaddress.IPv6Address("2001:db8:b0::1"),
)

REMOTE_HOST_PREFIX = ipaddress.ip_network("2001:db8:20::/48")


def lookup(dst):
    return [TUNNEL] if dst in REMOTE_HOST_PREFIX else []


def data_packet(dst="2001:db8:20::9"):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::9"),
                dst=ipaddress.IPv6Address(dst),
            ),
            UdpHeader(sport=7, dport=8),
        ],
        payload_bytes=32,
    )


def make_switch(offset=0.0):
    net = Network()
    return net, net.add_switch("sw", clock_offset=offset)


class TestSenderProgram:
    def test_tango_destination_gets_encapsulated(self):
        net, switch = make_switch()
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())
        out = sender(switch, data_packet())
        assert is_tango_encapsulated(out)
        assert str(out.dst) == "2001:db8:b0::1"
        assert sender.encapsulated == 1

    def test_non_tango_destination_passes_through(self):
        net, switch = make_switch()
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())
        out = sender(switch, data_packet(dst="2001:db8:99::9"))
        assert not is_tango_encapsulated(out)
        assert sender.passed_through == 1

    def test_already_encapsulated_not_double_wrapped(self):
        net, switch = make_switch()
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())
        once = sender(switch, data_packet())
        again = sender(switch, once)
        assert again is once
        assert sender.encapsulated == 1

    def test_timestamp_uses_switch_wall_clock(self):
        net, switch = make_switch(offset=0.5)
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())
        net.sim.clock.advance_to(1.0)
        out = sender(switch, data_packet())
        assert out.tango.timestamp_ns == pytest.approx(1.5e9)

    def test_sequence_numbers_increment_per_path(self):
        net, switch = make_switch()
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())
        seqs = [sender(switch, data_packet()).tango.seq for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_on_transmit_callback(self):
        net, switch = make_switch()
        sent = []
        sender = TangoSenderProgram(
            lookup, FirstTunnelSelector(), on_transmit=lambda pid, p: sent.append(pid)
        )
        sender(switch, data_packet())
        assert sent == [5]

    def test_auth_tag_attached_when_authenticator_present(self):
        net, switch = make_switch()
        auth = TelemetryAuthenticator(b"k" * 16)
        sender = TangoSenderProgram(lookup, FirstTunnelSelector(), authenticator=auth)
        out = sender(switch, data_packet())
        assert out.tango.auth_tag is not None


class TestReceiverProgram:
    def roundtrip(self, sender_offset=0.0, receiver_offset=0.0, **recv_kwargs):
        net, tx = make_switch(offset=sender_offset)
        rx_net = net  # same simulator for clock coherence
        rx = rx_net.add_switch("rx", clock_offset=receiver_offset)
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())
        measurements = []
        receiver = TangoReceiverProgram(
            local_endpoints=[TUNNEL.remote_endpoint],
            on_measurement=lambda pid, t, owd, hdr: measurements.append(
                (pid, owd)
            ),
            **recv_kwargs,
        )
        packet = sender(tx, data_packet())
        # Simulate 30 ms of network transit.
        net.sim.clock.advance_to(net.sim.now + 0.030)
        inner = receiver(rx, packet)
        return inner, measurements, receiver

    def test_measures_one_way_delay(self):
        inner, measurements, _ = self.roundtrip()
        assert len(measurements) == 1
        path_id, owd = measurements[0]
        assert path_id == 5
        assert owd == pytest.approx(0.030, abs=1e-6)

    def test_clock_offset_distorts_measurement_constantly(self):
        """Receiver ahead by 2 ms -> every OWD reads 2 ms high."""
        _, measurements, _ = self.roundtrip(receiver_offset=0.002)
        assert measurements[0][1] == pytest.approx(0.032, abs=1e-6)

    def test_decapsulated_inner_returned_for_forwarding(self):
        inner, _, _ = self.roundtrip()
        assert not is_tango_encapsulated(inner)
        assert str(inner.dst) == "2001:db8:20::9"

    def test_measurement_annotations_on_inner(self):
        inner, _, _ = self.roundtrip()
        assert inner.meta["tango_path_id"] == 5
        assert inner.meta["tango_owd_s"] == pytest.approx(0.030, abs=1e-6)

    def test_foreign_destination_passes_through(self):
        net, rx = make_switch()
        receiver = TangoReceiverProgram(local_endpoints=[])
        packet = data_packet()
        assert receiver(rx, packet) is packet
        assert receiver.passed_through == 1

    def test_tracker_observes_sequences(self):
        _, _, receiver = self.roundtrip()
        assert receiver.tracker.stats_for(5).received == 1

    def test_authenticated_packet_accepted(self):
        auth = TelemetryAuthenticator(b"s" * 16)
        net, tx = make_switch()
        rx = net.add_switch("rx")
        sender = TangoSenderProgram(lookup, FirstTunnelSelector(), authenticator=auth)
        receiver = TangoReceiverProgram(
            local_endpoints=[TUNNEL.remote_endpoint], authenticator=auth
        )
        inner = receiver(rx, sender(tx, data_packet()))
        assert inner is not None
        assert receiver.rejected_auth == 0

    def test_forged_packet_dropped(self):
        """An on-path attacker rewriting the timestamp is caught."""
        auth = TelemetryAuthenticator(b"s" * 16)
        net, tx = make_switch()
        rx = net.add_switch("rx")
        sender = TangoSenderProgram(lookup, FirstTunnelSelector(), authenticator=auth)
        receiver = TangoReceiverProgram(
            local_endpoints=[TUNNEL.remote_endpoint], authenticator=auth
        )
        packet = sender(tx, data_packet())
        # Tamper: replace the Tango header timestamp (tag now stale).
        from dataclasses import replace

        packet.headers[2] = replace(packet.headers[2], timestamp_ns=999)
        assert receiver(rx, packet) is None
        assert receiver.rejected_auth == 1

    def test_unauthenticated_packet_rejected_when_auth_required(self):
        auth = TelemetryAuthenticator(b"s" * 16)
        net, tx = make_switch()
        rx = net.add_switch("rx")
        sender = TangoSenderProgram(lookup, FirstTunnelSelector())  # no auth
        receiver = TangoReceiverProgram(
            local_endpoints=[TUNNEL.remote_endpoint], authenticator=auth
        )
        assert receiver(rx, sender(tx, data_packet())) is None
