"""Tests for Tango tunnel encapsulation."""

import ipaddress

import pytest

from repro.dataplane.encap import (
    TUNNEL_OVERHEAD_BYTES,
    TunnelDecapError,
    decapsulate,
    encapsulate,
    is_tango_encapsulated,
)
from repro.netsim.packet import (
    TANGO_UDP_PORT,
    Ipv6Header,
    Packet,
    UdpHeader,
)


def inner_packet():
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::2"),
                dst=ipaddress.IPv6Address("2001:db8:20::2"),
            ),
            UdpHeader(sport=1111, dport=2222),
        ],
        payload_bytes=64,
    )


def encap(packet=None, **kwargs):
    packet = packet or inner_packet()
    defaults = dict(
        src="2001:db8:a0::1",
        dst="2001:db8:b0::1",
        path_id=3,
        timestamp_ns=123_456_789,
        seq=42,
    )
    defaults.update(kwargs)
    return encapsulate(packet, **defaults)


class TestEncapsulate:
    def test_outer_destination_selects_route(self):
        packet = encap()
        assert str(packet.dst) == "2001:db8:b0::1"

    def test_inner_headers_preserved(self):
        packet = encap()
        inner_ip = packet.headers[3]
        assert str(inner_ip.dst) == "2001:db8:20::2"

    def test_tango_header_fields(self):
        packet = encap()
        tango = packet.tango
        assert tango.timestamp_ns == 123_456_789
        assert tango.seq == 42
        assert tango.path_id == 3

    def test_overhead_constant_matches_reality(self):
        packet = inner_packet()
        before = packet.wire_bytes
        encap(packet)
        assert packet.wire_bytes - before == TUNNEL_OVERHEAD_BYTES

    def test_udp_dport_is_tango_port(self):
        packet = encap()
        assert packet.headers[1].dport == TANGO_UDP_PORT

    def test_custom_sport_pins_tunnel_flow(self):
        packet = encap(sport=40003)
        assert packet.five_tuple().sport == 40003

    def test_auth_tag_carried(self):
        packet = encap(auth_tag=b"12345678")
        assert packet.tango.auth_tag == b"12345678"


class TestDetection:
    def test_encapsulated_detected(self):
        assert is_tango_encapsulated(encap())

    def test_plain_packet_not_detected(self):
        assert not is_tango_encapsulated(inner_packet())

    def test_wrong_udp_port_not_detected(self):
        packet = encap(dport=9999)
        assert not is_tango_encapsulated(packet)

    def test_short_stack_not_detected(self):
        assert not is_tango_encapsulated(Packet(headers=[]))


class TestDecapsulate:
    def test_roundtrip_restores_inner(self):
        original = inner_packet()
        original_headers = list(original.headers)
        packet = encap(original)
        inner, tango, outer = decapsulate(packet)
        assert inner.headers == original_headers
        assert tango.seq == 42
        assert str(outer.dst) == "2001:db8:b0::1"

    def test_decap_plain_packet_raises(self):
        with pytest.raises(TunnelDecapError, match="not a Tango tunnel"):
            decapsulate(inner_packet())

    def test_double_encap_decap_peels_one_layer(self):
        packet = encap()
        encapsulate(
            packet,
            src="2001:db8:c0::1",
            dst="2001:db8:d0::1",
            path_id=7,
            timestamp_ns=1,
            seq=0,
        )
        inner, tango, _ = decapsulate(packet)
        assert tango.path_id == 7
        assert is_tango_encapsulated(inner)
