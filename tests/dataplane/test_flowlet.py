"""Tests for flowlet-switched load balancing."""

import ipaddress
from dataclasses import dataclass

import pytest

from repro.dataplane.flowlet import FlowletSelector
from repro.netsim.packet import Ipv6Header, Packet, UdpHeader


@dataclass(frozen=True)
class FakeTunnel:
    path_id: int
    local_endpoint: ipaddress.IPv6Address = ipaddress.IPv6Address("::1")
    remote_endpoint: ipaddress.IPv6Address = ipaddress.IPv6Address("::2")
    sport: int = 40000


TUNNELS = [FakeTunnel(path_id=i) for i in range(3)]


def packet(flow=1):
    return Packet(
        headers=[
            Ipv6Header(
                src=ipaddress.IPv6Address("2001:db8:10::1"),
                dst=ipaddress.IPv6Address("2001:db8:20::1"),
            ),
            UdpHeader(sport=1000 + flow, dport=2000),
        ],
        flow_label=flow,
    )


class TestFlowletStickiness:
    def test_back_to_back_packets_stay_on_one_tunnel(self):
        """No reordering within a flowlet: consecutive packets (gap <
        flowlet gap) always ride the same tunnel."""
        selector = FlowletSelector(gap_s=0.050)
        picks = {
            selector.select(TUNNELS, packet(flow=1), now=i * 0.001).path_id
            for i in range(100)
        }
        assert len(picks) == 1

    def test_gap_opens_new_flowlet(self):
        selector = FlowletSelector(gap_s=0.050, seed=3)
        first = selector.select(TUNNELS, packet(flow=1), now=0.0)
        selector.select(TUNNELS, packet(flow=1), now=0.010)  # same flowlet
        assert selector.flowlets_started == 1
        selector.select(TUNNELS, packet(flow=1), now=0.2)  # gap exceeded
        assert selector.flowlets_started == 2

    def test_flows_are_independent(self):
        selector = FlowletSelector(gap_s=0.050)
        picks = {
            selector.select(TUNNELS, packet(flow=f), now=0.0).path_id
            for f in range(50)
        }
        assert len(picks) > 1  # different flows spread over tunnels

    def test_deterministic_for_seed(self):
        def run(seed):
            selector = FlowletSelector(gap_s=0.01, seed=seed)
            return [
                selector.select(TUNNELS, packet(flow=f), now=f * 1.0).path_id
                for f in range(30)
            ]

        assert run(1) == run(1)

    def test_no_tunnels_raises(self):
        with pytest.raises(ValueError):
            FlowletSelector().select([], packet(), now=0.0)

    def test_invalid_gap_rejected(self):
        with pytest.raises(ValueError):
            FlowletSelector(gap_s=0.0)


class TestGapBoundary:
    def test_gap_exactly_at_threshold_opens_new_flowlet(self):
        # Stickiness requires gap < gap_s strictly: a gap of exactly
        # gap_s already guarantees in-order delivery, so it may switch.
        selector = FlowletSelector(gap_s=0.050)
        selector.select(TUNNELS, packet(flow=1), now=0.0)
        selector.select(TUNNELS, packet(flow=1), now=0.050)
        assert selector.flowlets_started == 2
        selector.select(TUNNELS, packet(flow=1), now=0.050 + 0.0499)
        assert selector.flowlets_started == 2  # just under: same flowlet

    def test_single_tunnel_degenerate(self):
        selector = FlowletSelector(gap_s=0.010, seed=5)
        only = [TUNNELS[0]]
        picks = {
            selector.select(only, packet(flow=f), now=f * 1.0).path_id
            for f in range(20)
        }
        assert picks == {0}
        assert selector.switches == 0
        assert selector.split_fractions() == {0: 1.0}


class TestWeightHardening:
    def test_negative_weights_clamped_and_counted(self):
        selector = FlowletSelector(
            gap_s=0.001, weights=lambda tunnels, now: [1.0, -5.0, 1.0]
        )
        picks = {
            selector.select(TUNNELS, packet(flow=f), now=float(f)).path_id
            for f in range(100)
        }
        assert 1 not in picks  # the clamped tunnel never drawn
        assert selector.clamped_weight_draws == 100
        assert selector.uniform_fallbacks == 0

    def test_all_negative_falls_back_to_uniform(self):
        selector = FlowletSelector(
            gap_s=0.001, weights=lambda tunnels, now: [-1.0, -2.0, -3.0]
        )
        picks = {
            selector.select(TUNNELS, packet(flow=f), now=float(f)).path_id
            for f in range(100)
        }
        assert len(picks) == 3  # uniform spread, not a crash or skew
        assert selector.uniform_fallbacks == 100
        assert selector.clamped_weight_draws == 100

    def test_split_counters_sum_to_flowlets(self):
        selector = FlowletSelector(
            gap_s=0.001, weights=lambda tunnels, now: [6.0, 3.0, 1.0], seed=2
        )
        for f in range(500):
            selector.select(TUNNELS, packet(flow=f), now=float(f))
        assert sum(selector.split_counts.values()) == selector.flowlets_started
        fractions = selector.split_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[0] == pytest.approx(0.6, abs=0.07)

    def test_empty_counters_before_any_draw(self):
        assert FlowletSelector().split_fractions() == {}

    def test_weighted_draws_deterministic_across_restarts(self):
        def run():
            selector = FlowletSelector(
                gap_s=0.010,
                weights=lambda tunnels, now: [2.0, 1.0, 1.0],
                seed=13,
            )
            return [
                selector.select(
                    TUNNELS, packet(flow=f % 7), now=f * 0.02
                ).path_id
                for f in range(200)
            ]

        assert run() == run()


class TestWeightedSelection:
    def test_zero_weight_tunnel_avoided(self):
        selector = FlowletSelector(
            gap_s=0.001, weights=lambda tunnels, now: [1.0, 0.0, 0.0]
        )
        picks = {
            selector.select(TUNNELS, packet(flow=f), now=float(f)).path_id
            for f in range(50)
        }
        assert picks == {0}

    def test_weights_shape_enforced(self):
        selector = FlowletSelector(weights=lambda tunnels, now: [1.0])
        with pytest.raises(ValueError, match="weight"):
            selector.select(TUNNELS, packet(), now=0.0)

    def test_all_zero_weights_fall_back_to_uniform(self):
        selector = FlowletSelector(
            gap_s=0.001, weights=lambda tunnels, now: [0.0, 0.0, 0.0]
        )
        picks = {
            selector.select(TUNNELS, packet(flow=f), now=float(f)).path_id
            for f in range(100)
        }
        assert len(picks) == 3

    def test_weight_skew_shifts_traffic(self):
        selector = FlowletSelector(
            gap_s=0.001, weights=lambda tunnels, now: [8.0, 1.0, 1.0]
        )
        counts = [0, 0, 0]
        for f in range(600):
            pick = selector.select(TUNNELS, packet(flow=f), now=float(f))
            counts[pick.path_id] += 1
        assert counts[0] > counts[1] * 3
        assert counts[0] > counts[2] * 3
