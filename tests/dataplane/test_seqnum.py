"""Tests for sequence stamping and loss/reordering tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.seqnum import SequenceStamper, SequenceTracker


class TestStamper:
    def test_starts_at_zero_and_increments(self):
        stamper = SequenceStamper()
        assert [stamper.next_for(1) for _ in range(3)] == [0, 1, 2]

    def test_paths_are_independent(self):
        stamper = SequenceStamper()
        stamper.next_for(1)
        stamper.next_for(1)
        assert stamper.next_for(2) == 0

    def test_current_counts_stamped(self):
        stamper = SequenceStamper()
        assert stamper.current(5) == 0
        stamper.next_for(5)
        assert stamper.current(5) == 1


class TestTracker:
    def test_in_order_stream_is_clean(self):
        tracker = SequenceTracker()
        for seq in range(100):
            assert tracker.observe(1, seq) == "in-order"
        stats = tracker.stats_for(1)
        assert stats.received == 100
        assert stats.presumed_lost == 0
        assert stats.reordered == 0

    def test_gap_counts_as_presumed_loss(self):
        tracker = SequenceTracker()
        tracker.observe(1, 0)
        tracker.observe(1, 3)  # 1, 2 missing
        stats = tracker.stats_for(1)
        assert stats.presumed_lost == 2
        assert stats.loss_fraction == pytest.approx(0.5)

    def test_late_arrival_reconciles_loss_into_reordering(self):
        tracker = SequenceTracker()
        tracker.observe(1, 0)
        tracker.observe(1, 2)
        assert tracker.observe(1, 1) == "reordered"
        stats = tracker.stats_for(1)
        assert stats.presumed_lost == 0
        assert stats.reordered == 1

    def test_duplicate_detection(self):
        tracker = SequenceTracker()
        tracker.observe(1, 0)
        assert tracker.observe(1, 0) == "duplicate"
        assert tracker.stats_for(1).duplicates == 1

    def test_paths_tracked_separately(self):
        tracker = SequenceTracker()
        tracker.observe(1, 0)
        tracker.observe(2, 5)
        assert tracker.stats_for(1).presumed_lost == 0
        assert tracker.stats_for(2).presumed_lost == 5

    def test_unseen_path_has_zero_stats(self):
        stats = SequenceTracker().stats_for(99)
        assert stats.received == 0
        assert stats.loss_fraction == 0.0

    def test_gap_tracking_bound_enforced(self):
        tracker = SequenceTracker(max_gap_tracking=10)
        tracker.observe(1, 0)
        tracker.observe(1, 1000)  # 999 missing, tracking trimmed to 10
        # A very old missing seq was forgotten: stays counted as lost.
        assert tracker.observe(1, 1) == "duplicate"
        # A recent one can still reconcile.
        assert tracker.observe(1, 999) == "reordered"

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            SequenceTracker(max_gap_tracking=0)

    @given(st.permutations(list(range(30))))
    @settings(max_examples=50)
    def test_any_permutation_conserves_packets(self, order):
        """Property: received + still-missing accounting is consistent —
        every sequence number is eventually received, so presumed losses
        must all reconcile away."""
        tracker = SequenceTracker()
        for seq in order:
            tracker.observe(1, seq)
        stats = tracker.stats_for(1)
        assert stats.received == 30
        assert stats.presumed_lost == 0
        assert stats.duplicates == 0
        assert stats.highest_seen == 29

    @given(
        st.sets(st.integers(min_value=0, max_value=99), min_size=1, max_size=99)
    )
    @settings(max_examples=50)
    def test_dropped_subset_counted_as_lost(self, drops):
        """Property: dropping a subset (in-order delivery of the rest)
        yields exactly that many presumed losses, bar the tail."""
        drops = {d for d in drops if d != 99}  # keep the last packet
        tracker = SequenceTracker()
        for seq in range(100):
            if seq not in drops:
                tracker.observe(1, seq)
        assert tracker.stats_for(1).presumed_lost == len(drops)
