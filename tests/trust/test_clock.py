"""Unit tests: clock-integrity monitoring (drift tracking, step consensus)."""

import pytest

from repro.trust.clock import ClockEvent, ClockIntegrityMonitor

OFFSET = 0.004  # honest constant clock offset (s)


def feed(monitor, t0, t1, dt, residual_fn, paths=(0, 1, 2, 3)):
    t = t0
    while t < t1:
        for path_id in paths:
            monitor.observe(path_id, t, residual_fn(t, path_id))
        t += dt


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ClockIntegrityMonitor(window=4)
        with pytest.raises(ValueError):
            ClockIntegrityMonitor(min_samples=1)
        with pytest.raises(ValueError):
            ClockIntegrityMonitor(step_threshold_s=0.0)
        with pytest.raises(ValueError):
            ClockIntegrityMonitor(drift_threshold_ppm=-1.0)

    def test_calibrating_returns_none(self):
        m = ClockIntegrityMonitor(min_samples=12)
        for i in range(11):
            m.observe(0, float(i), OFFSET)
        assert m.predicted_residual(11.0) is None
        assert m.drift_ppm() is None


class TestDriftTracking:
    def test_constant_offset_predicted_flat(self):
        m = ClockIntegrityMonitor()
        feed(m, 0.0, 5.0, 0.05, lambda t, p: OFFSET)
        assert m.predicted_residual(5.0) == pytest.approx(OFFSET, abs=1e-6)
        assert m.drift_ppm() == pytest.approx(0.0, abs=1.0)
        assert m.events == []

    def test_linear_drift_is_tracked_and_reported(self):
        ppm = 200.0
        m = ClockIntegrityMonitor(drift_threshold_ppm=50.0)
        feed(m, 0.0, 8.0, 0.05, lambda t, p: OFFSET + ppm * 1e-6 * t)
        assert m.drift_ppm() == pytest.approx(ppm, rel=0.05)
        # Prediction extrapolates the drift, so honest future samples
        # stay near-zero deviation.
        predicted = m.predicted_residual(8.0)
        actual = OFFSET + ppm * 1e-6 * 8.0
        assert predicted == pytest.approx(actual, abs=2e-4)
        kinds = [e.kind for e in m.events]
        assert "drift" in kinds

    def test_drift_event_waits_for_min_span(self):
        """Early short-span slopes are noise-amplified; no drift event
        may fire before the buffer covers min_span_s."""
        m = ClockIntegrityMonitor(drift_threshold_ppm=50.0, min_span_s=3.0)
        feed(m, 0.0, 2.0, 0.05, lambda t, p: OFFSET + 400e-6 * t)
        assert [e for e in m.events if e.kind == "drift"] == []
        feed(m, 2.0, 6.0, 0.05, lambda t, p: OFFSET + 400e-6 * t)
        drift = [e for e in m.events if e.kind == "drift"]
        assert drift and drift[0].t >= 3.0

    def test_minority_tampered_path_cannot_steer_fit(self):
        """One tampered path of four is a minority the Theil-Sen fit and
        the median intercept both ignore."""
        bias = 0.015

        def residual(t, path_id):
            return OFFSET - bias if path_id == 0 else OFFSET

        m = ClockIntegrityMonitor()
        feed(m, 0.0, 6.0, 0.05, residual)
        assert m.predicted_residual(6.0) == pytest.approx(OFFSET, abs=1e-4)
        # And no step event: the median per-path deviation is honest.
        assert [e for e in m.events if e.kind == "step"] == []


class TestStepConsensus:
    def test_common_step_detected_and_rebased(self):
        step = 0.010

        def residual(t, path_id):
            return OFFSET + (step if t >= 3.0 else 0.0)

        m = ClockIntegrityMonitor()
        feed(m, 0.0, 6.0, 0.05, residual)
        steps = [e for e in m.events if e.kind == "step"]
        assert steps
        assert steps[0].t == pytest.approx(3.0, abs=0.2)
        # Magnitude is the consensus at detection: conservative, between
        # the threshold and the full jump.
        assert m.step_threshold_s < steps[0].magnitude <= step + 1e-3
        # After the rebase the fit converges on the post-step level.
        assert m.predicted_residual(6.0) == pytest.approx(
            OFFSET + step, abs=1e-3
        )

    def test_single_path_jump_is_not_a_step(self):
        def residual(t, path_id):
            if path_id == 2 and t >= 3.0:
                return OFFSET + 0.02
            return OFFSET

        m = ClockIntegrityMonitor()
        feed(m, 0.0, 6.0, 0.05, residual)
        assert [e for e in m.events if e.kind == "step"] == []


class TestEventRecord:
    def test_event_fields(self):
        e = ClockEvent(t=1.5, kind="drift", magnitude=120.0)
        assert (e.t, e.kind, e.magnitude) == (1.5, "drift", 120.0)

    def test_max_trackable_ppm_is_the_lint_bound(self):
        assert ClockIntegrityMonitor.MAX_TRACKABLE_PPM == 500.0
