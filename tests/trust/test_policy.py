"""Unit tests: the peer-trust state machine."""

import pytest

from repro.trust.policy import (
    TRUST_DISTRUSTED,
    TRUST_PROBATION,
    TRUST_SUSPECT,
    TRUST_TRUSTED,
    PeerTrustMonitor,
    PeerTrustPolicy,
)


class Counter:
    """A cumulative anomaly source the tests can bump."""

    def __init__(self):
        self.count = 0

    def __call__(self):
        return self.count


def make(policy=None, **kwargs):
    source = Counter()
    monitor = PeerTrustMonitor(
        policy or PeerTrustPolicy(**kwargs), {"test": source}
    )
    return monitor, source


class TestPolicyValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PeerTrustPolicy(suspect_anomalies=0)
        with pytest.raises(ValueError):
            PeerTrustPolicy(suspect_anomalies=5, distrust_anomalies=3)
        with pytest.raises(ValueError):
            PeerTrustPolicy(clean_polls=0)
        with pytest.raises(ValueError):
            PeerTrustPolicy(probation_delay_s=0.0)
        with pytest.raises(ValueError):
            PeerTrustPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            PeerTrustPolicy(probation_delay_s=5.0, max_probation_delay_s=1.0)
        with pytest.raises(ValueError):
            PeerTrustPolicy(probation_polls=0)

    def test_needs_a_source(self):
        with pytest.raises(ValueError):
            PeerTrustMonitor(PeerTrustPolicy(), {})


class TestTrustedToSuspect:
    def test_lone_anomaly_stays_trusted(self):
        monitor, source = make(suspect_anomalies=3)
        source.count = 2
        assert not monitor.poll(1.0)
        assert monitor.state == TRUST_TRUSTED

    def test_burst_demotes_to_suspect(self):
        monitor, source = make(suspect_anomalies=3)
        source.count = 3
        assert monitor.poll(1.0)
        assert monitor.state == TRUST_SUSPECT

    def test_counter_deltas_not_absolutes(self):
        """Sources are cumulative; only the delta since the last poll is
        evidence — an old high-water mark must not re-demote forever."""
        monitor, source = make(suspect_anomalies=3, clean_polls=2)
        source.count = 5
        monitor.poll(1.0)
        assert monitor.state == TRUST_SUSPECT
        # Counter stays at 5 (no new anomalies): clean polls heal.
        monitor.poll(2.0)
        monitor.poll(3.0)
        assert monitor.state == TRUST_TRUSTED


class TestSuspect:
    def test_sustained_evidence_distrusts(self):
        monitor, source = make(suspect_anomalies=3, distrust_anomalies=10)
        source.count = 5
        monitor.poll(1.0)
        source.count = 11
        monitor.poll(2.0)
        assert monitor.state == TRUST_DISTRUSTED
        assert monitor.distrusted

    def test_clean_streak_resets_on_new_anomaly(self):
        monitor, source = make(
            suspect_anomalies=3, distrust_anomalies=100, clean_polls=3
        )
        source.count = 3
        monitor.poll(1.0)
        monitor.poll(2.0)
        monitor.poll(3.0)
        source.count = 4  # one more anomaly: streak resets
        monitor.poll(4.0)
        monitor.poll(5.0)
        monitor.poll(6.0)
        assert monitor.state == TRUST_SUSPECT
        monitor.poll(7.0)
        assert monitor.state == TRUST_TRUSTED


class TestProbationAndBackoff:
    def test_probation_after_delay_then_heal(self):
        monitor, source = make(
            suspect_anomalies=2,
            distrust_anomalies=4,
            probation_delay_s=3.0,
            probation_polls=2,
        )
        source.count = 6
        monitor.poll(1.0)
        assert monitor.state == TRUST_DISTRUSTED
        monitor.poll(2.0)
        assert monitor.state == TRUST_DISTRUSTED  # still serving time
        monitor.poll(4.1)
        assert monitor.state == TRUST_PROBATION
        monitor.poll(4.2)
        monitor.poll(4.3)
        assert monitor.state == TRUST_TRUSTED

    def test_probation_relapse_doubles_backoff(self):
        monitor, source = make(
            suspect_anomalies=2,
            distrust_anomalies=4,
            probation_delay_s=2.0,
            backoff_factor=2.0,
            max_probation_delay_s=60.0,
        )
        source.count = 6
        monitor.poll(0.0)
        assert monitor.state == TRUST_DISTRUSTED
        monitor.poll(2.1)
        assert monitor.state == TRUST_PROBATION
        source.count = 7  # anomaly during probation: relapse
        monitor.poll(2.2)
        assert monitor.state == TRUST_DISTRUSTED
        # Backoff doubled: probation not before 2.2 + 4.0.
        monitor.poll(5.0)
        assert monitor.state == TRUST_DISTRUSTED
        monitor.poll(6.3)
        assert monitor.state == TRUST_PROBATION

    def test_backoff_caps_and_resets_after_heal(self):
        policy = PeerTrustPolicy(
            suspect_anomalies=2,
            distrust_anomalies=4,
            probation_delay_s=2.0,
            backoff_factor=10.0,
            max_probation_delay_s=5.0,
            probation_polls=1,
        )
        monitor, source = make(policy=policy)
        now = 0.0
        source.count = 6
        monitor.poll(now)
        # Relapse once: backoff would be 20 s but caps at 5 s.
        monitor.poll(2.1)
        source.count = 7
        monitor.poll(2.2)
        assert monitor.state == TRUST_DISTRUSTED
        monitor.poll(7.3)
        assert monitor.state == TRUST_PROBATION
        monitor.poll(7.4)  # clean probation poll: healed, backoff reset
        assert monitor.state == TRUST_TRUSTED
        # Fresh demotion starts from the base delay again.
        source.count = 20
        monitor.poll(8.0)
        assert monitor.state == TRUST_DISTRUSTED
        monitor.poll(10.1)
        assert monitor.state == TRUST_PROBATION


class TestBookkeeping:
    def test_events_and_breakdown(self):
        monitor, source = make(suspect_anomalies=2, distrust_anomalies=4)
        source.count = 6
        monitor.poll(1.5)
        states = [e.state for e in monitor.events]
        assert states == [TRUST_SUSPECT, TRUST_DISTRUSTED]
        assert monitor.anomalies_total == 6
        assert monitor.anomaly_breakdown() == {"test": 6}

    def test_multiple_sources_sum(self):
        a, b = Counter(), Counter()
        monitor = PeerTrustMonitor(
            PeerTrustPolicy(suspect_anomalies=4), {"a": a, "b": b}
        )
        a.count, b.count = 2, 2
        monitor.poll(1.0)
        assert monitor.state == TRUST_SUSPECT

    def test_negative_counter_delta_ignored(self):
        """A source that resets (restarted process) must not underflow."""
        monitor, source = make(suspect_anomalies=3)
        source.count = 2
        monitor.poll(1.0)
        source.count = 0
        monitor.poll(2.0)
        assert monitor.state == TRUST_TRUSTED
        assert monitor.anomalies_total == 2
