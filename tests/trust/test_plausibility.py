"""Unit tests: the plausibility gate's admit/reject verdicts."""

import pytest

from repro.telemetry.store import MeasurementStore
from repro.trust.clock import ClockIntegrityMonitor
from repro.trust.plausibility import PlausibilityFilter

OWD = 0.028  # honest one-way delay (s)
OFFSET = 0.004  # honest clock-offset residual (s)


def make_gate(monitor=None, **kwargs):
    envelope = MeasurementStore()
    envelope.record(0, 0.0, OWD)  # local RTT/2 says ~28 ms
    return PlausibilityFilter(envelope=envelope, monitor=monitor, **kwargs), envelope


def calibrate(gate, n=12, t0=0.0, dt=0.05):
    for i in range(n):
        t = t0 + i * dt
        assert gate.admit(0, t, OWD + OFFSET, now=t + 0.05)
    return t0 + n * dt


class TestValidation:
    def test_rejects_bad_params(self):
        store = MeasurementStore()
        with pytest.raises(ValueError):
            PlausibilityFilter(store, abs_slack_s=0.0)
        with pytest.raises(ValueError):
            PlausibilityFilter(store, rel_slack=-0.1)
        with pytest.raises(ValueError):
            PlausibilityFilter(store, max_age_s=0.0)
        with pytest.raises(ValueError):
            PlausibilityFilter(store, calibration_samples=1)


class TestContinuity:
    def test_rewound_or_duplicate_time_rejected(self):
        gate, _ = make_gate()
        assert gate.admit(0, 1.0, OWD + OFFSET, now=1.05)
        assert not gate.admit(0, 1.0, OWD + OFFSET, now=1.1)
        assert not gate.admit(0, 0.5, OWD + OFFSET, now=1.1)
        assert gate.rejected_discontinuity == 2

    def test_rejected_sample_does_not_advance_horizon(self):
        """A rejected far-future-stale sample must not poison the
        continuity horizon for subsequent honest samples."""
        gate, _ = make_gate()
        assert gate.admit(0, 1.0, OWD + OFFSET, now=1.05)
        # Stale replay with a plausible-looking later t: rejected.
        assert not gate.admit(0, 4.0, OWD + OFFSET, now=9.0)
        # The honest successor of t=1.0 still admits.
        assert gate.admit(0, 1.05, OWD + OFFSET, now=1.1)

    def test_paths_have_independent_horizons(self):
        gate, envelope = make_gate()
        envelope.record(1, 0.0, OWD)
        assert gate.admit(0, 1.0, OWD + OFFSET, now=1.05)
        assert gate.admit(1, 0.5, OWD + OFFSET, now=0.55)


class TestFreshness:
    def test_aged_sample_rejected(self):
        gate, _ = make_gate(max_age_s=2.0)
        assert not gate.admit(0, 1.0, OWD + OFFSET, now=3.5)
        assert gate.rejected_stale == 1


class TestEnvelope:
    def test_honest_samples_admitted_after_calibration(self):
        gate, _ = make_gate()
        t = calibrate(gate)
        assert gate.admit(0, t, OWD + OFFSET + 0.001, now=t + 0.05)
        assert gate.rejected == 0

    def test_tampered_sample_rejected_after_calibration(self):
        gate, _ = make_gate()
        t = calibrate(gate)
        # Tamper claims the path is ~15 ms faster than local RTT/2 can
        # explain: outside abs 2 ms + rel 0.35*28 ms ~ 11.8 ms tolerance.
        assert not gate.admit(0, t, OWD + OFFSET - 0.015, now=t + 0.05)
        assert gate.rejected_envelope == 1

    def test_no_envelope_path_admits_while_calibrating(self):
        gate, _ = make_gate()
        # Path 7 has no local estimate: nothing to judge against.
        assert gate.admit(7, 1.0, 0.1, now=1.05)
        assert gate.rejected == 0

    def test_counter_sum(self):
        gate, _ = make_gate()
        t = calibrate(gate)
        gate.admit(0, t - 1.0, OWD + OFFSET, now=t)  # discontinuity
        gate.admit(0, t, OWD + OFFSET, now=t + 5.0)  # stale
        gate.admit(0, t + 0.1, OWD - 0.02, now=t + 0.15)  # envelope
        assert gate.rejected == 3
        assert (
            gate.rejected_stale,
            gate.rejected_discontinuity,
            gate.rejected_envelope,
        ) == (1, 1, 1)


class TestClockCompensation:
    def test_frozen_offset_is_drift_fragile(self):
        """Without a monitor, honest samples under clock drift are
        eventually rejected — the ablation E17 documents."""
        gate, _ = make_gate(monitor=None, rel_slack=0.0, abs_slack_s=2e-3)
        drift = 400e-6  # 400 ppm

        t, rejected_at = 0.0, None
        while t < 60.0:
            ok = gate.admit(0, t, OWD + OFFSET + drift * t, now=t + 0.05)
            if not ok:
                rejected_at = t
                break
            t += 0.5
        assert rejected_at is not None

    def test_monitor_reestimates_drift_away(self):
        monitor = ClockIntegrityMonitor()
        gate, _ = make_gate(monitor=monitor, rel_slack=0.0, abs_slack_s=2e-3)
        drift = 400e-6

        t = 0.0
        verdicts = []
        while t < 60.0:
            verdicts.append(
                gate.admit(0, t, OWD + OFFSET + drift * t, now=t + 0.05)
            )
            t += 0.5
        # Everything after the monitor's calibration window admits.
        assert all(verdicts[ClockIntegrityMonitor().min_samples :])
