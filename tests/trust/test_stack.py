"""Integration: the assembled defense stack against a live tamper attack.

One defended victim deployment, one telemetry_tamper plan making a truly
worse path appear best.  The module-scoped fixture runs the simulation
once; the tests assert the separate layers of the defense narrative on
its artifacts.
"""

import pytest

from repro.core.controller import (
    MODE_COOPERATIVE,
    MODE_DEGRADED,
    QuarantinePolicy,
    TangoController,
)
from repro.core.policy import LowestDelaySelector
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.netsim.trace import PacketFactory
from repro.resilience.channel import ChannelConfig
from repro.scenarios.vultr import VultrDeployment
from repro.trust import TRUST_TRUSTED, install_defense
from repro.trust.policy import PeerTrustMonitor, PeerTrustPolicy

KEY = b"stack-test-key-16b"
ATTACK_AT, ATTACK_FOR = 4.0, 6.0
HORIZON = 20.0


@pytest.fixture(scope="module")
def campaign():
    d = VultrDeployment(
        include_events=False, auth_key=KEY, telemetry_channel=ChannelConfig()
    )
    d.establish()
    d.start_path_probes("ny", interval_s=0.05)
    d.set_data_policy(
        "ny", LowestDelaySelector(d.gateway("ny").outbound, window_s=1.0)
    )
    stack = install_defense(d, "ny", KEY)
    controller = TangoController(
        d.gateway("ny"),
        d.sim,
        interval_s=0.1,
        staleness_s=0.5,
        quarantine=QuarantinePolicy(),
        **stack.controller_kwargs(),
    )
    d.attach_controller("ny", controller)
    controller.start()
    plan = FaultPlan(
        name="tamper-ntt",
        seed=7,
        events=(
            FaultEvent(
                "telemetry_tamper",
                at=ATTACK_AT,
                duration=ATTACK_FOR,
                params={"src": "ny", "path": "NTT", "bias_ms": 12.0},
            ),
        ),
    )
    FaultInjector(d, plan).arm()
    factory = PacketFactory(
        src=str(d.pairing.a.host_address(4)),
        dst=str(d.pairing.b.host_address(4)),
        flow_label=9,
    )
    send = d.sender_for("ny")
    d.sim.call_every(0.02, lambda: send(factory.build()))
    d.net.run(until=HORIZON)
    return d, controller, stack


class TestInstallation:
    def test_requires_established_deployment(self):
        d = VultrDeployment(
            include_events=False, auth_key=KEY, telemetry_channel=ChannelConfig()
        )
        with pytest.raises(RuntimeError, match="establish"):
            install_defense(d, "ny", KEY)

    def test_controller_trust_requires_degraded(self, campaign):
        d, _, stack = campaign
        with pytest.raises(ValueError, match="degraded"):
            TangoController(
                d.gateway("ny"), d.sim, trust=stack.trust, degraded=None
            )

    def test_stack_registered_on_deployment(self, campaign):
        d, _, stack = campaign
        assert d.defenses["ny"] is stack

    def test_sources_cover_all_evidence_layers(self, campaign):
        _, _, stack = campaign
        assert set(stack.trust.anomaly_breakdown()) == {
            "channel-auth",
            "plausibility",
            "dataplane-auth",
        }


class TestDefenseNarrative:
    def test_tampered_packets_rejected_at_peer_receiver(self, campaign):
        d, _, _ = campaign
        stats = d.gateways["la"].authenticator.stats
        assert stats.rejected > 50  # bias kept the stale MAC: forged
        assert stats.verified > 1000  # honest traffic still flows

    def test_never_steered_onto_tampered_path(self, campaign):
        d, controller, _ = campaign
        ntt = next(
            t.path_id for t in d.tunnels("ny") if t.short_label == "NTT"
        )
        during = [
            int(v)
            for t, v in zip(
                controller.choice_trace.times, controller.choice_trace.values
            )
            if ATTACK_AT <= t <= ATTACK_AT + ATTACK_FOR + 1.0
        ]
        assert during, "no choices recorded during the attack window"
        assert ntt not in during

    def test_tampered_path_quarantined(self, campaign):
        _, controller, _ = campaign
        quarantined = [
            e for e in controller.quarantine_log if e.label == "NTT"
        ]
        assert any(e.action == "quarantine" for e in quarantined)

    def test_trust_distrusts_then_heals(self, campaign):
        _, _, stack = campaign
        states = [e.state for e in stack.trust.events]
        assert "distrusted" in states
        assert stack.trust.state == TRUST_TRUSTED  # healed post-attack
        breakdown = stack.trust.anomaly_breakdown()
        assert breakdown["dataplane-auth"] > 50

    def test_distrust_forced_degraded_mode_then_recovered(self, campaign):
        _, controller, stack = campaign
        modes = [m.mode for m in controller.mode_log]
        assert MODE_DEGRADED in modes
        assert controller.mode == MODE_COOPERATIVE
        distrust_t = next(
            e.t for e in stack.trust.events if e.state == "distrusted"
        )
        degraded_t = next(
            m.t for m in controller.mode_log if m.mode == MODE_DEGRADED
        )
        # Demotion lands within a tick of the distrust verdict.
        assert degraded_t == pytest.approx(distrust_t, abs=0.2)

    def test_journal_free_poll_returns_state_changes(self):
        """PeerTrustMonitor.poll reports transitions for journaling."""
        count = [0]
        monitor = PeerTrustMonitor(
            PeerTrustPolicy(suspect_anomalies=1), {"c": lambda: count[0]}
        )
        assert not monitor.poll(0.0)
        count[0] = 5
        assert monitor.poll(1.0)
